#!/usr/bin/env python
"""Quickstart: robust-schedule one random instance and compare with HEFT.

Builds a random 40-task instance with the paper's generation methodology
(uncertainty level 3), runs the ε-constraint robust GA (ε = 1.0: the GA
may not exceed HEFT's expected makespan), and Monte-Carlo-evaluates both
schedules in the simulated non-deterministic environment.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.graph.generator import DagParams
from repro.platform.uncertainty import UncertaintyParams
from repro.sim import simulate


def main() -> None:
    # 1. A random problem: layered DAG, COV-based execution times, UL = 3.
    problem = repro.SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=40, alpha=1.0, cc=20.0, ccr=0.2),
        uncertainty_params=UncertaintyParams(mean_ul=3.0),
        rng=2006,
    )
    print(f"problem: {problem}")

    # 2. Baseline: HEFT, fed the expected execution times.
    heft = repro.HeftScheduler().schedule(problem)
    heft_eval = repro.evaluate(heft)
    print(
        f"HEFT      expected makespan {heft_eval.makespan:8.2f}   "
        f"avg slack {heft_eval.avg_slack:7.2f}"
    )

    # 3. The paper's algorithm: maximize slack s.t. makespan <= 1.0 * M_HEFT.
    result = repro.RobustScheduler(epsilon=1.0, rng=7).solve(problem)
    ga_eval = repro.evaluate(result.schedule)
    print(
        f"robust GA expected makespan {ga_eval.makespan:8.2f}   "
        f"avg slack {ga_eval.avg_slack:7.2f}   "
        f"({result.ga_result.generations} generations, "
        f"{result.ga_result.stop_reason})"
    )

    # 4. Monte-Carlo robustness in the simulated real environment.
    print("\nMonte-Carlo (1000 realizations):")
    for name, schedule in [("HEFT", heft), ("robust GA", result.schedule)]:
        report = repro.assess_robustness(schedule, 1000, rng=11)
        print(
            f"  {name:9s} mean makespan {report.mean_makespan:8.2f}   "
            f"miss rate {report.miss_rate:5.3f}   "
            f"R1 {report.r1:6.2f}   R2 {report.r2:5.2f}"
        )

    # 5. A Gantt-style look at the first busy processor (event simulator).
    trace = simulate(result.schedule)
    print("\nGantt (first 8 placements of the robust schedule):")
    for entry in trace.gantt(result.schedule)[:8]:
        print(
            f"  P{entry.processor}  task {entry.task:3d}  "
            f"[{entry.start:8.2f}, {entry.finish:8.2f})"
        )


if __name__ == "__main__":
    main()
