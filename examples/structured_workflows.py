#!/usr/bin/env python
"""Robust scheduling across classic structured application graphs.

The paper (and its HEFT baseline's paper) evaluate on random layered DAGs
plus structured kernels.  This example runs HEFT and the ε-constraint GA
on five classic graph shapes — Gaussian elimination, FFT, fork-join,
wavefront pipeline and the Laplace diamond — with the same platform and
uncertainty model, showing how graph structure changes the slack the GA
can buy at a fixed makespan budget.

Run:  python examples/structured_workflows.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams
from repro.graph.workflows import (
    fft,
    fork_join,
    gaussian_elimination,
    laplace,
    pipeline,
)
from repro.platform.etc import EtcParams, generate_etc
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams, generate_ul
from repro.utils.tables import format_table

WORKFLOWS = [
    ("gauss(7)", gaussian_elimination(7, data_size=4.0)),
    ("fft(8)", fft(8, data_size=4.0)),
    ("forkjoin(4x6)", fork_join(4, 6, data_size=4.0)),
    ("pipeline(6x5)", pipeline(6, 5, data_size=4.0)),
    ("laplace(5)", laplace(5, data_size=4.0)),
]

GA = GAParams(max_iterations=250, stagnation_limit=80)


def build_problem(graph: repro.TaskGraph, seed: int) -> SchedulingProblem:
    m = 4
    bcet = generate_etc(graph.n, m, EtcParams(mu_task=10.0), rng=seed)
    ul = generate_ul(graph.n, m, UncertaintyParams(mean_ul=3.0), rng=seed + 1)
    return SchedulingProblem(
        graph=graph,
        platform=Platform(m),
        uncertainty=UncertaintyModel(bcet, ul),
        name=graph.name,
    )


def main() -> None:
    rows = []
    for seed, (label, graph) in enumerate(WORKFLOWS):
        problem = build_problem(graph, 100 + 10 * seed)
        heft = repro.HeftScheduler().schedule(problem)
        result = repro.RobustScheduler(epsilon=1.1, params=GA, rng=seed).solve(problem)

        heft_rep = repro.assess_robustness(heft, 800, rng=seed)
        ga_rep = repro.assess_robustness(result.schedule, 800, rng=seed)
        rows.append(
            [
                label,
                graph.n,
                heft_rep.expected_makespan,
                heft_rep.avg_slack,
                ga_rep.avg_slack,
                heft_rep.mean_tardiness,
                ga_rep.mean_tardiness,
            ]
        )

    print(
        format_table(
            ["workflow", "n", "M0(heft)", "slack(heft)", "slack(GA)",
             "tard(heft)", "tard(GA)"],
            rows,
            title="structured workflows — HEFT vs eps=1.1 robust GA "
            "(UL=3, 800 realizations)",
        )
    )

    # Structure commentary: parallel-heavy shapes leave more slack to buy.
    slack_gain = {r[0]: r[4] - r[3] for r in rows}
    best = max(slack_gain, key=slack_gain.get)
    worst = min(slack_gain, key=slack_gain.get)
    print(
        f"\nbiggest slack gain: {best} (+{slack_gain[best]:.2f}); "
        f"smallest: {worst} (+{slack_gain[worst]:.2f})"
    )


if __name__ == "__main__":
    main()
