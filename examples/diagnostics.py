#!/usr/bin/env python
"""Robustness estimation diagnostics: how trustworthy are the numbers?

The paper fixes N = 1000 Monte-Carlo realizations per schedule.  This
example shows the tooling around that choice:

1. a *convergence profile* — how R1/R2/miss-rate estimates stabilise as
   N grows;
2. *bootstrap confidence intervals* at N = 1000;
3. the *analytical* (Clark canonical-form) estimator against Monte-Carlo
   ground truth — thousands of times cheaper, accurate to ~1 % on the
   makespan mean;
4. saving the instance + schedule to JSON so the exact experiment can be
   re-run elsewhere.

Run:  python examples/diagnostics.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.graph.generator import DagParams
from repro.io import load_problem, load_schedule, save_problem, save_schedule
from repro.platform.uncertainty import UncertaintyParams
from repro.robustness.clark import analytic_robustness
from repro.utils.tables import format_table


def main() -> None:
    problem = repro.SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=40, ccr=0.2),
        uncertainty_params=UncertaintyParams(mean_ul=4.0),
        rng=77,
    )
    schedule = repro.RobustScheduler(epsilon=1.2, rng=3).solve(problem).schedule

    # 1. Convergence of the Monte-Carlo estimates.
    profile = repro.convergence_profile(
        schedule, sample_sizes=(50, 100, 250, 500, 1000, 4000), rng=5
    )
    rows = [
        [n, m["mean_makespan"], m["mean_tardiness"], m["miss_rate"], m["r1"]]
        for n, m in sorted(profile.items())
    ]
    print(
        format_table(
            ["N", "mean M", "tardiness", "miss rate", "R1"],
            rows,
            title="Monte-Carlo convergence (nested samples)",
        )
    )

    # 2. Bootstrap CIs at the paper's N = 1000.
    report = repro.assess_robustness(schedule, 1000, rng=7)
    cis = repro.bootstrap_robustness(
        report.realized_makespans, report.expected_makespan, rng=9
    )
    print("\n95% bootstrap confidence intervals at N = 1000:")
    for name in ("mean_tardiness", "miss_rate", "r1", "r2"):
        print(f"  {name:15s} {cis[name]}")

    # 3. Analytical estimator vs Monte Carlo.
    analytic = analytic_robustness(schedule)
    print("\nClark canonical-form estimate vs Monte Carlo (N = 1000):")
    print(
        format_table(
            ["source", "mean M", "tardiness", "miss rate"],
            [
                ["analytic", analytic["mean_makespan"], analytic["mean_tardiness"],
                 analytic["miss_rate"]],
                ["monte-carlo", report.mean_makespan, report.mean_tardiness,
                 report.miss_rate],
            ],
        )
    )

    # 4. Round-trip the experiment artefacts.
    with tempfile.TemporaryDirectory() as tmp:
        problem_path = Path(tmp) / "problem.json"
        schedule_path = Path(tmp) / "schedule.json"
        save_problem(problem, problem_path)
        save_schedule(schedule, schedule_path)
        reloaded = load_schedule(schedule_path, load_problem(problem_path))
        check = repro.assess_robustness(reloaded, 1000, rng=7)
        print(
            f"\nserialization round-trip: mean makespan "
            f"{report.mean_makespan:.3f} -> {check.mean_makespan:.3f} "
            f"({'identical' if check.mean_makespan == report.mean_makespan else 'MISMATCH'})"
        )


if __name__ == "__main__":
    main()
