#!/usr/bin/env python
"""Robust scheduling of a hand-built scientific-workflow DAG.

Instead of a random graph, this example builds a Montage-style mosaicking
pipeline (the classic fork-join workflow the task-scheduling literature
motivates with): project N input images in parallel, fit overlaps
pairwise, run a global background model, correct each image, then co-add.
The platform is a 4-machine cluster with heterogeneous link speeds, and
per-task uncertainty levels reflect that I/O-heavy stages vary more than
CPU-bound ones.

Run:  python examples/workflow_pipeline.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel
from repro.sim import simulate
from repro.utils.tables import format_table

N_IMAGES = 6


def build_workflow() -> tuple[repro.TaskGraph, dict[int, str]]:
    """Montage-like pipeline over N_IMAGES inputs.

    Layers: project x N  ->  fit-overlap x (N-1)  ->  background-model
    -> correct x N -> co-add.
    """
    labels: dict[int, str] = {}
    edges: list[tuple[int, int]] = []
    data: list[float] = []

    project = list(range(N_IMAGES))
    for i in project:
        labels[i] = f"project[{i}]"
    fit = list(range(N_IMAGES, N_IMAGES + N_IMAGES - 1))
    for k, t in enumerate(fit):
        labels[t] = f"fit[{k}]"
        for src in (project[k], project[k + 1]):  # overlapping pair
            edges.append((src, t))
            data.append(30.0)
    model = fit[-1] + 1
    labels[model] = "bg-model"
    for t in fit:
        edges.append((t, model))
        data.append(5.0)
    correct = list(range(model + 1, model + 1 + N_IMAGES))
    for k, t in enumerate(correct):
        labels[t] = f"correct[{k}]"
        edges.append((model, t))
        data.append(8.0)
        edges.append((project[k], t))  # needs the projected image too
        data.append(30.0)
    coadd = correct[-1] + 1
    labels[coadd] = "co-add"
    for t in correct:
        edges.append((t, coadd))
        data.append(40.0)

    graph = repro.TaskGraph(coadd + 1, edges, data, name="montage-like")
    return graph, labels


def build_problem() -> tuple[repro.SchedulingProblem, dict[int, str]]:
    graph, labels = build_workflow()
    n = graph.n

    # 4 machines: two fast, one medium, one slow; asymmetric link rates.
    speed = np.array([1.0, 1.0, 1.6, 2.5])  # slowdown factor per machine
    rates = np.array(
        [
            [1.0, 10.0, 5.0, 2.0],
            [10.0, 1.0, 5.0, 2.0],
            [5.0, 5.0, 1.0, 2.0],
            [2.0, 2.0, 2.0, 1.0],
        ]
    )
    platform = Platform(4, rates, name="small-cluster")

    # Stage-dependent base costs and uncertainty: projection and co-add are
    # I/O-heavy (high UL), fitting/correction are CPU-bound (low UL).
    base = np.empty(n)
    ul_level = np.empty(n)
    for task, label in labels.items():
        if label.startswith("project"):
            base[task], ul_level[task] = 12.0, 3.0
        elif label.startswith("fit"):
            base[task], ul_level[task] = 8.0, 1.5
        elif label == "bg-model":
            base[task], ul_level[task] = 20.0, 2.0
        elif label.startswith("correct"):
            base[task], ul_level[task] = 10.0, 1.5
        else:  # co-add
            base[task], ul_level[task] = 25.0, 4.0

    bcet = base[:, None] * speed[None, :]
    ul = np.tile(ul_level[:, None], (1, 4))
    problem = repro.SchedulingProblem(
        graph=graph,
        platform=platform,
        uncertainty=UncertaintyModel(bcet, ul),
        name="montage-like",
    )
    return problem, labels


def main() -> None:
    problem, labels = build_problem()
    print(f"workflow: {problem.graph.name}, {problem.n} tasks, "
          f"{problem.graph.num_edges} edges, {problem.m} machines\n")

    rows = []
    schedules = {}
    for name, scheduler in [
        ("HEFT", repro.HeftScheduler()),
        ("CPOP", repro.CpopScheduler()),
        ("min-min", repro.MinMinScheduler()),
        ("robust GA (eps=1.15)", repro.RobustScheduler(epsilon=1.15, rng=4)),
    ]:
        schedule = scheduler.schedule(problem)
        report = repro.assess_robustness(schedule, 1500, rng=9)
        schedules[name] = schedule
        rows.append(
            [
                name,
                report.expected_makespan,
                report.mean_makespan,
                report.avg_slack,
                report.miss_rate,
                report.r1,
            ]
        )
    print(
        format_table(
            ["scheduler", "M0", "mean M", "slack", "miss rate", "R1"],
            rows,
            title="schedulers on the workflow (1500 realizations)",
        )
    )

    # Show where the robust GA placed each pipeline stage.
    robust = schedules["robust GA (eps=1.15)"]
    trace = simulate(robust)
    print("\nrobust schedule placement:")
    for entry in trace.gantt(robust):
        print(
            f"  P{entry.processor}  {labels[entry.task]:12s} "
            f"[{entry.start:7.2f}, {entry.finish:7.2f})"
        )


if __name__ == "__main__":
    main()
