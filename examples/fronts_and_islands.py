#!/usr/bin/env python
"""Front tracing, front metrics, and the island-model GA.

Demonstrates the multi-objective tooling beyond a single ε-constraint
solve:

1. trace the makespan/slack front three ways — ε-constraint sweep,
   weighted-sum sweep, one NSGA-II run — on the same instance;
2. compare the tracings with 2-D hypervolume and Zitzler coverage;
3. run the island-model GA (a diversity mechanism) against the
   single-population GA at a comparable budget.

Run:  python examples/fronts_and_islands.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import SlackFitness
from repro.ga.island import IslandGeneticScheduler, IslandParams
from repro.graph.generator import DagParams
from repro.moop import (
    Nsga2Scheduler,
    coverage,
    epsilon_front,
    hypervolume_2d,
    weighted_sum_front,
)
from repro.platform.uncertainty import UncertaintyParams
from repro.utils.tables import format_table

GA = GAParams(max_iterations=120, stagnation_limit=60)


def main() -> None:
    problem = repro.SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=25, ccr=0.3),
        uncertainty_params=UncertaintyParams(mean_ul=3.0),
        rng=314,
    )

    # --- three front tracings -----------------------------------------
    eps = epsilon_front(problem, (1.0, 1.25, 1.5, 1.75, 2.0), params=GA, rng=0)
    ws = weighted_sum_front(problem, (1.0, 0.75, 0.5, 0.25, 0.0), params=GA, rng=1)
    nsga = Nsga2Scheduler(GAParams(max_iterations=120), rng=2).run(problem)

    pts = {
        "eps-constraint": eps.as_minimization(),
        "weighted-sum": ws.as_minimization(),
        "nsga2": np.column_stack(
            [
                [i.makespan for i in nsga.front],
                [-i.avg_slack for i in nsga.front],
            ]
        ),
    }
    ref = np.vstack(list(pts.values())).max(axis=0) * 1.1 + 1.0

    rows = [
        [name, len(p), hypervolume_2d(p, ref)] for name, p in pts.items()
    ]
    print(
        format_table(
            ["method", "front size", "hypervolume"],
            rows,
            title=f"front tracings on {problem.name}",
        )
    )
    print("\npairwise coverage C(row, col): fraction of col dominated by row")
    names = list(pts)
    cov_rows = [
        [a, *(f"{coverage(pts[a], pts[b]):.2f}" for b in names)] for a in names
    ]
    print(format_table(["", *names], cov_rows))

    # --- island GA vs single population --------------------------------
    single = GeneticScheduler(
        SlackFitness(),
        GAParams(population_size=12, max_iterations=240, stagnation_limit=240),
        rng=5,
    ).run(problem)
    island = IslandGeneticScheduler(
        SlackFitness(),
        GAParams(population_size=12, max_iterations=60),
        IslandParams(n_islands=4, epoch_generations=60, epochs=1),
        rng=5,
    ).run(problem)
    print(
        f"\nslack maximization at ~equal budget: single-population "
        f"{single.best.avg_slack:.2f}  vs  island "
        f"{island.best.best.avg_slack:.2f} "
        f"(island bests: {[round(b, 1) for b in island.island_bests]})"
    )


if __name__ == "__main__":
    main()
