#!/usr/bin/env python
"""How robustness gains vary with the environment's uncertainty level.

A miniature of the paper's Fig. 4: for mean UL in {2, 4, 6, 8}, schedule a
pool of random instances with HEFT and with the ε = 1.0 robust GA, and
report the average improvement in R1/R2 — large at low UL, shrinking as
uncertainty overwhelms the slack the constraint allows the GA to buy.
Also demonstrates the stochastic-information extension: feeding the GA a
pessimistic duration quantile instead of the mean.

Run:  python examples/uncertainty_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness, quantile_duration_matrix
from repro.graph.generator import DagParams
from repro.platform.uncertainty import UncertaintyParams
from repro.utils.tables import format_series

N_INSTANCES = 4
N_REALIZATIONS = 600
GA = GAParams(max_iterations=200, stagnation_limit=60)


def improvement_at(ul: float) -> tuple[float, float, float]:
    """Mean log-improvement of (makespan, R1, R2) of the GA over HEFT."""
    gains = []
    for i in range(N_INSTANCES):
        problem = repro.SchedulingProblem.random(
            m=4,
            dag_params=DagParams(n=35, ccr=0.1),
            uncertainty_params=UncertaintyParams(mean_ul=ul),
            rng=1000 * int(ul) + i,
        )
        heft = repro.HeftScheduler().schedule(problem)
        ga = repro.RobustScheduler(epsilon=1.0, params=GA, rng=i).solve(problem).schedule
        rep_h = repro.assess_robustness(heft, N_REALIZATIONS, rng=2 * i)
        rep_g = repro.assess_robustness(ga, N_REALIZATIONS, rng=2 * i + 1)
        cap = 1e6
        gains.append(
            (
                np.log(rep_h.mean_makespan / rep_g.mean_makespan),
                np.log(min(rep_g.r1, cap) / min(rep_h.r1, cap)),
                np.log(min(rep_g.r2, cap) / min(rep_h.r2, cap)),
            )
        )
    arr = np.asarray(gains)
    return tuple(arr.mean(axis=0))  # type: ignore[return-value]


def quantile_extension_demo() -> None:
    """Future-work extension: evolve against the 0.9-quantile durations.

    Each variant's ε-bound is computed from HEFT's makespan *under the
    same timing view*, so the constraint is equally tight for both.
    """
    problem = repro.SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=35),
        uncertainty_params=UncertaintyParams(mean_ul=6.0),
        rng=555,
    )
    heft = repro.HeftScheduler().schedule(problem)
    heft_m = repro.expected_makespan(heft)
    mean_fed = GeneticScheduler(
        EpsilonConstraintFitness(1.2, heft_m), GA, rng=1
    ).run(problem).schedule

    q_matrix = quantile_duration_matrix(problem, 0.9)
    heft_q_m = repro.evaluate(
        heft, q_matrix[np.arange(problem.n), heft.proc_of]
    ).makespan
    q_fed = GeneticScheduler(
        EpsilonConstraintFitness(1.2, heft_q_m),
        GA,
        rng=1,
        duration_matrix=q_matrix,
    ).run(problem).schedule

    print("\nstochastic-information extension (UL = 6, eps = 1.2):")
    for name, schedule in [("mean-fed GA", mean_fed), ("q90-fed GA", q_fed)]:
        report = repro.assess_robustness(schedule, N_REALIZATIONS, rng=77)
        print(
            f"  {name:12s} mean makespan {report.mean_makespan:8.2f}  "
            f"miss rate {report.miss_rate:5.3f}  R1 {report.r1:6.2f}"
        )


def main() -> None:
    uls = (2.0, 4.0, 6.0, 8.0)
    series = {"makespan": [], "R1": [], "R2": []}
    for ul in uls:
        m, r1, r2 = improvement_at(ul)
        series["makespan"].append(m)
        series["R1"].append(r1)
        series["R2"].append(r2)
    print(
        format_series(
            "UL",
            list(uls),
            series,
            title="mean log-improvement of eps=1.0 GA over HEFT "
            f"({N_INSTANCES} instances x {N_REALIZATIONS} realizations)",
        )
    )
    quantile_extension_demo()


if __name__ == "__main__":
    main()
