#!/usr/bin/env python
"""The makespan/robustness trade-off: ε sweep vs. an NSGA-II Pareto front.

The paper resolves the bi-objective problem by scalarizing with the
ε-constraint method: each ε in [1.0, 2.0] buys a different point on the
makespan/slack frontier.  This example sweeps ε on one instance, shows how
makespan, slack and the two robustness measures move, then runs the
NSGA-II extension once and checks that the ε-constraint solutions land
near its Pareto front.

Run:  python examples/epsilon_tradeoff.py
"""

from __future__ import annotations

import repro
from repro.ga.engine import GAParams
from repro.graph.generator import DagParams
from repro.moop import Nsga2Scheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.utils.tables import format_table


def main() -> None:
    problem = repro.SchedulingProblem.random(
        m=4,
        dag_params=DagParams(n=30, ccr=0.2),
        uncertainty_params=UncertaintyParams(mean_ul=4.0),
        rng=99,
    )
    params = GAParams(max_iterations=250, stagnation_limit=80)

    rows = []
    sweep_points = []
    for eps in (1.0, 1.2, 1.4, 1.6, 1.8, 2.0):
        result = repro.RobustScheduler(epsilon=eps, params=params, rng=5).solve(problem)
        report = repro.assess_robustness(result.schedule, 800, rng=3)
        rows.append(
            [
                eps,
                report.expected_makespan,
                report.mean_makespan,
                report.avg_slack,
                report.r1,
                report.r2,
            ]
        )
        sweep_points.append((report.expected_makespan, report.avg_slack))

    print(
        format_table(
            ["eps", "M0", "mean M", "avg slack", "R1", "R2"],
            rows,
            title=f"eps-constraint sweep on {problem.name}",
        )
    )

    # NSGA-II: one run approximates the whole frontier.
    front = Nsga2Scheduler(GAParams(max_iterations=150), rng=8).run(problem)
    print(f"\nNSGA-II front ({len(front.front)} non-dominated schedules):")
    print(
        format_table(
            ["makespan", "avg slack"],
            [[ind.makespan, ind.avg_slack] for ind in front.front[:12]],
        )
    )

    # How close do the eps-constraint picks come to the front?
    print("\neps-constraint solutions vs. NSGA-II front at the same budget:")
    for (m0, slack), eps in zip(sweep_points, (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)):
        best = front.best_within_budget(m0 * 1.0001)
        if best is None:
            continue
        print(
            f"  eps={eps:3.1f}: eps-GA slack {slack:8.2f}  |  "
            f"front slack at <= same makespan {best.avg_slack:8.2f}"
        )


if __name__ == "__main__":
    main()
