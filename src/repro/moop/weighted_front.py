"""Trace the Pareto front by sweeping the weighted-sum scalarization.

Companion to :mod:`repro.moop.epsilon_front`: the other classical
scalarization, swept over a weight grid.  The textbook contrast motivates
the paper's choice of the ε-constraint method — weighted sums can only
reach the *convex hull* of the Pareto front, so on fronts with non-convex
(concave) regions the weight sweep clusters at the extremes while the
ε sweep can place points anywhere.  Comparing the two tracings with
hypervolume/coverage makes that textbook statement measurable on real
instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams, GeneticScheduler
from repro.moop.pareto import pareto_front_mask
from repro.moop.weighted_sum import WeightedSumFitness
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["WeightedFrontResult", "weighted_sum_front"]


@dataclass(frozen=True)
class WeightedFrontResult:
    """Non-dominated (makespan, slack) points traced by the weight sweep."""

    weights: tuple[float, ...]
    schedules: tuple[Schedule, ...]
    makespans: np.ndarray
    slacks: np.ndarray

    def objectives(self) -> np.ndarray:
        """``(k, 2)`` array of (makespan, slack) per front member."""
        return np.column_stack([self.makespans, self.slacks])

    def as_minimization(self) -> np.ndarray:
        """Orientation for Pareto utilities: (makespan, -slack)."""
        return np.column_stack([self.makespans, -self.slacks])


def weighted_sum_front(
    problem: SchedulingProblem,
    weights: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4, 0.2, 0.0),
    params: GAParams | None = None,
    rng=None,
) -> WeightedFrontResult:
    """Sweep the weighted-sum GA over *weights*, keep non-dominated outcomes.

    Parameters
    ----------
    problem:
        The instance.
    weights:
        Makespan-emphasis grid (1 = pure makespan, 0 = pure slack).
    params:
        GA hyper-parameters shared by every solve.
    rng:
        Seed or generator; each weight draws an independent child stream.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    gen = as_generator(rng)
    streams = gen.spawn(len(weights))

    kept_w: list[float] = []
    schedules: list[Schedule] = []
    makespans: list[float] = []
    slacks: list[float] = []
    for w, stream in zip(weights, streams):
        fitness = WeightedSumFitness.for_problem(problem, float(w))
        result = GeneticScheduler(fitness, params, stream).run(problem)
        kept_w.append(float(w))
        schedules.append(result.schedule)
        makespans.append(result.best.makespan)
        slacks.append(result.best.avg_slack)

    obj = np.column_stack([makespans, -np.asarray(slacks)])
    keep = pareto_front_mask(obj)
    order = np.argsort(np.asarray(makespans)[keep], kind="stable")
    idx = np.flatnonzero(keep)[order]

    return WeightedFrontResult(
        weights=tuple(kept_w[i] for i in idx),
        schedules=tuple(schedules[i] for i in idx),
        makespans=np.asarray([makespans[i] for i in idx]),
        slacks=np.asarray([slacks[i] for i in idx]),
    )
