"""Trace the makespan/energy Pareto front by sweeping the energy GA.

Same Chankong–Haimes ε-constraint sweep as
:mod:`repro.moop.epsilon_front`, with energy as the constrained
objective: each ε yields the cheapest schedule whose makespan fits the
budget (and whose slack clears the reliability floor); the sweep's
non-dominated (makespan, energy) outcomes approximate the trade-off
front.  Comparable to the NSGA-II front via the same
:func:`~repro.moop.pareto.hypervolume_2d` / coverage metrics, since
both objectives are minimized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.energy.objective import EnergyScheduler
from repro.energy.power import PowerModel
from repro.ga.engine import GAParams
from repro.moop.pareto import pareto_front_mask
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["EnergyFrontResult", "energy_front"]


@dataclass(frozen=True)
class EnergyFrontResult:
    """Non-dominated (makespan, energy) points traced by the ε sweep."""

    epsilons: tuple[float, ...]
    schedules: tuple[Schedule, ...]
    makespans: np.ndarray
    energies: np.ndarray
    slacks: np.ndarray
    m_heft: float

    def objectives(self) -> np.ndarray:
        """``(k, 2)`` array of (makespan, energy) per front member."""
        return np.column_stack([self.makespans, self.energies])

    def as_minimization(self) -> np.ndarray:
        """Both objectives already minimize; alias for symmetry with
        :meth:`~repro.moop.epsilon_front.EpsilonFrontResult.as_minimization`."""
        return self.objectives()


def energy_front(
    problem: SchedulingProblem,
    power: PowerModel,
    epsilons: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    params: GAParams | None = None,
    rng=None,
    *,
    slack_ratio: float = 0.0,
) -> EnergyFrontResult:
    """Sweep ε and keep the non-dominated (makespan, energy) outcomes.

    Each ε solve minimizes energy subject to ``M_0 ≤ ε·M_HEFT`` and
    ``slack ≥ slack_ratio·σ̄_HEFT`` with an independent child RNG stream,
    mirroring :func:`~repro.moop.epsilon_front.epsilon_front` — the two
    sweeps can share a seed and stay bit-reproducible side by side.
    """
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    gen = as_generator(rng)
    streams = gen.spawn(len(epsilons))

    eps_list: list[float] = []
    schedules: list[Schedule] = []
    makespans: list[float] = []
    energies: list[float] = []
    slacks: list[float] = []
    m_heft = None
    for eps, stream in zip(epsilons, streams):
        result = EnergyScheduler(
            epsilon=float(eps),
            power=power,
            params=params,
            rng=stream,
            slack_ratio=slack_ratio,
        ).solve(problem)
        m_heft = result.m_heft
        eps_list.append(float(eps))
        schedules.append(result.schedule)
        makespans.append(result.expected_makespan)
        energies.append(result.energy)
        slacks.append(result.avg_slack)

    obj = np.column_stack([makespans, energies])
    keep = pareto_front_mask(obj)
    order = np.argsort(np.asarray(makespans)[keep], kind="stable")
    idx = np.flatnonzero(keep)[order]

    return EnergyFrontResult(
        epsilons=tuple(eps_list[i] for i in idx),
        schedules=tuple(schedules[i] for i in idx),
        makespans=np.asarray([makespans[i] for i in idx]),
        energies=np.asarray([energies[i] for i in idx]),
        slacks=np.asarray([slacks[i] for i in idx]),
        m_heft=float(m_heft),
    )
