"""Multi-objective optimization extension (DESIGN.md S20).

The paper frames robust scheduling as a bi-objective problem whose optima
form a non-dominated (Pareto) set, then scalarizes via the ε-constraint
method.  This extension implements the canonical alternative — NSGA-II —
so the two approaches can be compared (ablation A1): a single NSGA-II run
approximates the whole makespan/slack Pareto front that would otherwise
require one ε-constraint GA run per ε value.
"""

from repro.moop.energy_front import EnergyFrontResult, energy_front
from repro.moop.epsilon_front import EpsilonFrontResult, epsilon_front
from repro.moop.nsga2 import Nsga2Result, Nsga2Scheduler
from repro.moop.pareto import (
    coverage,
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front_mask,
)
from repro.moop.weighted_front import WeightedFrontResult, weighted_sum_front
from repro.moop.weighted_sum import WeightedSumFitness

__all__ = [
    "dominates",
    "pareto_front_mask",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume_2d",
    "coverage",
    "Nsga2Scheduler",
    "Nsga2Result",
    "WeightedSumFitness",
    "epsilon_front",
    "EpsilonFrontResult",
    "energy_front",
    "EnergyFrontResult",
    "weighted_sum_front",
    "WeightedFrontResult",
]
