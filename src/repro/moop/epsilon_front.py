"""Trace the makespan/slack Pareto front by sweeping the ε-constraint GA.

The classical use of the ε-constraint method (Chankong & Haimes) is not a
single solve but a *sweep*: each ε yields one point of the Pareto front.
This module runs the paper's solver across an ε grid and assembles the
non-dominated set, making the ε-constraint approach directly comparable
to NSGA-II (one multi-objective run) via front-quality metrics
(:func:`~repro.moop.pareto.hypervolume_2d`,
:func:`~repro.moop.pareto.coverage`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.core.robust import RobustScheduler
from repro.ga.engine import GAParams
from repro.moop.pareto import pareto_front_mask
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["EpsilonFrontResult", "epsilon_front"]


@dataclass(frozen=True)
class EpsilonFrontResult:
    """Non-dominated (makespan, slack) points traced by the ε sweep."""

    epsilons: tuple[float, ...]
    schedules: tuple[Schedule, ...]
    makespans: np.ndarray
    slacks: np.ndarray
    m_heft: float

    def objectives(self) -> np.ndarray:
        """``(k, 2)`` array of (makespan, slack) per front member."""
        return np.column_stack([self.makespans, self.slacks])

    def as_minimization(self) -> np.ndarray:
        """Orientation for Pareto utilities: (makespan, -slack)."""
        return np.column_stack([self.makespans, -self.slacks])


def epsilon_front(
    problem: SchedulingProblem,
    epsilons: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    params: GAParams | None = None,
    rng=None,
) -> EpsilonFrontResult:
    """Sweep ε and keep the non-dominated (makespan, slack) outcomes.

    Parameters
    ----------
    problem:
        The instance.
    epsilons:
        Budget grid; the paper sweeps [1.0, 2.0].
    params:
        GA hyper-parameters shared by every solve.
    rng:
        Seed or generator; each ε solve draws an independent child stream.

    Returns
    -------
    EpsilonFrontResult
        Members sorted by makespan; dominated sweep outcomes (an ε whose
        solve was beaten on both objectives by another) are dropped.
    """
    if not epsilons:
        raise ValueError("epsilons must be non-empty")
    gen = as_generator(rng)
    streams = gen.spawn(len(epsilons))

    eps_list: list[float] = []
    schedules: list[Schedule] = []
    makespans: list[float] = []
    slacks: list[float] = []
    m_heft = None
    for eps, stream in zip(epsilons, streams):
        result = RobustScheduler(epsilon=float(eps), params=params, rng=stream).solve(
            problem
        )
        m_heft = result.m_heft
        eps_list.append(float(eps))
        schedules.append(result.schedule)
        makespans.append(result.expected_makespan)
        slacks.append(result.avg_slack)

    obj = np.column_stack([makespans, -np.asarray(slacks)])
    keep = pareto_front_mask(obj)
    order = np.argsort(np.asarray(makespans)[keep], kind="stable")
    idx = np.flatnonzero(keep)[order]

    return EpsilonFrontResult(
        epsilons=tuple(eps_list[i] for i in idx),
        schedules=tuple(schedules[i] for i in idx),
        makespans=np.asarray([makespans[i] for i in idx]),
        slacks=np.asarray([slacks[i] for i in idx]),
        m_heft=float(m_heft),
    )
