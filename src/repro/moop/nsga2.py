"""NSGA-II for the bi-objective (min makespan, max slack) problem.

Reuses the paper's encoding and variation operators (Secs. 4.2.1/4.2.5/
4.2.6) but replaces the ε-constraint scalarization with Deb's elitist
non-dominated sorting selection.  One run yields an approximation of the
whole makespan/slack Pareto front, against which ε-constraint solutions
can be validated (a correct ε-constraint solve should land on or near the
front at its ε-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome, heft_chromosome, random_chromosome
from repro.ga.crossover import single_point_crossover
from repro.ga.engine import GAParams
from repro.ga.fitness import Individual
from repro.ga.mutation import mutate
from repro.moop.pareto import crowding_distance, non_dominated_sort
from repro.schedule.evaluation import evaluate
from repro.utils.rng import as_generator

__all__ = ["Nsga2Result", "Nsga2Scheduler"]


@dataclass(frozen=True)
class Nsga2Result:
    """Outcome of one NSGA-II run."""

    front: list[Individual]
    generations: int

    def objectives(self) -> np.ndarray:
        """``(len(front), 2)`` array of (makespan, avg_slack) per solution."""
        return np.asarray(
            [[ind.makespan, ind.avg_slack] for ind in self.front], dtype=np.float64
        )

    def best_within_budget(self, makespan_budget: float) -> Individual | None:
        """Slack-maximal front member with ``makespan <= budget`` (ε-query)."""
        feasible = [ind for ind in self.front if ind.makespan <= makespan_budget]
        if not feasible:
            return None
        return max(feasible, key=lambda ind: ind.avg_slack)


class Nsga2Scheduler:
    """Bi-objective NSGA-II over (minimize makespan, maximize slack).

    Parameters
    ----------
    params:
        Reuses :class:`~repro.ga.engine.GAParams` for population size,
        operator probabilities, iteration cap and HEFT seeding;
        ``stagnation_limit`` is ignored (front-level convergence detection
        is noisy, so the run always uses ``max_iterations``).
    rng:
        Seed or generator.
    """

    name = "nsga2"

    def __init__(
        self,
        params: GAParams | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.params = params or GAParams()
        self._rng = as_generator(rng)

    # ------------------------------------------------------------------ #

    def _evaluate(
        self, problem: SchedulingProblem, chromosome: Chromosome, cache: dict
    ) -> Individual:
        key = chromosome.key()
        hit = cache.get(key)
        if hit is not None:
            return hit
        schedule = chromosome.decode(problem)
        ev = evaluate(schedule)
        ind = Individual(
            chromosome=chromosome,
            schedule=schedule,
            makespan=ev.makespan,
            avg_slack=ev.avg_slack,
        )
        cache[key] = ind
        return ind

    @staticmethod
    def _objectives(individuals: list[Individual]) -> np.ndarray:
        """Minimization orientation: (makespan, -slack)."""
        return np.asarray(
            [[ind.makespan, -ind.avg_slack] for ind in individuals], dtype=np.float64
        )

    def _rank_and_crowd(
        self, individuals: list[Individual]
    ) -> tuple[np.ndarray, np.ndarray]:
        obj = self._objectives(individuals)
        fronts = non_dominated_sort(obj)
        rank = np.empty(len(individuals), dtype=np.int64)
        crowd = np.empty(len(individuals), dtype=np.float64)
        for r, front in enumerate(fronts):
            rank[front] = r
            crowd[front] = crowding_distance(obj[front])
        return rank, crowd

    def _tournament_pick(
        self, rank: np.ndarray, crowd: np.ndarray
    ) -> int:
        gen = self._rng
        i, j = gen.integers(len(rank)), gen.integers(len(rank))
        if rank[i] != rank[j]:
            return int(i if rank[i] < rank[j] else j)
        if crowd[i] != crowd[j]:
            return int(i if crowd[i] > crowd[j] else j)
        return int(i)

    # ------------------------------------------------------------------ #

    def run(self, problem: SchedulingProblem) -> Nsga2Result:
        """Evolve and return the final non-dominated front."""
        params = self.params
        gen = self._rng
        cache: dict[bytes, Individual] = {}

        population: list[Chromosome] = []
        if params.seed_heft:
            population.append(heft_chromosome(problem))
        while len(population) < params.population_size:
            population.append(random_chromosome(problem, gen))
        individuals = [self._evaluate(problem, c, cache) for c in population]

        generations = 0
        for _ in range(params.max_iterations):
            generations += 1
            rank, crowd = self._rank_and_crowd(individuals)

            # Offspring via crowded binary tournament + the paper's operators.
            children: list[Chromosome] = []
            while len(children) < params.population_size:
                a = individuals[self._tournament_pick(rank, crowd)].chromosome
                b = individuals[self._tournament_pick(rank, crowd)].chromosome
                if gen.random() < params.crossover_prob:
                    c1, c2 = single_point_crossover(a, b, gen)
                else:
                    c1, c2 = a, b
                children.extend((c1, c2))
            children = children[: params.population_size]
            children = [
                mutate(problem, c, gen) if gen.random() < params.mutation_prob else c
                for c in children
            ]
            child_individuals = [self._evaluate(problem, c, cache) for c in children]

            # Elitist (mu + lambda) environmental selection.
            merged = individuals + child_individuals
            obj = self._objectives(merged)
            fronts = non_dominated_sort(obj)
            survivors: list[Individual] = []
            for front in fronts:
                if len(survivors) + front.size <= params.population_size:
                    survivors.extend(merged[i] for i in front)
                else:
                    need = params.population_size - len(survivors)
                    cd = crowding_distance(obj[front])
                    keep = front[np.argsort(-cd, kind="stable")[:need]]
                    survivors.extend(merged[i] for i in keep)
                    break
            individuals = survivors

        obj = self._objectives(individuals)
        front0 = non_dominated_sort(obj)[0]
        # Deduplicate identical objective vectors for a clean front.
        seen: set[tuple[float, float]] = set()
        front: list[Individual] = []
        for i in sorted(front0, key=lambda i: (obj[i, 0], obj[i, 1])):
            key = (float(obj[i, 0]), float(obj[i, 1]))
            if key in seen:
                continue
            seen.add(key)
            front.append(individuals[i])
        return Nsga2Result(front=front, generations=generations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Nsga2Scheduler(Np={self.params.population_size})"
