"""Weighted-sum scalarization (the other classical MOOP method).

Sec. 4 notes that "a few commonly used classical methods can be employed"
for the bi-objective problem; the paper picks the ε-constraint method.
This module provides the obvious alternative for ablations: a normalized
weighted sum of the two objectives,

.. math::

    f(s) = w \\cdot \\frac{M_{ref}}{M_0(s)} + (1 - w) \\cdot
           \\frac{\\bar\\sigma(s)}{\\sigma_{ref}}

with HEFT supplying both normalizers so the two terms are dimensionless
and O(1).  Unlike Eqn. 8 this fitness is population-independent, and
unlike the ε-constraint it cannot *guarantee* a makespan bound — the
trade-off the paper's choice avoids.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.fitness import Individual

__all__ = ["WeightedSumFitness"]


class WeightedSumFitness:
    """Normalized weighted-sum fitness for the GA engine.

    Parameters
    ----------
    weight:
        Makespan emphasis ``w`` in [0, 1] (1 = pure makespan, 0 = pure
        slack), analogous to Eqn. 9's ``r``.
    m_ref:
        Makespan normalizer (typically ``M_HEFT``).
    slack_ref:
        Slack normalizer (typically HEFT's average slack); values <= 0 are
        clamped to a small positive floor since HEFT schedules can have
        near-zero slack.
    """

    def __init__(self, weight: float, m_ref: float, slack_ref: float) -> None:
        if not (0.0 <= weight <= 1.0):
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        if m_ref <= 0:
            raise ValueError(f"m_ref must be positive, got {m_ref}")
        self.weight = float(weight)
        self.m_ref = float(m_ref)
        self.slack_ref = max(float(slack_ref), 1e-9 * self.m_ref)
        self.name = f"weighted-sum(w={weight:g})"

    @classmethod
    def for_problem(
        cls, problem: SchedulingProblem, weight: float
    ) -> "WeightedSumFitness":
        """Build with HEFT-derived normalizers."""
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import evaluate

        ev = evaluate(HeftScheduler().schedule(problem))
        return cls(weight, ev.makespan, ev.avg_slack)

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """Per-individual weighted sum (larger = fitter)."""
        makespans = np.asarray([ind.makespan for ind in population], dtype=np.float64)
        slacks = np.asarray([ind.avg_slack for ind in population], dtype=np.float64)
        return self.weight * (self.m_ref / makespans) + (1.0 - self.weight) * (
            slacks / self.slack_ref
        )
