"""Pareto-dominance utilities (all objectives minimized).

Callers with mixed-orientation objectives (the library's canonical pair is
*minimize makespan, maximize slack*) negate the maximized columns before
calling in, e.g. ``np.column_stack([makespans, -slacks])``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dominates",
    "pareto_front_mask",
    "non_dominated_sort",
    "crowding_distance",
    "hypervolume_2d",
    "coverage",
]


def _check_objectives(objectives: np.ndarray) -> np.ndarray:
    obj = np.asarray(objectives, dtype=np.float64)
    if obj.ndim != 2:
        raise ValueError(f"objectives must be (N, k), got shape {obj.shape}")
    if not np.all(np.isfinite(obj)):
        raise ValueError("objectives must be finite")
    return obj


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether point *a* Pareto-dominates *b* (<= everywhere, < somewhere)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows.

    Duplicate points are all kept (none strictly dominates its copy).
    """
    obj = _check_objectives(objectives)
    n = obj.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        # A point dominated by i can never dominate anything i doesn't,
        # so it is safe to only test the still-unmasked rows.
        dominated = np.all(obj >= obj[i], axis=1) & np.any(obj > obj[i], axis=1)
        mask &= ~dominated
        mask[i] = True
    return mask


def non_dominated_sort(objectives: np.ndarray) -> list[np.ndarray]:
    """Fast non-dominated sort (Deb et al.): fronts of row indices.

    ``fronts[0]`` is the Pareto front; each later front is the Pareto front
    of the remainder.
    """
    obj = _check_objectives(objectives)
    n = obj.shape[0]
    if n == 0:
        return []

    # Pairwise dominance matrix: dom[i, j] = i dominates j.
    le = np.all(obj[:, None, :] <= obj[None, :, :], axis=2)
    lt = np.any(obj[:, None, :] < obj[None, :, :], axis=2)
    dom = le & lt

    n_dominators = dom.sum(axis=0)
    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    counts = n_dominators.astype(np.int64).copy()
    while np.any(remaining):
        front = np.flatnonzero(remaining & (counts == 0))
        if front.size == 0:  # pragma: no cover - impossible for finite inputs
            raise RuntimeError("non-dominated sort failed to make progress")
        fronts.append(front)
        remaining[front] = False
        counts -= dom[front].sum(axis=0)
    return fronts


def hypervolume_2d(objectives: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume (area) dominated by a 2-D minimization front.

    Parameters
    ----------
    objectives:
        ``(N, 2)`` points (all objectives minimized).
    reference:
        The reference (nadir) point; points not strictly dominating it
        contribute nothing.

    Notes
    -----
    Standard sweep: sort the non-dominated subset by the first objective
    and accumulate the rectangles against the reference.  Larger is
    better.
    """
    obj = _check_objectives(objectives)
    if obj.shape[1] != 2:
        raise ValueError(f"hypervolume_2d needs 2 objectives, got {obj.shape[1]}")
    ref = np.asarray(reference, dtype=np.float64)
    if ref.shape != (2,):
        raise ValueError(f"reference must have shape (2,), got {ref.shape}")

    inside = np.all(obj < ref, axis=1)
    if not np.any(inside):
        return 0.0
    pts = obj[inside]
    pts = pts[pareto_front_mask(pts)]
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]

    volume = 0.0
    prev_y = float(ref[1])
    for x, y in pts:
        if y < prev_y:
            volume += (float(ref[0]) - float(x)) * (prev_y - float(y))
            prev_y = float(y)
    return volume


def coverage(front_a: np.ndarray, front_b: np.ndarray) -> float:
    """Zitzler's C-metric: fraction of *front_b* weakly dominated by *front_a*.

    ``coverage(A, B) = 1`` means every point of B is dominated by (or
    equal to) some point of A; not symmetric.
    """
    a = _check_objectives(front_a)
    b = _check_objectives(front_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("fronts must share the objective dimension")
    if b.shape[0] == 0:
        raise ValueError("front_b must be non-empty")
    covered = 0
    for q in b:
        weakly = np.all(a <= q, axis=1) & (np.any(a < q, axis=1) | np.all(a == q, axis=1))
        if np.any(weakly):
            covered += 1
    return covered / b.shape[0]


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each row within one front (Deb et al.).

    Boundary points of every objective get ``inf``; degenerate objectives
    (all values equal) contribute nothing.
    """
    obj = _check_objectives(objectives)
    n, k = obj.shape
    dist = np.zeros(n, dtype=np.float64)
    if n <= 2:
        return np.full(n, np.inf)
    for j in range(k):
        order = np.argsort(obj[:, j], kind="stable")
        lo, hi = obj[order[0], j], obj[order[-1], j]
        dist[order[0]] = np.inf
        dist[order[-1]] = np.inf
        span = hi - lo
        if span <= 0:
            continue
        gaps = (obj[order[2:], j] - obj[order[:-2], j]) / span
        dist[order[1:-1]] += gaps
    return dist
