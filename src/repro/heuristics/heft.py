"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu).

The paper's reference heuristic [24]:

1. compute every task's *upward rank*
   ``rank_u(i) = w̄_i + max_{j in succ(i)} ( c̄_ij + rank_u(j) )``
   with ``w̄_i`` the processor-average expected execution time and ``c̄_ij``
   the processor-pair-average communication cost;
2. consider tasks in decreasing ``rank_u`` (a topological order);
3. assign each task to the processor minimizing its earliest finish time
   under the *insertion* policy.

``M_HEFT``, the makespan of this schedule under expected durations, is the
ε-constraint reference bound (Eqn. 7); the HEFT chromosome also seeds the
GA's initial population (Sec. 4.2.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.heuristics.base import (
    PartialSchedule,
    average_comm_costs,
    average_execution_times,
)
from repro.schedule.schedule import Schedule

__all__ = ["upward_ranks", "downward_ranks", "HeftScheduler"]


def upward_ranks(problem: SchedulingProblem) -> np.ndarray:
    """Upward rank of every task (``rank_u``), computed in reverse topo order."""
    graph = problem.graph
    w = average_execution_times(problem)
    c = average_comm_costs(problem)
    rank = w.copy()
    for v in graph.topological[::-1]:
        v = int(v)
        eidx = graph.successor_edge_indices(v)
        if eidx.size:
            succ = graph.edge_dst[eidx]
            rank[v] = w[v] + float((c[eidx] + rank[succ]).max())
    return rank


def downward_ranks(problem: SchedulingProblem) -> np.ndarray:
    """Downward rank (``rank_d``): longest average path from an entry, excluding the task."""
    graph = problem.graph
    w = average_execution_times(problem)
    c = average_comm_costs(problem)
    rank = np.zeros(graph.n, dtype=np.float64)
    for v in graph.topological:
        v = int(v)
        eidx = graph.predecessor_edge_indices(v)
        if eidx.size:
            pred = graph.edge_src[eidx]
            rank[v] = float((rank[pred] + w[pred] + c[eidx]).max())
    return rank


class HeftScheduler:
    """Insertion-based HEFT list scheduler.

    Deterministic: rank ties are broken toward the smaller task id and
    processor ties toward the smaller processor index.
    """

    name = "heft"

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Build the HEFT schedule for *problem*."""
        ranks = upward_ranks(problem)
        # Decreasing rank; np.lexsort is ascending, so negate. Secondary key
        # (task id) makes the order fully deterministic.
        order = np.lexsort((np.arange(problem.n), -ranks))
        partial = PartialSchedule(problem)
        for v in order:
            v = int(v)
            proc, _, _ = partial.best_processor(v)
            partial.place(v, proc)
        return partial.to_schedule()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "HeftScheduler()"
