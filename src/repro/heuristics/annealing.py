"""Simulated-annealing scheduler.

The paper groups GAs with simulated annealing under "guided random search
methods" (Sec. 1, ref. [15]); this module provides the SA member of that
family as an alternative search engine over the same solution encoding —
the chromosome's (topological order, processor map) — with the GA's
topological-window mutation as the neighbourhood move.

Three energy modes mirror the GA fitness policies:

* ``"makespan"`` — minimize expected makespan;
* ``"slack"`` — maximize average slack;
* ``"eps-slack"`` — maximize slack subject to ``M_0 <= eps * M_HEFT``
  (violations pay a steep penalty proportional to the overshoot).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome, heft_chromosome, random_chromosome
from repro.ga.mutation import mutate
from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["AnnealingParams", "AnnealingScheduler"]


@dataclass(frozen=True)
class AnnealingParams:
    """SA hyper-parameters.

    Attributes
    ----------
    iterations:
        Total mutation proposals.
    initial_temp:
        Starting temperature, *relative* to the initial energy magnitude
        (the absolute scale is set automatically so acceptance behaviour
        is instance-size independent).
    cooling:
        Geometric cooling factor applied every iteration.
    restarts:
        Independent chains; the best end state wins.
    seed_heft:
        Start chains from the HEFT chromosome (first chain only; the rest
        start random).
    """

    iterations: int = 2000
    initial_temp: float = 0.1
    cooling: float = 0.998
    restarts: int = 1
    seed_heft: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.initial_temp <= 0:
            raise ValueError("initial_temp must be positive")
        if not (0.0 < self.cooling <= 1.0):
            raise ValueError("cooling must be in (0, 1]")
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")


class AnnealingScheduler:
    """Simulated annealing over the GA's chromosome space.

    Parameters
    ----------
    objective:
        ``"makespan"``, ``"slack"`` or ``"eps-slack"``.
    epsilon:
        Budget multiplier, required iff ``objective == "eps-slack"``.
    params:
        SA hyper-parameters.
    rng:
        Seed or generator.
    """

    name = "annealing"

    def __init__(
        self,
        objective: str = "makespan",
        *,
        epsilon: float | None = None,
        params: AnnealingParams | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if objective not in ("makespan", "slack", "eps-slack"):
            raise ValueError(f"unknown objective {objective!r}")
        if objective == "eps-slack" and (epsilon is None or epsilon <= 0):
            raise ValueError("eps-slack objective requires a positive epsilon")
        self.objective = objective
        self.epsilon = epsilon
        self.params = params or AnnealingParams()
        self._rng = as_generator(rng)

    # ------------------------------------------------------------------ #

    def _energy_fn(self, problem: SchedulingProblem):
        if self.objective == "makespan":
            return lambda makespan, slack: makespan
        if self.objective == "slack":
            return lambda makespan, slack: -slack
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import expected_makespan

        bound = self.epsilon * expected_makespan(HeftScheduler().schedule(problem))

        def eps_energy(makespan: float, slack: float) -> float:
            if makespan <= bound * (1 + 1e-12):
                return -slack
            # Infeasible: dominated by every feasible state (slack >= 0 so
            # feasible energies are <= 0), ordered by violation.
            return (makespan - bound) / bound

        return eps_energy

    def _evaluate(self, problem: SchedulingProblem, c: Chromosome) -> tuple[float, float]:
        ev = evaluate(c.decode(problem))
        return ev.makespan, ev.avg_slack

    def run(self, problem: SchedulingProblem) -> tuple[Chromosome, float]:
        """Anneal and return ``(best chromosome, best energy)``."""
        params = self.params
        gen = self._rng
        energy_of = self._energy_fn(problem)

        best: Chromosome | None = None
        best_energy = math.inf
        for chain in range(params.restarts):
            if chain == 0 and params.seed_heft:
                current = heft_chromosome(problem)
            else:
                current = random_chromosome(problem, gen)
            cur_makespan, cur_slack = self._evaluate(problem, current)
            cur_energy = energy_of(cur_makespan, cur_slack)
            # Absolute temperature scale: relative temp x initial magnitude.
            scale = max(abs(cur_energy), 1e-9)
            temp = params.initial_temp * scale

            if cur_energy < best_energy:
                best, best_energy = current, cur_energy

            for _ in range(params.iterations):
                candidate = mutate(problem, current, gen)
                mk, sl = self._evaluate(problem, candidate)
                cand_energy = energy_of(mk, sl)
                delta = cand_energy - cur_energy
                if delta <= 0 or gen.random() < math.exp(-delta / max(temp, 1e-300)):
                    current, cur_energy = candidate, cand_energy
                    if cur_energy < best_energy:
                        best, best_energy = current, cur_energy
                temp *= params.cooling
        assert best is not None
        return best, best_energy

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Scheduler-protocol facade: anneal and decode the best state."""
        best, _ = self.run(problem)
        return best.decode(problem)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnnealingScheduler(objective={self.objective!r})"
