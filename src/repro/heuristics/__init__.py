"""Deterministic scheduling heuristics.

* :class:`~repro.heuristics.heft.HeftScheduler` — the HEFT algorithm of
  Topcuoglu, Hariri & Wu (ref. [24]), the paper's baseline and the source
  of both the ε-constraint bound ``M_HEFT`` (Eqn. 7) and the GA's seed
  chromosome (Sec. 4.2.2).
* :class:`~repro.heuristics.cpop.CpopScheduler` — CPOP, from the same
  paper, as an extra baseline for tests and ablations.
* :class:`~repro.heuristics.minmin.MinMinScheduler` — a min-min style
  ready-list scheduler.
* :class:`~repro.heuristics.peft.PeftScheduler` — PEFT (Arabnejad &
  Barbosa), ranking and selecting via the optimistic cost table.
* :class:`~repro.heuristics.padded.QuantileHeftScheduler` — HEFT run on
  quantile-padded times, rebound to the true expected-time problem.
* :class:`~repro.heuristics.annealing.AnnealingScheduler` — simulated
  annealing over (order, assignment) pairs, a non-list-based baseline.
* :class:`~repro.heuristics.random_sched.RandomScheduler` — uniformly
  random valid schedules (GA initial population, Sec. 4.2.2).

Every list scheduler above decomposes into four orthogonal choices —
how tasks are *ranked*, how a processor is *selected*, whether slots may
be *inserted* into idle gaps, and in what *order* tasks are visited.
:mod:`repro.algebra` makes that decomposition explicit: each class here
(except the annealer and the random baseline) is reproduced bit-identically
by a named :class:`~repro.algebra.Components` tuple, and new schedulers
are built by mixing axes rather than subclassing.  The classes in this
package remain the verified references.

All heuristics see only the *expected* execution-time matrix, matching the
paper's information model.
"""

from repro.heuristics.annealing import AnnealingParams, AnnealingScheduler
from repro.heuristics.base import PartialSchedule, Scheduler
from repro.heuristics.cpop import CpopScheduler
from repro.heuristics.heft import HeftScheduler, upward_ranks
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.padded import QuantileHeftScheduler
from repro.heuristics.peft import PeftScheduler, optimistic_cost_table
from repro.heuristics.random_sched import RandomScheduler, random_schedule

__all__ = [
    "Scheduler",
    "PartialSchedule",
    "HeftScheduler",
    "upward_ranks",
    "CpopScheduler",
    "MinMinScheduler",
    "QuantileHeftScheduler",
    "PeftScheduler",
    "optimistic_cost_table",
    "AnnealingScheduler",
    "AnnealingParams",
    "RandomScheduler",
    "random_schedule",
]
