"""Deterministic scheduling heuristics.

* :class:`~repro.heuristics.heft.HeftScheduler` — the HEFT algorithm of
  Topcuoglu, Hariri & Wu (ref. [24]), the paper's baseline and the source
  of both the ε-constraint bound ``M_HEFT`` (Eqn. 7) and the GA's seed
  chromosome (Sec. 4.2.2).
* :class:`~repro.heuristics.cpop.CpopScheduler` — CPOP, from the same
  paper, as an extra baseline for tests and ablations.
* :class:`~repro.heuristics.minmin.MinMinScheduler` — a min-min style
  ready-list scheduler.
* :class:`~repro.heuristics.random_sched.RandomScheduler` — uniformly
  random valid schedules (GA initial population, Sec. 4.2.2).

All heuristics see only the *expected* execution-time matrix, matching the
paper's information model.
"""

from repro.heuristics.annealing import AnnealingParams, AnnealingScheduler
from repro.heuristics.base import PartialSchedule, Scheduler
from repro.heuristics.cpop import CpopScheduler
from repro.heuristics.heft import HeftScheduler, upward_ranks
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.padded import QuantileHeftScheduler
from repro.heuristics.peft import PeftScheduler, optimistic_cost_table
from repro.heuristics.random_sched import RandomScheduler, random_schedule

__all__ = [
    "Scheduler",
    "PartialSchedule",
    "HeftScheduler",
    "upward_ranks",
    "CpopScheduler",
    "MinMinScheduler",
    "QuantileHeftScheduler",
    "PeftScheduler",
    "optimistic_cost_table",
    "AnnealingScheduler",
    "AnnealingParams",
    "RandomScheduler",
    "random_schedule",
]
