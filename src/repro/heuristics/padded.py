"""Quantile-padded HEFT — the intro's "judicious overestimation" baseline.

The paper's introduction lists, as an alternative to robust scheduling,
"judiciously overestimat[ing] the execution time of each task according
to its variability hoping that the real execution time will not exceed
the estimated one", warning that "this approach could result in a low
resource utilization".  This scheduler makes that strawman concrete so it
can be measured (ablation A7): HEFT is fed the ``q``-quantile of each
duration distribution instead of the mean, producing placements padded
against overruns; the resulting schedule is then executed (and evaluated)
under the true model.

Note that a *uniform* multiplicative padding would change nothing — HEFT
is scale-invariant — so padding must be variability-proportional, which
is exactly what per-(task, processor) quantiles are.
"""

from __future__ import annotations

from repro.core.problem import SchedulingProblem
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyModel
from repro.schedule.schedule import Schedule

__all__ = ["QuantileHeftScheduler"]


class QuantileHeftScheduler:
    """HEFT with variability-proportional overestimation.

    Parameters
    ----------
    q:
        Duration quantile fed to HEFT (``0.5`` reproduces plain HEFT for
        the uniform model, where the median equals the mean; larger values
        pad high-variability tasks more).
    """

    def __init__(self, q: float = 0.9) -> None:
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        self.q = float(q)
        self.name = f"heft-q{q:g}"

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Plan with the q-quantile times; return a schedule of *problem*."""
        padded_times = problem.uncertainty.quantile_times(self.q)
        proxy = SchedulingProblem(
            graph=problem.graph,
            platform=problem.platform,
            uncertainty=UncertaintyModel.deterministic(padded_times),
            name=f"{problem.name}@q{self.q:g}",
        )
        planned = HeftScheduler().schedule(proxy)
        # Re-bind the processor orders to the real problem: evaluation and
        # realization then use the true (expected / sampled) durations.
        return Schedule(problem, [list(t) for t in planned.proc_orders])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantileHeftScheduler(q={self.q})"
