"""Shared machinery for insertion-based list schedulers.

HEFT, CPOP and min-min all share the same inner loop: maintain a partial
schedule, compute each candidate's earliest start/finish time on every
processor with the *insertion* policy (a task may fill an idle gap between
two already-placed tasks), and commit the best placement.
:class:`PartialSchedule` implements that machinery once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.schedule.schedule import Schedule

__all__ = ["Scheduler", "PartialSchedule"]


@runtime_checkable
class Scheduler(Protocol):
    """Anything that maps a problem to a schedule."""

    name: str

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Produce a complete valid schedule for *problem*."""
        ...  # pragma: no cover - protocol


@dataclass
class _Slot:
    """A placed task interval on a processor (kept sorted by start)."""

    start: float
    finish: float
    task: int


@dataclass
class PartialSchedule:
    """Incrementally built schedule with insertion-based EFT queries.

    Parameters
    ----------
    problem:
        The scheduling problem; the expected execution-time matrix drives
        all placement decisions (the paper's information model).
    append_only:
        When true, :meth:`eft` never fills idle gaps between already
        placed tasks — a task can only start after the processor's last
        committed finish (the component algebra's ``append`` insertion
        policy).  The default preserves the classic insertion policy.

    Notes
    -----
    ``eft(task, proc)`` is side-effect free; ``place(task, proc)`` commits
    and ``unplace(task)`` is its exact inverse (used by lookahead
    selection to probe placements).  A task may only be placed after all
    its predecessors (the caller's priority order must be topological
    over placed prefixes, which holds for rank-based and ready-list
    orders alike).
    """

    problem: SchedulingProblem
    append_only: bool = False
    slots: list[list[_Slot]] = field(init=False)
    finish_time: np.ndarray = field(init=False)
    proc_of: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.slots = [[] for _ in range(self.problem.m)]
        self.finish_time = np.full(self.problem.n, np.nan, dtype=np.float64)
        self.proc_of = np.full(self.problem.n, -1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_placed(self, task: int) -> bool:
        """Whether *task* has been committed."""
        return self.proc_of[task] >= 0

    def ready_time(self, task: int, proc: int) -> float:
        """Earliest moment all of *task*'s input data is available on *proc*.

        Raises if a predecessor is not yet placed.
        """
        graph = self.problem.graph
        platform = self.problem.platform
        ready = 0.0
        for e in graph.predecessor_edge_indices(task):
            u = int(graph.edge_src[e])
            if not self.is_placed(u):
                raise ValueError(
                    f"cannot query task {task}: predecessor {u} not placed"
                )
            arrival = self.finish_time[u] + platform.comm_time(
                float(graph.edge_data[e]), int(self.proc_of[u]), proc
            )
            ready = max(ready, arrival)
        return ready

    def _find_slot(self, proc: int, ready: float, duration: float) -> float:
        """Insertion policy: earliest start >= *ready* of a *duration* gap."""
        if self.append_only:
            row = self.slots[proc]
            return max(ready, row[-1].finish if row else 0.0)
        prev_finish = 0.0
        for slot in self.slots[proc]:
            start = max(ready, prev_finish)
            if start + duration <= slot.start:
                return start
            prev_finish = slot.finish
        return max(ready, prev_finish)

    def eft(self, task: int, proc: int) -> tuple[float, float]:
        """Earliest (start, finish) of *task* on *proc* under insertion."""
        duration = float(self.problem.expected_times[task, proc])
        start = self._find_slot(proc, self.ready_time(task, proc), duration)
        return start, start + duration

    def best_processor(self, task: int) -> tuple[int, float, float]:
        """Processor minimizing EFT (ties to the lowest index).

        Returns ``(proc, start, finish)``.
        """
        best: tuple[int, float, float] | None = None
        for p in range(self.problem.m):
            start, fin = self.eft(task, p)
            if best is None or fin < best[2]:
                best = (p, start, fin)
        assert best is not None
        return best

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def place(self, task: int, proc: int) -> tuple[float, float]:
        """Commit *task* to *proc* at its insertion-based EFT slot."""
        if self.is_placed(task):
            raise ValueError(f"task {task} already placed")
        start, fin = self.eft(task, proc)
        entry = _Slot(start=start, finish=fin, task=task)
        row = self.slots[proc]
        # Keep the slot list sorted by start time.
        lo, hi = 0, len(row)
        while lo < hi:
            mid = (lo + hi) // 2
            if row[mid].start < start:
                lo = mid + 1
            else:
                hi = mid
        row.insert(lo, entry)
        self.finish_time[task] = fin
        self.proc_of[task] = proc
        return start, fin

    def unplace(self, task: int) -> None:
        """Exact inverse of :meth:`place` (lookahead probing).

        Only safe for a task none of whose successors have been placed —
        which is always true for the most recently placed task of any
        topological placement order.
        """
        proc = int(self.proc_of[task])
        if proc < 0:
            raise ValueError(f"task {task} is not placed")
        row = self.slots[proc]
        for i, slot in enumerate(row):
            if slot.task == task:
                del row[i]
                break
        else:  # pragma: no cover - place() always records the slot
            raise RuntimeError(f"slot for task {task} missing on proc {proc}")
        self.finish_time[task] = np.nan
        self.proc_of[task] = -1

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_schedule(self) -> Schedule:
        """Freeze into a :class:`Schedule` (all tasks must be placed)."""
        if np.any(self.proc_of < 0):
            missing = np.flatnonzero(self.proc_of < 0)
            raise ValueError(f"tasks not yet placed: {missing.tolist()}")
        orders = [
            np.asarray([s.task for s in row], dtype=np.int64) for row in self.slots
        ]
        return Schedule(self.problem, orders)


def average_execution_times(problem: SchedulingProblem) -> np.ndarray:
    """Mean expected execution time of every task across processors."""
    return problem.expected_times.mean(axis=1)


def average_comm_costs(problem: SchedulingProblem) -> np.ndarray:
    """Mean communication cost of every edge across distinct processor pairs.

    Aligned with the graph's canonical edge order; zero on single-processor
    platforms.
    """
    return problem.graph.edge_data * problem.platform.mean_inverse_rate
