"""CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu).

Companion heuristic to HEFT from the same paper, included as an additional
deterministic baseline for tests and ablation benches:

1. priority(i) = rank_u(i) + rank_d(i); the (average-weight) critical path
   is traced from the highest-priority entry task;
2. all critical-path tasks go to the single processor minimizing the CP's
   total expected execution time;
3. remaining tasks are placed by insertion-based EFT in decreasing
   priority order, but processed in ready order (a task is scheduled only
   once all predecessors are placed).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.heuristics.base import PartialSchedule
from repro.heuristics.heft import downward_ranks, upward_ranks
from repro.schedule.schedule import Schedule

__all__ = ["CpopScheduler", "critical_path_tasks"]


def critical_path_tasks(problem: SchedulingProblem) -> list[int]:
    """Tasks on the average-weight critical path, traced by priority.

    Starting at the entry task with maximal ``rank_u + rank_d``, repeatedly
    step to the successor of (numerically) equal priority until an exit
    task is reached — the CPOP construction.
    """
    graph = problem.graph
    prio = upward_ranks(problem) + downward_ranks(problem)
    entries = graph.entry_nodes
    v = int(entries[np.argmax(prio[entries])])
    cp_value = prio[v]
    path = [v]
    tol = 1e-9 * max(cp_value, 1.0)
    while True:
        succ = graph.successors(v)
        if succ.size == 0:
            break
        # The on-path successor shares (numerically) the CP priority.
        cand = succ[np.argmax(prio[succ])]
        if prio[cand] < cp_value - tol:
            # Numerical guard: still follow the best successor.
            pass
        v = int(cand)
        path.append(v)
    return path


class CpopScheduler:
    """Critical-Path-On-a-Processor list scheduler."""

    name = "cpop"

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Build the CPOP schedule for *problem*."""
        graph = problem.graph
        prio = upward_ranks(problem) + downward_ranks(problem)
        cp = set(critical_path_tasks(problem))
        # Processor minimizing total expected CP execution time.
        cp_idx = np.asarray(sorted(cp), dtype=np.int64)
        cp_proc = int(np.argmin(problem.expected_times[cp_idx].sum(axis=0)))

        partial = PartialSchedule(problem)
        indeg = graph.in_degree().astype(np.int64).copy()
        # Max-heap on priority (negated); ties by task id for determinism.
        ready = [(-float(prio[v]), int(v)) for v in np.flatnonzero(indeg == 0)]
        heapq.heapify(ready)
        placed = 0
        while ready:
            _, v = heapq.heappop(ready)
            if v in cp:
                partial.place(v, cp_proc)
            else:
                proc, _, _ = partial.best_processor(v)
                partial.place(v, proc)
            placed += 1
            for w in graph.successors(v):
                w = int(w)
                indeg[w] -= 1
                if indeg[w] == 0:
                    heapq.heappush(ready, (-float(prio[w]), w))
        if placed != problem.n:  # pragma: no cover - graph is validated acyclic
            raise RuntimeError("CPOP failed to place all tasks")
        return partial.to_schedule()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CpopScheduler()"
