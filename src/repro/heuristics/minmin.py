"""Min-min style ready-list scheduler.

A DAG adaptation of the classic min-min heuristic: at every step, compute
each *ready* task's best (insertion-based) earliest finish time over all
processors, then commit the ready task whose best EFT is smallest.  Ties
break toward the smaller task id.  Included as an additional deterministic
baseline for tests and ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.heuristics.base import PartialSchedule
from repro.schedule.schedule import Schedule

__all__ = ["MinMinScheduler"]


class MinMinScheduler:
    """DAG min-min: repeatedly place the ready task with the smallest best EFT."""

    name = "minmin"

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Build the min-min schedule for *problem*."""
        graph = problem.graph
        partial = PartialSchedule(problem)
        indeg = graph.in_degree().astype(np.int64).copy()
        ready = set(int(v) for v in np.flatnonzero(indeg == 0))

        for _ in range(problem.n):
            best: tuple[float, int, int] | None = None  # (eft, task, proc)
            for v in sorted(ready):
                proc, _, fin = partial.best_processor(v)
                if best is None or fin < best[0]:
                    best = (fin, v, proc)
            if best is None:  # pragma: no cover - graph is validated acyclic
                raise RuntimeError("min-min deadlocked: no ready task")
            _, v, proc = best
            partial.place(v, proc)
            ready.discard(v)
            for w in graph.successors(v):
                w = int(w)
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.add(w)
        return partial.to_schedule()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MinMinScheduler()"
