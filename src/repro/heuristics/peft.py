"""PEFT — Predict Earliest Finish Time (Arabnejad & Barbosa, TPDS 2014).

A lookahead list scheduler added as a stronger modern baseline: an
*optimistic cost table* ``OCT(t, p)`` estimates the best possible remaining
path cost if task ``t`` runs on processor ``p``::

    OCT(t, p) = max_{s in succ(t)} min_{q} ( OCT(s, q) + w(s, q)
                                             + [p != q] * avg_comm(t, s) )

(0 for exit tasks).  Tasks are prioritised by the processor-average OCT
and each is placed on the processor minimizing ``EFT + OCT`` — trading a
locally optimal finish for a better predicted downstream.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.heuristics.base import PartialSchedule, average_comm_costs
from repro.schedule.schedule import Schedule

__all__ = ["optimistic_cost_table", "PeftScheduler"]


def optimistic_cost_table(problem: SchedulingProblem) -> np.ndarray:
    """The ``(n, m)`` OCT matrix, computed in reverse topological order."""
    graph = problem.graph
    w = problem.expected_times  # (n, m)
    cbar = average_comm_costs(problem)  # per canonical edge
    m = problem.m
    oct_table = np.zeros((graph.n, m), dtype=np.float64)
    not_eye = 1.0 - np.eye(m)

    for v in graph.topological[::-1]:
        v = int(v)
        eidx = graph.successor_edge_indices(v)
        if eidx.size == 0:
            continue
        best = np.zeros((eidx.size, m), dtype=np.float64)
        for k, e in enumerate(eidx):
            s = int(graph.edge_dst[e])
            # cost[q] of running successor s on q, seen from each p:
            # OCT(s,q) + w(s,q) + comm if p != q.
            base = oct_table[s] + w[s]  # (m,)
            # (p, q) matrix; min over q per p.
            cand = base[None, :] + cbar[e] * not_eye
            best[k] = cand.min(axis=1)
        oct_table[v] = best.max(axis=0)
    return oct_table


class PeftScheduler:
    """Insertion-based PEFT list scheduler.

    Processed in ready order (a task is only placed once its predecessors
    are), prioritised by descending average OCT; ties break to the smaller
    task id, processor ties to the smaller index.
    """

    name = "peft"

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Build the PEFT schedule for *problem*."""
        graph = problem.graph
        oct_table = optimistic_cost_table(problem)
        rank = oct_table.mean(axis=1)

        partial = PartialSchedule(problem)
        indeg = graph.in_degree().astype(np.int64).copy()
        ready = [(-float(rank[v]), int(v)) for v in np.flatnonzero(indeg == 0)]
        heapq.heapify(ready)
        placed = 0
        while ready:
            _, v = heapq.heappop(ready)
            best: tuple[float, int] | None = None  # (eft + oct, proc)
            for p in range(problem.m):
                _, fin = partial.eft(v, p)
                score = fin + float(oct_table[v, p])
                if best is None or score < best[0]:
                    best = (score, p)
            assert best is not None
            partial.place(v, best[1])
            placed += 1
            for w_ in graph.successors(v):
                w_ = int(w_)
                indeg[w_] -= 1
                if indeg[w_] == 0:
                    heapq.heappush(ready, (-float(rank[w_]), w_))
        if placed != problem.n:  # pragma: no cover - graph validated acyclic
            raise RuntimeError("PEFT failed to place all tasks")
        return partial.to_schedule()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PeftScheduler()"
