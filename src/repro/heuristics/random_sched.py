"""Uniformly random valid schedules.

The GA's initial population (Sec. 4.2.2) pairs a random topological sort
(the scheduling string) with an independent uniform processor draw per
task; processor execution order follows the scheduling string.  The same
construction doubles as a weak baseline for sanity checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.topology import random_topological_order
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["random_schedule", "RandomScheduler"]


def random_schedule(
    problem: SchedulingProblem, rng: np.random.Generator | int | None = None
) -> Schedule:
    """Sample a random valid schedule (random topo order + random procs)."""
    gen = as_generator(rng)
    order = random_topological_order(problem.graph, gen)
    proc_of = gen.integers(problem.m, size=problem.n)
    return Schedule.from_assignment(problem, order, proc_of)


class RandomScheduler:
    """Scheduler facade around :func:`random_schedule` (seedable)."""

    name = "random"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = as_generator(rng)

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Draw one random valid schedule."""
        return random_schedule(problem, self._rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RandomScheduler()"
