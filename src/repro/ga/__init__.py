"""Bi-objective genetic algorithm (paper Sec. 4.2).

* :class:`~repro.ga.chromosome.Chromosome` — scheduling string + processor
  assignment (Sec. 4.2.1), decodable to a :class:`~repro.schedule.Schedule`.
* :mod:`~repro.ga.crossover` / :mod:`~repro.ga.mutation` /
  :mod:`~repro.ga.selection` — the paper's precedence-preserving operators
  (Secs. 4.2.4–4.2.6).
* :mod:`~repro.ga.fitness` — pluggable fitness policies: pure makespan
  (Fig. 2), pure slack (Fig. 3), and the ε-constraint penalty fitness of
  Eqn. 8 (Figs. 4–8), plus the quantile-fed extension.
* :class:`~repro.ga.engine.GeneticScheduler` — the evolution loop with
  HEFT seeding, binary tournament, elitism and the paper's stopping rule.
"""

from repro.ga.analytic_fitness import AnalyticRobustnessFitness
from repro.ga.chromosome import Chromosome, heft_chromosome, random_chromosome
from repro.ga.crossover import single_point_crossover
from repro.ga.engine import GAHistory, GAParams, GAResult, GeneticScheduler
from repro.ga.island import IslandGeneticScheduler, IslandParams, IslandResult
from repro.ga.fitness import (
    EpsilonConstraintFitness,
    FitnessPolicy,
    Individual,
    MakespanFitness,
    SlackFitness,
)
from repro.ga.mutation import legal_window, mutate
from repro.ga.selection import binary_tournament
from repro.ga.variants import (
    adjacent_swap_mutation,
    order_only_crossover,
    rebalance_mutation,
    uniform_processor_crossover,
)

__all__ = [
    "Chromosome",
    "random_chromosome",
    "heft_chromosome",
    "single_point_crossover",
    "mutate",
    "legal_window",
    "binary_tournament",
    "FitnessPolicy",
    "Individual",
    "MakespanFitness",
    "SlackFitness",
    "EpsilonConstraintFitness",
    "AnalyticRobustnessFitness",
    "GAParams",
    "GAResult",
    "GAHistory",
    "GeneticScheduler",
    "uniform_processor_crossover",
    "order_only_crossover",
    "adjacent_swap_mutation",
    "rebalance_mutation",
    "IslandGeneticScheduler",
    "IslandParams",
    "IslandResult",
]
