"""Alternative GA operators (operator-ablation material).

All variants preserve the chromosome invariants (scheduling string is a
topological order; processor map in range), provably:

* :func:`uniform_processor_crossover` never touches the order strings;
* :func:`adjacent_swap_mutation` swaps two *adjacent* tasks only when no
  edge joins them — the only local exchange that can violate a topological
  order is across an edge;
* :func:`rebalance_mutation` is the window mutation with the target
  processor chosen by load instead of uniformly.

Plug into :class:`~repro.ga.engine.GeneticScheduler` via its
``crossover_fn`` / ``mutation_fn`` parameters.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome
from repro.ga.crossover import order_crossover
from repro.ga.mutation import legal_window
from repro.utils.rng import as_generator

__all__ = [
    "uniform_processor_crossover",
    "order_only_crossover",
    "adjacent_swap_mutation",
    "rebalance_mutation",
]


def uniform_processor_crossover(
    parent_a: Chromosome,
    parent_b: Chromosome,
    rng: np.random.Generator | int | None = None,
) -> tuple[Chromosome, Chromosome]:
    """Per-task uniform exchange of processor assignments; orders kept.

    Child 1 takes each task's processor from a uniformly chosen parent,
    child 2 takes the complementary choice.
    """
    gen = as_generator(rng)
    n = parent_a.n
    if parent_b.n != n:
        raise ValueError("parents must encode the same number of tasks")
    take_a = gen.random(n) < 0.5
    proc_1 = np.where(take_a, parent_a.proc_of, parent_b.proc_of)
    proc_2 = np.where(take_a, parent_b.proc_of, parent_a.proc_of)
    return (
        Chromosome(order=parent_a.order, proc_of=proc_1),
        Chromosome(order=parent_b.order, proc_of=proc_2),
    )


def order_only_crossover(
    parent_a: Chromosome,
    parent_b: Chromosome,
    rng: np.random.Generator | int | None = None,
) -> tuple[Chromosome, Chromosome]:
    """The paper's scheduling-string crossover with processor maps inherited
    unchanged — isolates the effect of execution-order mixing."""
    gen = as_generator(rng)
    n = parent_a.n
    if parent_b.n != n:
        raise ValueError("parents must encode the same number of tasks")
    if n < 2:
        return parent_a, parent_b
    cut = int(gen.integers(1, n))
    order_1, order_2 = order_crossover(parent_a.order, parent_b.order, cut)
    return (
        Chromosome(order=order_1, proc_of=parent_a.proc_of),
        Chromosome(order=order_2, proc_of=parent_b.proc_of),
    )


def adjacent_swap_mutation(
    problem: SchedulingProblem,
    chromosome: Chromosome,
    rng: np.random.Generator | int | None = None,
) -> Chromosome:
    """Swap a random adjacent, non-dependent pair in the scheduling string.

    Falls back to returning the chromosome unchanged when every adjacent
    pair is joined by an edge (e.g. a pure chain).  The processor map is
    untouched, so this is the finest-grained order move available.
    """
    gen = as_generator(rng)
    n = chromosome.n
    if n < 2:
        return chromosome
    graph = problem.graph
    start = int(gen.integers(n - 1))
    for offset in range(n - 1):
        i = (start + offset) % (n - 1)
        u, v = int(chromosome.order[i]), int(chromosome.order[i + 1])
        if not graph.has_edge(u, v):
            new_order = chromosome.order.copy()
            new_order[i], new_order[i + 1] = v, u
            return Chromosome(order=new_order, proc_of=chromosome.proc_of)
    return chromosome


def rebalance_mutation(
    problem: SchedulingProblem,
    chromosome: Chromosome,
    rng: np.random.Generator | int | None = None,
) -> Chromosome:
    """Window mutation that moves a task to the least-loaded processor.

    Load = total expected execution time currently assigned.  The moved
    task's position is re-drawn inside its legal window like the paper's
    operator; only the processor choice is greedy.
    """
    gen = as_generator(rng)
    n = chromosome.n
    task = int(gen.integers(n))

    lo, hi = legal_window(problem, chromosome.order, task)
    insert_at = int(gen.integers(lo, hi + 1))
    reduced = chromosome.order[chromosome.order != task]
    new_order = np.insert(reduced, insert_at, task)

    times = problem.expected_times
    idx = np.arange(n)
    load = np.zeros(problem.m, dtype=np.float64)
    np.add.at(load, chromosome.proc_of, times[idx, chromosome.proc_of])
    # Remove the task's own contribution before choosing its new home.
    load[chromosome.proc_of[task]] -= times[task, chromosome.proc_of[task]]
    target = int(np.argmin(load + times[task]))

    new_proc = chromosome.proc_of.copy()
    new_proc[task] = target
    return Chromosome(order=new_order, proc_of=new_proc)
