"""Fitness policies (paper Sec. 4.2.3).

A policy maps the whole population's static metrics to fitness scores
(larger = fitter).  Policies receive the *population*, not individuals,
because the ε-constraint fitness of Eqn. 8 is population-based: an
infeasible chromosome's fitness is the minimum fitness among the current
feasible chromosomes, scaled down by its constraint-violation ratio.

Three policies cover the paper's experiments:

* :class:`MakespanFitness` — minimize expected makespan (Fig. 2);
* :class:`SlackFitness` — maximize average slack (Fig. 3);
* :class:`EpsilonConstraintFitness` — Eqn. 8: maximize slack subject to
  ``M_0(s) <= eps * M_HEFT`` (Figs. 4–8).

plus :func:`quantile_duration_matrix` supporting the stochastic-information
extension (paper Sec. 6 future work).

External policies plug into the same protocol:
:class:`repro.energy.objective.EnergyConstraintFitness` swaps the slack
objective for expected energy while keeping Eqn. 8's feasibility algebra
(and degenerates to :class:`EpsilonConstraintFitness` under a null power
model).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome
from repro.schedule.schedule import Schedule

__all__ = [
    "Individual",
    "FitnessPolicy",
    "MakespanFitness",
    "SlackFitness",
    "EpsilonConstraintFitness",
    "quantile_duration_matrix",
]


class Individual:
    """A chromosome with its (possibly deferred) schedule and static metrics.

    ``makespan`` and ``avg_slack`` are computed under the engine's duration
    view (expected durations by default; a quantile view in the extension).
    Two fields may be deferred:

    * ``avg_slack``: when constructed with ``avg_slack=None`` and an
      ``evaluation``, the backward (bottom-level) kernel pass runs only if
      slack is actually read — makespan-only fitness policies
      (``uses_slack = False``) never pay for it;
    * ``schedule``: the population kernel (:mod:`repro.ga.popeval`)
      computes metrics without materialising schedules, so individuals it
      produces carry ``schedule=None`` plus a ``problem``; the decode runs
      on first access (only the returned best typically needs it).
    """

    __slots__ = (
        "chromosome",
        "_schedule",
        "makespan",
        "_avg_slack",
        "_evaluation",
        "_problem",
    )

    def __init__(
        self,
        chromosome: Chromosome,
        schedule: Schedule | None,
        makespan: float,
        avg_slack: float | None = None,
        *,
        evaluation=None,
        problem: SchedulingProblem | None = None,
    ) -> None:
        self.chromosome = chromosome
        self._schedule = schedule
        self.makespan = float(makespan)
        self._avg_slack = None if avg_slack is None else float(avg_slack)
        self._evaluation = evaluation
        self._problem = problem

    @property
    def schedule(self) -> Schedule:
        """The decoded schedule; runs the deferred decode if needed."""
        if self._schedule is None:
            if self._problem is None:
                raise AttributeError(
                    "schedule was deferred but no problem is attached"
                )
            self._schedule = self.chromosome.decode(self._problem)
        return self._schedule

    @property
    def avg_slack(self) -> float:
        """Average slack ``σ̄``; runs the deferred backward pass if needed."""
        if self._avg_slack is None:
            if self._evaluation is None:
                raise AttributeError(
                    "avg_slack was deferred but no evaluation is attached"
                )
            self._avg_slack = float(self._evaluation.avg_slack)
        return self._avg_slack

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Individual(makespan={self.makespan:g})"


@runtime_checkable
class FitnessPolicy(Protocol):
    """Population-based fitness: metrics in, scores out (larger = fitter).

    ``uses_slack`` advertises whether :meth:`scores` reads
    ``Individual.avg_slack``; the GA engine defers the bottom-level kernel
    pass for policies that declare ``False`` (treated as ``True`` when
    absent).
    """

    name: str
    uses_slack: bool

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """Fitness of every individual in *population*."""
        ...  # pragma: no cover - protocol


class MakespanFitness:
    """Reciprocal expected makespan — the classic single-objective GA (Fig. 2)."""

    name = "makespan"
    uses_slack = False

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """``1 / M_0`` per individual."""
        return np.asarray([1.0 / ind.makespan for ind in population], dtype=np.float64)


class SlackFitness:
    """Average slack — the robustness-only objective (Fig. 3)."""

    name = "slack"
    uses_slack = True

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """``σ̄`` per individual."""
        return np.asarray([ind.avg_slack for ind in population], dtype=np.float64)


class EpsilonConstraintFitness:
    """Eqn. 8: slack for feasible individuals, scaled penalty otherwise.

    Parameters
    ----------
    epsilon:
        The ε-constraint multiplier (paper sweeps 1.0 .. 2.0).
    m_heft:
        The reference makespan ``M_HEFT`` of the instance's HEFT schedule.

    Notes
    -----
    Feasibility is ``M_0 <= epsilon * m_heft`` (inclusive, with a relative
    tolerance — the paper writes a strict inequality but seeds the ε = 1.0
    population with HEFT itself, which sits exactly on the bound).

    Two edge cases the paper leaves open are resolved conservatively:

    * *No feasible individual*: every score is ``bound/M_0 - 1`` (negative,
      monotone in the violation), so evolution is driven toward
      feasibility and any later feasible individual (slack >= 0) dominates.
    * *Minimum feasible slack is 0*: multiplying by the violation ratio
      would collapse all infeasible scores to 0; the same negative
      violation form is used instead, preserving strict dominance of the
      feasible set and ordering among the infeasible.
    """

    uses_slack = True

    def __init__(self, epsilon: float, m_heft: float) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if m_heft <= 0:
            raise ValueError(f"m_heft must be positive, got {m_heft}")
        self.epsilon = float(epsilon)
        self.m_heft = float(m_heft)
        self.name = f"eps-constraint(eps={epsilon:g})"

    @classmethod
    def for_problem(
        cls, problem: SchedulingProblem, epsilon: float
    ) -> "EpsilonConstraintFitness":
        """Build the policy by running HEFT on *problem* for ``M_HEFT``."""
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import expected_makespan

        m_heft = expected_makespan(HeftScheduler().schedule(problem))
        return cls(epsilon, m_heft)

    @property
    def bound(self) -> float:
        """The makespan ceiling ``epsilon * M_HEFT``."""
        return self.epsilon * self.m_heft

    def is_feasible(self, makespan: float) -> bool:
        """Constraint check with a relative tolerance on the boundary."""
        return makespan <= self.bound * (1.0 + 1e-12)

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """Eqn. 8 over the whole population."""
        makespans = np.asarray([ind.makespan for ind in population], dtype=np.float64)
        slacks = np.asarray([ind.avg_slack for ind in population], dtype=np.float64)
        feasible = makespans <= self.bound * (1.0 + 1e-12)

        out = np.empty(len(population), dtype=np.float64)
        out[feasible] = slacks[feasible]
        if not np.any(~feasible):
            return out

        ratio = self.bound / makespans[~feasible]  # < 1, smaller = worse violation
        if np.any(feasible):
            base = float(slacks[feasible].min())
            if base > 0.0:
                out[~feasible] = base * ratio
                return out
        out[~feasible] = ratio - 1.0
        return out


def quantile_duration_matrix(problem: SchedulingProblem, q: float) -> np.ndarray:
    """Per-(task, processor) duration quantiles for a pessimism-fed GA.

    Extension of the paper's future-work direction (Sec. 6): instead of the
    expected times, feed the engine the ``q``-quantile of each duration
    distribution (``q = 0.5`` is close to, but not identical to, the mean
    for the paper's uniform model — the mean sits at ``q = 0.5`` exactly,
    so values ``q > 0.5`` encode pessimism).
    """
    return problem.uncertainty.quantile_times(q)
