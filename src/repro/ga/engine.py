"""The genetic-algorithm evolution loop (paper Sec. 4.2).

:class:`GeneticScheduler` runs a standard generational GA with the paper's
configuration:

* population of ``Np = 20`` chromosomes, seeded with the HEFT solution and
  uniqueness-checked random individuals (Sec. 4.2.2);
* systematic binary tournament selection (Sec. 4.2.4);
* single-point precedence-preserving crossover with probability
  ``pc = 0.9`` (Sec. 4.2.5);
* topological-window mutation with probability ``pm = 0.1`` (Sec. 4.2.6);
* elitism: the worst chromosome of each new generation is replaced by the
  best of the previous one (Sec. 4.2.3);
* stop after 1000 iterations or 100 iterations without improvement
  (Sec. 5).

The fitness policy is pluggable (:mod:`repro.ga.fitness`), which is how the
same engine produces Fig. 2 (makespan), Fig. 3 (slack) and Figs. 4–8
(ε-constraint).  An optional ``duration_matrix`` redirects every static
evaluation to a different timing view (the quantile-fed extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import (
    Chromosome,
    heft_chromosome,
    random_chromosome,
    repair_chromosome,
)
from repro.ga.crossover import single_point_crossover
from repro.ga.fitness import FitnessPolicy, Individual
from repro.ga.mutation import mutate
from repro.ga.popeval import evaluate_population
from repro.ga.selection import binary_tournament
from repro.obs import runtime as obs
from repro.schedule.evaluation import evaluate
from repro.utils.rng import as_generator

__all__ = ["GAParams", "GAHistory", "GAResult", "GeneticScheduler"]


@dataclass(frozen=True)
class GAParams:
    """GA hyper-parameters (paper Sec. 5 defaults).

    Attributes
    ----------
    population_size:
        ``Np`` (paper: 20).
    crossover_prob:
        ``pc`` — fraction of the intermediate population entering crossover
        (paper: 0.9).
    mutation_prob:
        ``pm`` — per-individual mutation probability (paper: 0.1).
    max_iterations:
        Hard generation cap (paper: 1000).
    stagnation_limit:
        Stop when the best fitness has not improved for this many
        iterations (paper: 100).
    seed_heft:
        Include the HEFT chromosome in the initial population (paper: yes;
        switchable for the seeding ablation).
    init_retry_factor:
        Uniqueness check budget: up to ``factor * Np`` redraws while
        filling the initial population before accepting duplicates (only
        relevant for tiny search spaces).
    """

    population_size: int = 20
    crossover_prob: float = 0.9
    mutation_prob: float = 0.1
    max_iterations: int = 1000
    stagnation_limit: int = 100
    seed_heft: bool = True
    init_retry_factor: int = 20

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not (0.0 <= self.crossover_prob <= 1.0):
            raise ValueError("crossover_prob must be in [0, 1]")
        if not (0.0 <= self.mutation_prob <= 1.0):
            raise ValueError("mutation_prob must be in [0, 1]")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.stagnation_limit < 1:
            raise ValueError("stagnation_limit must be >= 1")


@dataclass
class GAHistory:
    """Per-generation traces (index 0 is the initial population).

    ``best_chromosomes`` snapshots the incumbent each generation so
    experiments can replay the evolution against Monte-Carlo realizations
    (Figs. 2–3 plot realized makespan / slack / R1 *over GA steps*).
    """

    best_fitness: list[float] = field(default_factory=list)
    best_makespan: list[float] = field(default_factory=list)
    best_slack: list[float] = field(default_factory=list)
    mean_fitness: list[float] = field(default_factory=list)
    diversity: list[float] = field(default_factory=list)
    best_chromosomes: list[Chromosome] = field(default_factory=list)

    def record(
        self,
        best: Individual,
        best_score: float,
        scores: np.ndarray,
        population: list[Chromosome],
    ) -> None:
        """Append one generation's snapshot.

        ``diversity`` is the fraction of distinct chromosomes in the
        population — the quantity the paper's uniqueness check (Sec. 4.2.2)
        protects at initialisation; tracking it over generations makes
        premature convergence visible.
        """
        self.best_fitness.append(float(best_score))
        self.best_makespan.append(best.makespan)
        self.best_slack.append(best.avg_slack)
        self.mean_fitness.append(float(scores.mean()))
        self.diversity.append(
            len({c.key() for c in population}) / max(len(population), 1)
        )
        self.best_chromosomes.append(best.chromosome)

    def __len__(self) -> int:
        return len(self.best_fitness)


@dataclass(frozen=True)
class GAResult:
    """Outcome of one GA run."""

    best: Individual
    best_fitness: float
    history: GAHistory
    generations: int
    stop_reason: str

    @property
    def schedule(self):
        """The best schedule found."""
        return self.best.schedule


class GeneticScheduler:
    """Configurable GA scheduler (see module docstring).

    Parameters
    ----------
    fitness:
        The fitness policy (larger = fitter).
    params:
        Hyper-parameters; defaults to the paper's configuration.
    rng:
        Seed or generator for all stochastic decisions of the run.
    duration_matrix:
        Optional ``(n, m)`` matrix replacing the problem's expected times
        in every static evaluation (extension hook).
    crossover_fn / mutation_fn:
        Optional operator overrides (see :mod:`repro.ga.variants`);
        defaults are the paper's single-point crossover and
        topological-window mutation.  Signatures:
        ``crossover_fn(parent_a, parent_b, rng) -> (child_a, child_b)`` and
        ``mutation_fn(problem, chromosome, rng) -> chromosome``.
    warm_start:
        Optional chromosomes injected into the initial population (after
        the HEFT seed, before the random fill) — typically the best
        solutions of previously solved, structurally similar problems
        (see :mod:`repro.service.warmstart`).  Each seed is repaired
        against the problem's precedence constraints
        (:func:`~repro.ga.chromosome.repair_chromosome`), deduplicated,
        and capped at the population size.  Seeding changes only the
        starting point; evaluation consumes no randomness, so a run
        remains fully determined by ``(problem, params, rng, warm_start)``.
    """

    name = "ga"

    def __init__(
        self,
        fitness: FitnessPolicy,
        params: GAParams | None = None,
        rng: np.random.Generator | int | None = None,
        *,
        duration_matrix: np.ndarray | None = None,
        crossover_fn=None,
        mutation_fn=None,
        warm_start: list[Chromosome] | None = None,
    ) -> None:
        self.fitness = fitness
        self.params = params or GAParams()
        self._rng = as_generator(rng)
        self.duration_matrix = (
            None
            if duration_matrix is None
            else np.ascontiguousarray(duration_matrix, dtype=np.float64)
        )
        self.crossover_fn = crossover_fn or single_point_crossover
        self.mutation_fn = mutation_fn or mutate
        self.warm_start = list(warm_start) if warm_start else []

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def _evaluate(
        self, problem: SchedulingProblem, chromosome: Chromosome, cache: dict
    ) -> Individual:
        key = chromosome.key()
        hit = cache.get(key)
        if hit is not None:
            return hit
        schedule = chromosome.decode(problem)
        if self.duration_matrix is None:
            ev = evaluate(schedule)
        else:
            durations = self.duration_matrix[
                np.arange(problem.n), schedule.proc_of
            ]
            ev = evaluate(schedule, durations)
        # Policies that never read slack (uses_slack = False) keep it
        # deferred: the backward kernel pass then only runs for the few
        # individuals whose slack is actually inspected (e.g. the
        # per-generation incumbent recorded in the history).
        uses_slack = getattr(self.fitness, "uses_slack", True)
        ind = Individual(
            chromosome=chromosome,
            schedule=schedule,
            makespan=ev.makespan,
            avg_slack=ev.avg_slack if uses_slack else None,
            evaluation=ev,
        )
        cache[key] = ind
        return ind

    def _evaluate_batch(
        self,
        problem: SchedulingProblem,
        chromosomes: list[Chromosome],
        cache: dict,
    ) -> list[Individual]:
        """Evaluate a whole generation in one population-kernel dispatch.

        Cache hits (and within-batch duplicates) reuse their Individual;
        only the distinct misses reach :func:`evaluate_population`.  The
        metrics are bit-identical to :meth:`_evaluate`'s per-individual
        route, so GA trajectories do not depend on which path ran.  The
        backward (slack) pass always runs here: it is in-kernel and cheap,
        and the history records the incumbent's slack every generation.
        """
        keys = [c.key() for c in chromosomes]
        miss_keys: list[bytes] = []
        misses: list[Chromosome] = []
        seen: set[bytes] = set()
        for key, c in zip(keys, chromosomes):
            if key not in cache and key not in seen:
                seen.add(key)
                miss_keys.append(key)
                misses.append(c)
        if misses:
            pe = evaluate_population(
                problem,
                misses,
                need_slack=True,
                duration_matrix=self.duration_matrix,
            )
            avg_slacks = pe.avg_slacks
            for i, key in enumerate(miss_keys):
                cache[key] = Individual(
                    chromosome=misses[i],
                    schedule=None,
                    makespan=pe.makespans[i],
                    avg_slack=avg_slacks[i],
                    problem=problem,
                )
        return [cache[key] for key in keys]

    # ------------------------------------------------------------------ #
    # Population initialisation (Sec. 4.2.2)
    # ------------------------------------------------------------------ #

    def _initial_population(self, problem: SchedulingProblem) -> list[Chromosome]:
        params = self.params
        population: list[Chromosome] = []
        seen: set[bytes] = set()

        if params.seed_heft:
            seed = heft_chromosome(problem)
            population.append(seed)
            seen.add(seed.key())

        # Warm-start seeds: repaired against this problem's precedence
        # constraints, deduplicated, capped at Np.
        for cand in self.warm_start:
            if len(population) >= params.population_size:
                break
            repaired = repair_chromosome(problem, cand.order, cand.proc_of)
            if repaired.key() in seen:
                continue
            seen.add(repaired.key())
            population.append(repaired)

        budget = params.init_retry_factor * params.population_size
        while len(population) < params.population_size and budget > 0:
            cand = random_chromosome(problem, self._rng)
            budget -= 1
            if cand.key() in seen:
                continue
            seen.add(cand.key())
            population.append(cand)
        # Tiny search spaces can exhaust uniqueness; fill with duplicates
        # rather than fail (documented deviation, only reachable for n <= 2).
        while len(population) < params.population_size:
            population.append(random_chromosome(problem, self._rng))
        return population

    # ------------------------------------------------------------------ #
    # Variation
    # ------------------------------------------------------------------ #

    def _next_generation(
        self, problem: SchedulingProblem, parents: list[Chromosome]
    ) -> list[Chromosome]:
        params = self.params
        gen = self._rng
        n_pop = len(parents)

        # Pair the intermediate population; each pair crosses with pc.
        perm = gen.permutation(n_pop)
        offspring: list[Chromosome] = []
        n_crossovers = 0
        i = 0
        while i + 1 < n_pop:
            a, b = parents[perm[i]], parents[perm[i + 1]]
            if gen.random() < params.crossover_prob:
                c1, c2 = self.crossover_fn(a, b, gen)
                n_crossovers += 1
            else:
                c1, c2 = a, b
            offspring.extend((c1, c2))
            i += 2
        if i < n_pop:  # odd leftover is copied through
            offspring.append(parents[perm[i]])

        # Per-individual mutation with pm.
        children: list[Chromosome] = []
        n_mutations = 0
        for c in offspring:
            if gen.random() < params.mutation_prob:
                children.append(self.mutation_fn(problem, c, gen))
                n_mutations += 1
            else:
                children.append(c)
        if obs.enabled():
            obs.add("ga.crossovers", n_crossovers)
            obs.add("ga.mutations", n_mutations)
        return children

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def _feasible_fraction(self, individuals: list[Individual]) -> float | None:
        """Fraction of the population satisfying the fitness policy's
        constraint, when it has one (``is_feasible``); ``None`` otherwise."""
        is_feasible = getattr(self.fitness, "is_feasible", None)
        if is_feasible is None or not individuals:
            return None
        n_ok = sum(1 for ind in individuals if is_feasible(ind.makespan))
        return n_ok / len(individuals)

    def run(self, problem: SchedulingProblem) -> GAResult:
        """Evolve schedules for *problem* and return the best found."""
        params = self.params
        cache: dict[bytes, Individual] = {}

        run_span = obs.trace(
            "ga.run",
            fitness=getattr(self.fitness, "name", "?"),
            n_tasks=problem.n,
            population=params.population_size,
        )
        with run_span:
            population = self._initial_population(problem)
            individuals = self._evaluate_batch(problem, population, cache)
            scores = self.fitness.scores(individuals)

            best_idx = int(np.argmax(scores))
            best_ind = individuals[best_idx]
            best_score = float(scores[best_idx])

            history = GAHistory()
            history.record(best_ind, best_score, scores, population)

            stagnation = 0
            generations = 0
            stop_reason = "max_iterations"
            for _ in range(params.max_iterations):
                generations += 1

                with obs.trace("ga.generation", gen=generations) as gen_span:
                    selected_idx = binary_tournament(scores, self._rng)
                    intermediate = [population[i] for i in selected_idx]
                    children = self._next_generation(problem, intermediate)

                    new_individuals = self._evaluate_batch(
                        problem, children, cache
                    )
                    new_scores = self.fitness.scores(new_individuals)

                    # Elitism: worst of the new generation is replaced by the
                    # incumbent best (Sec. 4.2.3), then population-based
                    # fitness is refreshed because the replacement may shift
                    # the feasible set.
                    worst = int(np.argmin(new_scores))
                    children[worst] = best_ind.chromosome
                    new_individuals[worst] = best_ind
                    new_scores = self.fitness.scores(new_individuals)

                    population = children
                    individuals = new_individuals
                    scores = new_scores

                    gen_best = int(np.argmax(scores))
                    gen_best_score = float(scores[gen_best])
                    improved = gen_best_score > best_score * (1.0 + 1e-12) or (
                        best_score <= 0.0 and gen_best_score > best_score + 1e-15
                    )
                    if improved:
                        best_ind = individuals[gen_best]
                        best_score = gen_best_score
                        stagnation = 0
                    else:
                        stagnation += 1

                    history.record(best_ind, best_score, scores, population)

                    if obs.enabled():
                        # Convergence telemetry rides on the generation span.
                        gen_span.set(
                            best_fitness=best_score,
                            mean_fitness=float(scores.mean()),
                            best_makespan=best_ind.makespan,
                            diversity=history.diversity[-1],
                            improved=improved,
                        )
                        frac = self._feasible_fraction(individuals)
                        if frac is not None:
                            gen_span.set(feasible_fraction=frac)

                if stagnation >= params.stagnation_limit:
                    stop_reason = "stagnation"
                    break

            if obs.enabled():
                obs.add("ga.generations", generations)
                run_span.set(
                    generations=generations,
                    stop_reason=stop_reason,
                    best_fitness=best_score,
                    best_makespan=best_ind.makespan,
                )

        return GAResult(
            best=best_ind,
            best_fitness=best_score,
            history=history,
            generations=generations,
            stop_reason=stop_reason,
        )

    def schedule(self, problem: SchedulingProblem):
        """Scheduler-protocol facade: run the GA, return the best schedule."""
        return self.run(problem).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeneticScheduler(fitness={getattr(self.fitness, 'name', '?')!r}, "
            f"Np={self.params.population_size})"
        )
