"""GA chromosome: scheduling string + processor assignment (Sec. 4.2.1).

The paper encodes a solution as a *scheduling string* (a topological sort
of the task graph — the global execution order) plus one *assignment
string* per processor (the tasks on that processor, in execution order).
Because every operator keeps each processor's internal order consistent
with the scheduling string, the assignment strings are fully determined by
the scheduling string and a per-task processor map.  We therefore store
exactly ``(order, proc_of)`` — the paper itself converts assignment
strings to this "processor string" form inside its crossover operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.topology import is_topological_order, random_topological_order
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = [
    "Chromosome",
    "random_chromosome",
    "heft_chromosome",
    "repair_chromosome",
]


@dataclass(frozen=True)
class Chromosome:
    """One GA individual.

    Attributes
    ----------
    order:
        The scheduling string: a permutation of ``0..n-1`` that is a
        topological sort of the task graph.
    proc_of:
        Processor index of every task (indexed by task id).
    """

    order: np.ndarray
    proc_of: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "order", np.ascontiguousarray(self.order, dtype=np.int64)
        )
        object.__setattr__(
            self, "proc_of", np.ascontiguousarray(self.proc_of, dtype=np.int64)
        )
        self.order.setflags(write=False)
        self.proc_of.setflags(write=False)
        if self.order.ndim != 1 or self.proc_of.shape != self.order.shape:
            raise ValueError(
                "order and proc_of must be 1-D arrays of equal length, got "
                f"{self.order.shape} and {self.proc_of.shape}"
            )

    @property
    def n(self) -> int:
        """Number of tasks."""
        return int(self.order.shape[0])

    def key(self) -> bytes:
        """Hashable identity used for the uniqueness check (Sec. 4.2.2)."""
        return self.order.tobytes() + self.proc_of.tobytes()

    def validate(self, problem: SchedulingProblem) -> None:
        """Raise if this chromosome is not a legal solution for *problem*."""
        if self.n != problem.n:
            raise ValueError(
                f"chromosome covers {self.n} tasks, problem has {problem.n}"
            )
        if not is_topological_order(problem.graph, self.order):
            raise ValueError("scheduling string is not a topological order")
        if np.any((self.proc_of < 0) | (self.proc_of >= problem.m)):
            raise ValueError("processor assignment out of range")

    def decode(self, problem: SchedulingProblem) -> Schedule:
        """Materialise the schedule this chromosome encodes.

        Each processor's assignment string is the scheduling string filtered
        to the tasks mapped to it.
        """
        return Schedule.from_assignment(problem, self.order, self.proc_of)

    def assignment_strings(self, m: int) -> list[np.ndarray]:
        """The paper's explicit per-processor assignment strings."""
        assigned = self.proc_of[self.order]
        return [self.order[assigned == p] for p in range(m)]


def random_chromosome(
    problem: SchedulingProblem, rng: np.random.Generator | int | None = None
) -> Chromosome:
    """Random individual: random topological sort + uniform processor draws.

    This is the paper's initial-population construction (Sec. 4.2.2): tasks
    are taken from the freshly generated scheduling string in order and
    appended to a uniformly chosen processor's assignment string.
    """
    gen = as_generator(rng)
    order = random_topological_order(problem.graph, gen)
    proc_of = gen.integers(problem.m, size=problem.n)
    return Chromosome(order=order, proc_of=proc_of)


def repair_chromosome(
    problem: SchedulingProblem,
    order: np.ndarray,
    proc_of: np.ndarray,
) -> Chromosome:
    """Coerce an ``(order, proc_of)`` pair into a legal chromosome.

    The warm-start layer transfers chromosomes between structurally
    *similar* problems (same task/processor counts, near-match features),
    whose precedence constraints may disagree with the stored order.  The
    repair is a priority-guided Kahn walk: among the ready tasks, always
    emit the one appearing earliest in the stored order.  When the stored
    order already is a valid topological order of *this* problem's graph,
    the walk reproduces it exactly (every prefix of a topological order is
    emitted before its suffix becomes ready); otherwise it yields the
    closest precedence-respecting reordering under that greedy rule.
    Processor indices are folded into range modulo ``m``.

    Raises
    ------
    ValueError
        If *order* is not a permutation of ``0..n-1`` or the array lengths
        don't match the problem.
    """
    import heapq

    n, m = problem.n, problem.m
    order = np.asarray(order, dtype=np.int64)
    proc_of = np.asarray(proc_of, dtype=np.int64)
    if order.shape != (n,) or proc_of.shape != (n,):
        raise ValueError(
            f"order and proc_of must have shape ({n},), got "
            f"{order.shape} and {proc_of.shape}"
        )
    if np.any(np.sort(order) != np.arange(n)):
        raise ValueError("order must be a permutation of 0..n-1")

    graph = problem.graph
    if is_topological_order(graph, order):
        return Chromosome(order=order, proc_of=proc_of % m)

    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n, dtype=np.int64)
    indeg = np.bincount(graph.edge_dst, minlength=n).tolist()
    succ: list[list[int]] = [[] for _ in range(n)]
    for s, d in zip(graph.edge_src.tolist(), graph.edge_dst.tolist()):
        succ[s].append(d)
    ready = [(int(pos[v]), v) for v in range(n) if indeg[v] == 0]
    heapq.heapify(ready)
    repaired: list[int] = []
    while ready:
        _, v = heapq.heappop(ready)
        repaired.append(v)
        for w in succ[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(ready, (int(pos[w]), w))
    return Chromosome(
        order=np.asarray(repaired, dtype=np.int64), proc_of=proc_of % m
    )


def heft_chromosome(problem: SchedulingProblem, schedule: Schedule | None = None) -> Chromosome:
    """Encode the HEFT schedule as a chromosome (the GA seed, Sec. 4.2.2).

    The scheduling string is a topological order of the schedule's
    disjunctive graph, so decoding reproduces the HEFT processor orders
    exactly.
    """
    if schedule is None:
        from repro.heuristics.heft import HeftScheduler

        schedule = HeftScheduler().schedule(problem)
    return Chromosome(order=schedule.linear_order(), proc_of=schedule.proc_of)
