"""Single-point precedence-preserving crossover (paper Sec. 4.2.5).

Scheduling strings: a cut position splits both parents' strings into left
and right parts.  Each offspring keeps its own left part and *reorders its
own right-part tasks by their relative positions in the other parent's
string*.  Since both parents are topological sorts, so are the offspring
(classic result: the left prefix is order-consistent with parent 1, the
right suffix with parent 2, and no right-part task can precede a left-part
task it depends on because parent 1 already ordered them).

Processor strings: an independent cut over *task ids* swaps the tails of
the two parents' processor maps (the paper converts assignment strings to
per-task processor strings, exchanges right parts, and converts back —
identical effect).
"""

from __future__ import annotations

import numpy as np

from repro.ga.chromosome import Chromosome
from repro.utils.rng import as_generator

__all__ = ["single_point_crossover", "order_crossover", "processor_crossover"]


def order_crossover(
    order_a: np.ndarray, order_b: np.ndarray, cut: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cross two scheduling strings at position *cut* (1 <= cut <= n-1).

    Returns the two offspring orders.
    """
    n = order_a.shape[0]
    if not (1 <= cut <= n - 1):
        raise ValueError(f"cut must be in [1, {n - 1}], got {cut}")

    def child(keep: np.ndarray, donor: np.ndarray) -> np.ndarray:
        left = keep[:cut]
        right_tasks = keep[cut:]
        in_right = np.zeros(n, dtype=bool)
        in_right[right_tasks] = True
        # Right part reordered by relative position in the donor string.
        reordered = donor[in_right[donor]]
        return np.concatenate([left, reordered])

    return child(order_a, order_b), child(order_b, order_a)


def processor_crossover(
    proc_a: np.ndarray, proc_b: np.ndarray, cut: int
) -> tuple[np.ndarray, np.ndarray]:
    """Swap the task-id tails of two processor maps at position *cut*."""
    n = proc_a.shape[0]
    if not (1 <= cut <= n - 1):
        raise ValueError(f"cut must be in [1, {n - 1}], got {cut}")
    child_a = np.concatenate([proc_a[:cut], proc_b[cut:]])
    child_b = np.concatenate([proc_b[:cut], proc_a[cut:]])
    return child_a, child_b


def single_point_crossover(
    parent_a: Chromosome,
    parent_b: Chromosome,
    rng: np.random.Generator | int | None = None,
) -> tuple[Chromosome, Chromosome]:
    """Produce two offspring from two parents.

    Independent uniform cut points are drawn for the scheduling strings and
    the processor strings.  For single-task graphs the parents are returned
    unchanged (no legal cut exists).
    """
    gen = as_generator(rng)
    n = parent_a.n
    if parent_b.n != n:
        raise ValueError("parents must encode the same number of tasks")
    if n < 2:
        return parent_a, parent_b

    cut_order = int(gen.integers(1, n))
    cut_proc = int(gen.integers(1, n))
    order_a, order_b = order_crossover(parent_a.order, parent_b.order, cut_order)
    proc_a, proc_b = processor_crossover(parent_a.proc_of, parent_b.proc_of, cut_proc)
    return (
        Chromosome(order=order_a, proc_of=proc_a),
        Chromosome(order=order_b, proc_of=proc_b),
    )
