"""Topological-window mutation (paper Sec. 4.2.6).

The operator picks a task ``v`` uniformly, computes the legal window of
positions it may occupy in the scheduling string — strictly after the last
of its immediate predecessors and strictly before the first of its
immediate successors — moves it to a uniformly drawn position inside that
window, and finally assigns ``v`` a uniformly drawn (possibly new)
processor.  The result is always a valid topological order, because only
*immediate* neighbours can bound ``v``'s legal positions: any transitive
predecessor precedes some immediate predecessor, hence the window.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome
from repro.utils.rng import as_generator

__all__ = ["legal_window", "mutate"]


def legal_window(
    problem: SchedulingProblem, order: np.ndarray, task: int
) -> tuple[int, int]:
    """Legal insertion window ``[lo, hi]`` for *task* in the string *order*.

    Positions refer to the string *with the task removed*: inserting the
    task at any index in ``[lo, hi]`` of that reduced string yields a valid
    topological order.  ``lo`` is (last predecessor position in the reduced
    string) + 1; ``hi`` is the first successor position (insertion at index
    ``hi`` lands just before the successor).
    """
    graph = problem.graph
    n = graph.n
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    pos_v = int(position[task])

    def reduced(p: int) -> int:
        """Position in the string with *task* removed."""
        return p - 1 if p > pos_v else p

    lo = 0
    for u in graph.predecessors(task):
        lo = max(lo, reduced(int(position[u])) + 1)
    hi = n - 1  # reduced string has n-1 entries; valid insertion index range is [0, n-1]
    for w in graph.successors(task):
        hi = min(hi, reduced(int(position[w])))
    assert lo <= hi, "topological input guarantees a non-empty window"
    return lo, hi


def mutate(
    problem: SchedulingProblem,
    chromosome: Chromosome,
    rng: np.random.Generator | int | None = None,
) -> Chromosome:
    """Apply one mutation, returning a new chromosome.

    The input chromosome's scheduling string must be a valid topological
    order (operators preserve this invariant end-to-end).
    """
    gen = as_generator(rng)
    n = chromosome.n
    task = int(gen.integers(n))

    lo, hi = legal_window(problem, chromosome.order, task)
    insert_at = int(gen.integers(lo, hi + 1))

    reduced = chromosome.order[chromosome.order != task]
    new_order = np.insert(reduced, insert_at, task)

    new_proc = chromosome.proc_of.copy()
    new_proc[task] = int(gen.integers(problem.m))
    return Chromosome(order=new_order, proc_of=new_proc)
