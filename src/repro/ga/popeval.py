"""Population-wide GA evaluation: one dispatch per generation.

The GA's per-generation cost is dominated not by the paper's slack and
makespan arithmetic but by per-individual Python dispatch: decoding every
chromosome into a :class:`~repro.schedule.schedule.Schedule` (disjunctive
edge assembly, CSR indexes) and running the scalar level kernels one
individual at a time.  :func:`evaluate_population` removes that overhead by
evaluating the *whole population* in a single call:

* the native path hands the stacked chromosome arrays to the
  ``ga_population_eval`` C kernel (:mod:`repro.graph._native`), which
  decodes and runs both level passes entirely in C, OpenMP-parallel over
  individuals;
* the numpy fallback (no compiler, ``REPRO_NATIVE=0``) builds each
  individual's disjunctive edge list directly — skipping the full
  :class:`Schedule` object — and reuses the scalar
  :class:`~repro.graph.analysis.ArrayDag` kernels.

Both paths are **bit-exact** against the classic per-individual route
(``Chromosome.decode`` → :func:`repro.schedule.evaluation.evaluate`): the
disjunctive candidate sets agree up to duplicates with equal float values
(same-processor communication is exactly ``0.0``), ``max`` over one
candidate set is order-independent, and every add follows the scalar
kernels' association order.  The equivalence suite
(``tests/property/test_population_kernel.py``) pins this.

Unlike :func:`~repro.schedule.evaluation.evaluate`, the population API
accepts ``+inf`` durations (it only rejects NaN and negatives): an
infeasible individual then reports an ``inf`` makespan and NaN slack for
the tasks whose slack is ``inf - inf``, matching what the numpy scalar
kernels produce on the same inputs.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome
from repro.graph import _native
from repro.graph.analysis import ArrayDag
from repro.obs import runtime as _obs

__all__ = ["PopulationEvaluation", "evaluate_population"]


class PopulationEvaluation:
    """Per-individual static metrics of one population evaluation.

    Attributes
    ----------
    makespans:
        ``(P,)`` expected makespan of every individual.
    slack_matrix:
        ``(P, n)`` per-task slack of every individual, or ``None`` when the
        evaluation ran with ``need_slack=False``.
    """

    __slots__ = ("makespans", "slack_matrix", "_avg_slacks")

    def __init__(
        self, makespans: np.ndarray, slack_matrix: np.ndarray | None
    ) -> None:
        self.makespans = makespans
        self.slack_matrix = slack_matrix
        self._avg_slacks = None

    @property
    def avg_slacks(self) -> np.ndarray:
        """``(P,)`` average slack (Eqn. 3) of every individual.

        Reduced row by row so each value is bit-identical to
        ``ScheduleEvaluation.avg_slack`` (numpy's pairwise summation over
        one contiguous 1-D row).
        """
        if self._avg_slacks is None:
            if self.slack_matrix is None:
                raise AttributeError(
                    "slack was not computed (need_slack=False)"
                )
            self._avg_slacks = np.asarray(
                [row.mean() for row in self.slack_matrix], dtype=np.float64
            )
        return self._avg_slacks

    def __len__(self) -> int:
        return int(self.makespans.shape[0])


def _stack_population(
    chromosomes: Sequence[Chromosome], n: int, m: int, validate: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Stack chromosomes into ``(P, n)`` order/processor arrays."""
    orders = np.empty((len(chromosomes), n), dtype=np.int64)
    procs = np.empty((len(chromosomes), n), dtype=np.int64)
    for i, c in enumerate(chromosomes):
        if c.order.shape != (n,):
            raise ValueError(
                f"chromosome {i} covers {c.order.shape[0]} tasks, "
                f"problem has {n}"
            )
        orders[i] = c.order
        procs[i] = c.proc_of
    if validate and n:
        if np.any((procs < 0) | (procs >= m)):
            raise ValueError("processor assignment out of range")
        ar = np.arange(n, dtype=np.int64)
        if np.any(np.sort(orders, axis=1) != ar):
            raise ValueError("scheduling string is not a permutation")
    return orders, procs


def _validate_topological(
    orders: np.ndarray, edge_src: np.ndarray, edge_dst: np.ndarray
) -> np.ndarray:
    """Per-position rank of every task; rejects non-topological orders."""
    pos = np.empty_like(orders)
    np.put_along_axis(
        pos, orders, np.arange(orders.shape[1], dtype=np.int64), axis=1
    )
    if edge_src.size and not bool(
        np.all(pos[:, edge_src] < pos[:, edge_dst])
    ):
        raise ValueError("scheduling string is not a topological order")
    return pos


def _duration_view(
    problem: SchedulingProblem, duration_matrix: np.ndarray | None
) -> np.ndarray:
    """The ``(n, m)`` duration matrix the population is evaluated under.

    ``+inf`` entries are legal (infeasible placements evaluate to an
    ``inf`` makespan); NaN and negatives are not.
    """
    if duration_matrix is None:
        return problem.uncertainty.expected_times
    dur = np.ascontiguousarray(duration_matrix, dtype=np.float64)
    if dur.shape != (problem.n, problem.m):
        raise ValueError(
            f"duration_matrix must have shape ({problem.n}, {problem.m}), "
            f"got {dur.shape}"
        )
    if dur.size and not bool(np.all(dur >= 0.0)):
        raise ValueError("duration_matrix entries must be >= 0 (NaN rejected)")
    return dur


def evaluate_population(
    problem: SchedulingProblem,
    chromosomes: Sequence[Chromosome],
    *,
    need_slack: bool = True,
    duration_matrix: np.ndarray | None = None,
    validate: bool = True,
) -> PopulationEvaluation:
    """Evaluate every chromosome's static metrics in one dispatch.

    Parameters
    ----------
    problem:
        The scheduling problem all chromosomes solve.
    chromosomes:
        The population; every ``order`` must be a topological permutation
        of the task graph and every ``proc_of`` in range (checked when
        ``validate``; the GA's operators guarantee it by construction).
    need_slack:
        Also run the backward pass and fill ``slack_matrix`` (default).
        Makespan-only callers skip roughly half the kernel work.
    duration_matrix:
        Optional ``(n, m)`` duration view replacing the problem's expected
        times (the quantile-fed extension); ``+inf`` entries allowed.
    validate:
        Check the population arrays before evaluating (default).

    Returns
    -------
    PopulationEvaluation
        Makespans (and slacks) bit-identical to evaluating each chromosome
        via ``decode`` + :func:`repro.schedule.evaluation.evaluate`.
    """
    n, m = problem.n, problem.m
    P = len(chromosomes)
    if P == 0:
        empty = np.empty(0, dtype=np.float64)
        return PopulationEvaluation(
            empty, np.empty((0, n), dtype=np.float64) if need_slack else None
        )

    orders, procs = _stack_population(chromosomes, n, m, validate)
    dur = _duration_view(problem, duration_matrix)
    graph = problem.graph
    if validate and n:
        _validate_topological(orders, graph.edge_src, graph.edge_dst)

    makespans = np.empty(P, dtype=np.float64)
    slacks = np.empty((P, n), dtype=np.float64) if need_slack else None
    if n == 0:
        makespans[:] = 0.0
        return PopulationEvaluation(makespans, slacks)

    lib = _native.get_lib()
    use_native = lib is not None
    if _obs.enabled():
        _obs.add(
            "kernel.ga_population.native"
            if use_native
            else "kernel.ga_population.numpy"
        )
    if use_native:
        _eval_native(
            lib, problem, orders, procs, dur, need_slack, makespans, slacks
        )
    else:
        _eval_numpy(problem, orders, procs, dur, need_slack, makespans, slacks)
    return PopulationEvaluation(makespans, slacks)


def _eval_native(
    lib,
    problem: SchedulingProblem,
    orders: np.ndarray,
    procs: np.ndarray,
    dur: np.ndarray,
    need_slack: bool,
    makespans: np.ndarray,
    slacks: np.ndarray | None,
) -> None:
    """One ``ga_population_eval`` call over the stacked population."""
    graph = problem.graph
    dag = ArrayDag.from_taskgraph(graph)
    n, m = problem.n, problem.m
    P = orders.shape[0]

    edge_src = np.ascontiguousarray(graph.edge_src)
    edge_dst = np.ascontiguousarray(graph.edge_dst)
    edge_data = np.ascontiguousarray(graph.edge_data, dtype=np.float64)
    inv_rates = np.ascontiguousarray(problem.platform._inv_rates)
    dur = np.ascontiguousarray(dur)

    n_threads = 1
    if lib.has_openmp():
        n_threads = max(1, min(P, os.cpu_count() or 1))
    ws_f = np.empty((n_threads, 3 * n), dtype=np.float64)
    ws_i = np.empty((n_threads, m), dtype=np.int64)
    # Unused slack output still needs a valid pointer for ctypes.
    slack_out = slacks if slacks is not None else np.empty(1, dtype=np.float64)

    lib.ga_population_eval(
        P,
        n,
        m,
        1 if need_slack else 0,
        n_threads,
        orders.ctypes.data,
        procs.ctypes.data,
        dag.pred_indptr.ctypes.data,
        dag.pred_eidx.ctypes.data,
        edge_src.ctypes.data,
        dag.succ_indptr.ctypes.data,
        dag.succ_eidx.ctypes.data,
        edge_dst.ctypes.data,
        edge_data.ctypes.data,
        inv_rates.ctypes.data,
        dur.ctypes.data,
        ws_f.ctypes.data,
        ws_i.ctypes.data,
        makespans.ctypes.data,
        slack_out.ctypes.data,
    )


def _eval_numpy(
    problem: SchedulingProblem,
    orders: np.ndarray,
    procs: np.ndarray,
    dur: np.ndarray,
    need_slack: bool,
    makespans: np.ndarray,
    slacks: np.ndarray | None,
) -> None:
    """Per-individual fallback over the scalar :class:`ArrayDag` kernels.

    Builds each individual's disjunctive edge arrays directly (DAG edges
    with Eqn. 1 communication weights plus *all* chain edges at weight
    0.0 — duplicates against DAG edges carry equal values, so ``max``
    absorbs them) and hands the scheduling string to :class:`ArrayDag` as
    a trusted topological order, skipping both the ``Schedule`` object and
    the peel/cycle check.
    """
    graph = problem.graph
    inv_rates = problem.platform._inv_rates
    esrc, edst = graph.edge_src, graph.edge_dst
    edge_data = np.asarray(graph.edge_data, dtype=np.float64)
    n = problem.n
    idx = np.arange(n)

    for i in range(orders.shape[0]):
        order = orders[i]
        pr = procs[i]
        comm = edge_data * inv_rates[pr[esrc], pr[edst]]
        # Chain edges: consecutive tasks per processor, i.e. the string
        # grouped by processor with within-group order preserved.
        assigned = pr[order]
        sidx = np.argsort(assigned, kind="stable")
        seq = order[sidx]
        sp = assigned[sidx]
        same = sp[1:] == sp[:-1]
        ca = seq[:-1][same]
        cb = seq[1:][same]
        dis_src = np.concatenate([esrc, ca])
        dis_dst = np.concatenate([edst, cb])
        edge_w = np.concatenate([comm, np.zeros(ca.size, dtype=np.float64)])

        dag = ArrayDag(n, dis_src, dis_dst, topo=order)
        node_w = dur[idx, pr]
        tl = dag.top_levels(node_w, edge_w)
        fin = tl + node_w
        makespans[i] = fin.max()
        if need_slack:
            bl = dag.bottom_levels(node_w, edge_w)
            # inf - inf on infeasible individuals is the documented NaN
            # passthrough, not an error worth warning about.
            with np.errstate(invalid="ignore"):
                row = (makespans[i] - bl) - tl
            np.maximum(row, 0.0, out=row)
            slacks[i] = row
