"""Direct robustness optimization via the analytical estimator (extension).

The paper optimizes *slack* as a cheap surrogate for robustness.  With
the canonical-form Clark estimator (:mod:`repro.robustness.clark`)
providing ~1 %-accurate makespan-distribution moments in a single
O(n·(n+|E|)) pass, the surrogate can be bypassed: this fitness policy
keeps the ε-constraint of Eqn. 7 but maximizes the *analytic* robustness
(minimizes the closed-form expected relative tardiness) instead of the
average slack.

Comparing the two fitnesses on realized Monte-Carlo robustness (ablation
A4, ``benchmarks/test_ablation_analytic_fitness.py``) quantifies how much
the slack surrogate leaves on the table — an answer to the paper's
future-work question about exploiting stochastic information.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.fitness import Individual
from repro.robustness.clark import clark_makespan

__all__ = ["AnalyticRobustnessFitness"]

_INFEASIBLE_OFFSET = 1e6


class AnalyticRobustnessFitness:
    """ε-constraint fitness maximizing analytic robustness.

    Feasible individuals (``M_0 <= epsilon * m_heft``) score the negated
    closed-form expected relative tardiness of their schedule (so less
    tardiness = fitter); infeasible individuals score strictly below every
    feasible one, ordered by constraint violation.

    Parameters
    ----------
    epsilon:
        Makespan budget multiplier (as in Eqn. 7).
    m_heft:
        Reference makespan ``M_HEFT``.

    Notes
    -----
    Clark estimates are cached per chromosome, so repeated population
    evaluations (elites, copied survivors) pay once.
    """

    uses_slack = False  # scores read makespan + Clark moments, never slack

    def __init__(self, epsilon: float, m_heft: float) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if m_heft <= 0:
            raise ValueError(f"m_heft must be positive, got {m_heft}")
        self.epsilon = float(epsilon)
        self.m_heft = float(m_heft)
        self.name = f"analytic-robustness(eps={epsilon:g})"
        self._cache: dict[bytes, float] = {}

    @classmethod
    def for_problem(
        cls, problem: SchedulingProblem, epsilon: float
    ) -> "AnalyticRobustnessFitness":
        """Build the policy by running HEFT on *problem* for ``M_HEFT``."""
        from repro.heuristics.heft import HeftScheduler
        from repro.schedule.evaluation import expected_makespan

        return cls(epsilon, expected_makespan(HeftScheduler().schedule(problem)))

    @property
    def bound(self) -> float:
        """The makespan ceiling ``epsilon * M_HEFT``."""
        return self.epsilon * self.m_heft

    def _tardiness(self, ind: Individual) -> float:
        key = ind.chromosome.key()
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        est = clark_makespan(ind.schedule)
        value = est.mean_relative_tardiness(ind.makespan)
        self._cache[key] = value
        return value

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """Negated analytic tardiness for feasible, penalty otherwise."""
        out = np.empty(len(population), dtype=np.float64)
        bound = self.bound * (1.0 + 1e-12)
        for i, ind in enumerate(population):
            if ind.makespan <= bound:
                out[i] = -self._tardiness(ind)
            else:
                out[i] = -_INFEASIBLE_OFFSET + self.bound / ind.makespan
        return out
