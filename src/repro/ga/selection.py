"""Binary tournament selection (paper Sec. 4.2.4).

The systematic variant: the population is randomly permuted and adjacent
pairs fight; a second independent permutation yields the other half of the
intermediate population.  Every individual thus participates in exactly
two tournaments — the best individual wins both (two copies), the worst
loses both (eliminated) — and the intermediate population keeps the
original size.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["binary_tournament"]


def binary_tournament(
    fitness: np.ndarray, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Select ``len(fitness)`` population indices by systematic binary tournament.

    Parameters
    ----------
    fitness:
        Fitness of every individual; larger is fitter.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Indices (with repetition) of the selected individuals.  For odd
        population sizes the leftover individual of each permutation
        advances unopposed, preserving the population size.
    """
    fitness = np.asarray(fitness, dtype=np.float64)
    n = fitness.shape[0]
    if n == 0:
        raise ValueError("cannot select from an empty population")
    gen = as_generator(rng)

    winners: list[int] = []
    for _ in range(2):
        perm = gen.permutation(n)
        half = n // 2
        a = perm[0 : 2 * half : 2]
        b = perm[1 : 2 * half : 2]
        take_a = fitness[a] >= fitness[b]
        winners.extend(np.where(take_a, a, b).tolist())
        if n % 2 == 1:
            winners.append(int(perm[-1]))
        if len(winners) >= n:
            break
    return np.asarray(winners[:n], dtype=np.int64)
