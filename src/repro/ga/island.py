"""Island-model GA (extension): multiple populations with migration.

The paper guards against premature convergence with an initial-population
uniqueness check (Sec. 4.2.2); the island model is the standard stronger
remedy — several sub-populations evolve independently and periodically
exchange their best individuals, preserving diversity far longer.  This
wrapper runs ``k`` :class:`~repro.ga.engine.GeneticScheduler` instances
in *epochs*: each epoch every island evolves for a fixed number of
generations from its current population, then the islands' elites migrate
ring-wise (island i's best replaces island i+1's worst).

Implemented on top of the engine without modifying it: between epochs the
islands are restarted with their previous final populations injected via
the ``seed_population`` hook.

Islands can also run as :mod:`repro.cluster` tasks (``run(problem,
n_jobs=k)``): each (epoch, island) evolution is one task whose
dependencies carry the migrants — island *i*'s epoch-*e* task depends on
the epoch-*(e-1)* tasks of islands *i* (its own population) and *i-1*
(the ring migrant), so elites travel between processes through the
scheduler.  Streams are pre-spawned from the root seed in the same order
as the serial loop, making parallel results bit-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome
from repro.ga.engine import GAParams, GAResult, GeneticScheduler
from repro.ga.fitness import FitnessPolicy
from repro.obs import runtime as obs
from repro.utils.rng import as_generator

__all__ = ["IslandParams", "IslandResult", "IslandGeneticScheduler"]


@dataclass(frozen=True)
class IslandParams:
    """Island-model knobs.

    Attributes
    ----------
    n_islands:
        Number of sub-populations.
    epoch_generations:
        Generations each island evolves per epoch.
    epochs:
        Number of evolve-migrate rounds.
    """

    n_islands: int = 4
    epoch_generations: int = 50
    epochs: int = 5

    def __post_init__(self) -> None:
        if self.n_islands < 2:
            raise ValueError("n_islands must be >= 2")
        if self.epoch_generations < 1:
            raise ValueError("epoch_generations must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass(frozen=True)
class IslandResult:
    """Outcome of an island-model run."""

    best: GAResult
    island_bests: tuple[float, ...]  # final best fitness per island
    epochs: int

    @property
    def schedule(self):
        """The overall best schedule."""
        return self.best.schedule


class _SeededEngine(GeneticScheduler):
    """Engine whose initial population is (partly) supplied by the caller."""

    def __init__(self, *args, seed_population=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._seed_population: list[Chromosome] = list(seed_population or [])

    def _initial_population(self, problem: SchedulingProblem):
        if not self._seed_population:
            return super()._initial_population(problem)
        base = list(self._seed_population[: self.params.population_size])
        while len(base) < self.params.population_size:
            from repro.ga.chromosome import random_chromosome

            base.append(random_chromosome(problem, self._rng))
        return base


def _elites_of(result: GAResult, pop_size: int) -> list[Chromosome]:
    """An epoch's carry-over population: per-generation bests, unique,
    most recent first, truncated to the population size."""
    seen: set[bytes] = set()
    elites: list[Chromosome] = []
    for c in reversed(result.history.best_chromosomes):
        if c.key() not in seen:
            seen.add(c.key())
            elites.append(c)
    return elites[:pop_size]


def _epoch_key(epoch: int, island: int) -> str:
    """Cluster task key of one island's epoch."""
    return f"epoch={epoch}/island={island}"


def _island_epoch_task(
    dep_results,
    fitness,
    epoch_params: GAParams,
    stream,
    problem: SchedulingProblem,
    island: int,
    n_islands: int,
    pop_size: int,
    epoch: int,
) -> dict:
    """One (epoch, island) evolution as a cluster task.

    ``dep_results`` holds the previous epoch's payloads for this island
    (its population) and its ring predecessor (the migrant) — the
    migration that the serial loop performs in-place happens here, on the
    receiving side, with identical insert/truncate semantics.
    """
    if epoch == 0:
        seed_population = None
    else:
        own = dep_results[_epoch_key(epoch - 1, island)]
        neighbor = dep_results[_epoch_key(epoch - 1, (island - 1) % n_islands)]
        pool: list[Chromosome] = list(own["elites"])
        migrant: Chromosome = neighbor["best"]
        if migrant.key() not in {c.key() for c in pool}:
            pool.insert(0, migrant)
            del pool[pop_size:]
            obs.add("ga.island.migrations")
        seed_population = pool
    params = (
        epoch_params
        if (island == 0 or seed_population is not None)
        else replace(epoch_params, seed_heft=False)
    )
    engine = _SeededEngine(
        fitness,
        params,
        stream,
        duration_matrix=None,
        seed_population=seed_population,
    )
    with obs.trace("ga.island_epoch", epoch=epoch, island=island):
        result = engine.run(problem)
    return {
        "result": result,
        "elites": _elites_of(result, pop_size),
        "best": result.best.chromosome,
    }


class IslandGeneticScheduler:
    """Multi-population GA with ring migration.

    Parameters
    ----------
    fitness:
        Shared fitness policy (each island evaluates with it).
    ga_params:
        Per-island GA hyper-parameters; ``max_iterations`` is overridden
        by the epoch length and stagnation is disabled within epochs.
    island_params:
        Island-model knobs.
    rng:
        Seed or generator; islands draw independent child streams.
    """

    name = "island-ga"

    def __init__(
        self,
        fitness: FitnessPolicy,
        ga_params: GAParams | None = None,
        island_params: IslandParams | None = None,
        rng=None,
    ) -> None:
        self.fitness = fitness
        self.ga_params = ga_params or GAParams()
        self.island_params = island_params or IslandParams()
        self._rng = as_generator(rng)

    def run(
        self,
        problem: SchedulingProblem,
        *,
        n_jobs: int = 1,
        progress=None,
    ) -> IslandResult:
        """Evolve all islands with periodic elite migration.

        Parameters
        ----------
        n_jobs:
            Worker processes; ``1`` (default) evolves islands in-process,
            ``> 1`` runs each (epoch, island) evolution as a
            :mod:`repro.cluster` task with migrants exchanged through the
            scheduler.  Results are bit-identical for any value.
        progress:
            Optional ``progress(line: str)`` status callback (cluster
            path only).
        """
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        ip = self.island_params
        epoch_params = replace(
            self.ga_params,
            max_iterations=ip.epoch_generations,
            stagnation_limit=max(ip.epoch_generations, 1),
        )
        streams = self._rng.spawn(ip.n_islands * ip.epochs)
        if n_jobs > 1:
            return self._run_cluster(problem, epoch_params, streams, n_jobs, progress)

        # Current population per island (None = fresh start).
        populations: list[list[Chromosome] | None] = [None] * ip.n_islands
        # Only island 0 receives the HEFT seed, keeping the others diverse.
        results: list[GAResult | None] = [None] * ip.n_islands

        k = 0
        for epoch in range(ip.epochs):
            for i in range(ip.n_islands):
                params = (
                    epoch_params
                    if (i == 0 or populations[i] is not None)
                    else replace(epoch_params, seed_heft=False)
                )
                engine = _SeededEngine(
                    self.fitness,
                    params,
                    streams[k],
                    duration_matrix=None,
                    seed_population=populations[i],
                )
                k += 1
                with obs.trace("ga.island_epoch", epoch=epoch, island=i):
                    result = engine.run(problem)
                results[i] = result
                # Island's next-epoch population: elites of this epoch —
                # approximate with the per-generation best chromosomes
                # (unique, most recent first) padded by the engine later.
                populations[i] = _elites_of(result, self.ga_params.population_size)

            # Ring migration: island i's best joins island i+1's pool.
            bests = [results[i].best.chromosome for i in range(ip.n_islands)]
            for i in range(ip.n_islands):
                target = (i + 1) % ip.n_islands
                pool = populations[target]
                assert pool is not None
                if bests[i].key() not in {c.key() for c in pool}:
                    pool.insert(0, bests[i])
                    del pool[self.ga_params.population_size :]
                    obs.add("ga.island.migrations")

        final = [r for r in results if r is not None]
        best = max(final, key=lambda r: r.best_fitness)
        return IslandResult(
            best=best,
            island_bests=tuple(r.best_fitness for r in final),
            epochs=ip.epochs,
        )

    def _run_cluster(
        self,
        problem: SchedulingProblem,
        epoch_params: GAParams,
        streams,
        n_jobs: int,
        progress,
    ) -> IslandResult:
        """Cluster path: one task per (epoch, island), migrants via deps.

        Stream ``streams[epoch * n_islands + island]`` matches the serial
        loop's consumption order, and migration is replayed on the
        receiving island with identical semantics, so the outcome is
        bit-identical to the in-process path — crash retries included,
        because a re-dispatched task is sent the same unconsumed stream.
        """
        from repro.cluster import run_tasks, TaskSpec

        ip = self.island_params
        pop_size = self.ga_params.population_size
        specs = []
        for epoch in range(ip.epochs):
            for i in range(ip.n_islands):
                deps = (
                    ()
                    if epoch == 0
                    else (
                        _epoch_key(epoch - 1, i),
                        _epoch_key(epoch - 1, (i - 1) % ip.n_islands),
                    )
                )
                specs.append(
                    TaskSpec(
                        key=_epoch_key(epoch, i),
                        fn=_island_epoch_task,
                        args=(
                            self.fitness,
                            epoch_params,
                            streams[epoch * ip.n_islands + i],
                            problem,
                            i,
                            ip.n_islands,
                            pop_size,
                            epoch,
                        ),
                        deps=deps,
                        pass_dep_results=True,
                        max_retries=2,
                    )
                )
        outcomes = run_tasks(specs, n_workers=n_jobs, progress=progress)
        final = [
            outcomes[_epoch_key(ip.epochs - 1, i)].result["result"]
            for i in range(ip.n_islands)
        ]
        best = max(final, key=lambda r: r.best_fitness)
        return IslandResult(
            best=best,
            island_bests=tuple(r.best_fitness for r in final),
            epochs=ip.epochs,
        )

    def schedule(self, problem: SchedulingProblem):
        """Scheduler-protocol facade."""
        return self.run(problem).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IslandGeneticScheduler(islands={self.island_params.n_islands}, "
            f"epochs={self.island_params.epochs})"
        )
