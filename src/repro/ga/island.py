"""Island-model GA (extension): multiple populations with migration.

The paper guards against premature convergence with an initial-population
uniqueness check (Sec. 4.2.2); the island model is the standard stronger
remedy — several sub-populations evolve independently and periodically
exchange their best individuals, preserving diversity far longer.  This
wrapper runs ``k`` :class:`~repro.ga.engine.GeneticScheduler` instances
in *epochs*: each epoch every island evolves for a fixed number of
generations from its current population, then the islands' elites migrate
ring-wise (island i's best replaces island i+1's worst).

Implemented on top of the engine without modifying it: between epochs the
islands are restarted with their previous final populations injected via
the ``seed_population`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.chromosome import Chromosome
from repro.ga.engine import GAParams, GAResult, GeneticScheduler
from repro.ga.fitness import FitnessPolicy
from repro.utils.rng import as_generator

__all__ = ["IslandParams", "IslandResult", "IslandGeneticScheduler"]


@dataclass(frozen=True)
class IslandParams:
    """Island-model knobs.

    Attributes
    ----------
    n_islands:
        Number of sub-populations.
    epoch_generations:
        Generations each island evolves per epoch.
    epochs:
        Number of evolve-migrate rounds.
    """

    n_islands: int = 4
    epoch_generations: int = 50
    epochs: int = 5

    def __post_init__(self) -> None:
        if self.n_islands < 2:
            raise ValueError("n_islands must be >= 2")
        if self.epoch_generations < 1:
            raise ValueError("epoch_generations must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass(frozen=True)
class IslandResult:
    """Outcome of an island-model run."""

    best: GAResult
    island_bests: tuple[float, ...]  # final best fitness per island
    epochs: int

    @property
    def schedule(self):
        """The overall best schedule."""
        return self.best.schedule


class _SeededEngine(GeneticScheduler):
    """Engine whose initial population is (partly) supplied by the caller."""

    def __init__(self, *args, seed_population=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._seed_population: list[Chromosome] = list(seed_population or [])

    def _initial_population(self, problem: SchedulingProblem):
        if not self._seed_population:
            return super()._initial_population(problem)
        base = list(self._seed_population[: self.params.population_size])
        while len(base) < self.params.population_size:
            from repro.ga.chromosome import random_chromosome

            base.append(random_chromosome(problem, self._rng))
        return base


class IslandGeneticScheduler:
    """Multi-population GA with ring migration.

    Parameters
    ----------
    fitness:
        Shared fitness policy (each island evaluates with it).
    ga_params:
        Per-island GA hyper-parameters; ``max_iterations`` is overridden
        by the epoch length and stagnation is disabled within epochs.
    island_params:
        Island-model knobs.
    rng:
        Seed or generator; islands draw independent child streams.
    """

    name = "island-ga"

    def __init__(
        self,
        fitness: FitnessPolicy,
        ga_params: GAParams | None = None,
        island_params: IslandParams | None = None,
        rng=None,
    ) -> None:
        self.fitness = fitness
        self.ga_params = ga_params or GAParams()
        self.island_params = island_params or IslandParams()
        self._rng = as_generator(rng)

    def run(self, problem: SchedulingProblem) -> IslandResult:
        """Evolve all islands with periodic elite migration."""
        ip = self.island_params
        epoch_params = replace(
            self.ga_params,
            max_iterations=ip.epoch_generations,
            stagnation_limit=max(ip.epoch_generations, 1),
        )
        streams = self._rng.spawn(ip.n_islands * ip.epochs)

        # Current population per island (None = fresh start).
        populations: list[list[Chromosome] | None] = [None] * ip.n_islands
        # Only island 0 receives the HEFT seed, keeping the others diverse.
        results: list[GAResult | None] = [None] * ip.n_islands

        k = 0
        for epoch in range(ip.epochs):
            for i in range(ip.n_islands):
                params = (
                    epoch_params
                    if (i == 0 or populations[i] is not None)
                    else replace(epoch_params, seed_heft=False)
                )
                engine = _SeededEngine(
                    self.fitness,
                    params,
                    streams[k],
                    duration_matrix=None,
                    seed_population=populations[i],
                )
                k += 1
                result = engine.run(problem)
                results[i] = result
                # Island's next-epoch population: elites of this epoch —
                # approximate with the per-generation best chromosomes
                # (unique, most recent first) padded by the engine later.
                seen: set[bytes] = set()
                elites: list[Chromosome] = []
                for c in reversed(result.history.best_chromosomes):
                    if c.key() not in seen:
                        seen.add(c.key())
                        elites.append(c)
                populations[i] = elites[: self.ga_params.population_size]

            # Ring migration: island i's best joins island i+1's pool.
            bests = [results[i].best.chromosome for i in range(ip.n_islands)]
            for i in range(ip.n_islands):
                target = (i + 1) % ip.n_islands
                pool = populations[target]
                assert pool is not None
                if bests[i].key() not in {c.key() for c in pool}:
                    pool.insert(0, bests[i])
                    del pool[self.ga_params.population_size :]

        final = [r for r in results if r is not None]
        best = max(final, key=lambda r: r.best_fitness)
        return IslandResult(
            best=best,
            island_bests=tuple(r.best_fitness for r in final),
            epochs=ip.epochs,
        )

    def schedule(self, problem: SchedulingProblem):
        """Scheduler-protocol facade."""
        return self.run(problem).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IslandGeneticScheduler(islands={self.island_params.n_islands}, "
            f"epochs={self.island_params.epochs})"
        )
