"""The named scheduler catalogue: every combination served and swept.

``CATALOGUE`` maps a stable name to the :class:`Components` tuple it
runs.  The first four entries reproduce the legacy classes bit-for-bit
(property-pinned); the rest recombine the axes into new schedulers that
cost zero additional implementation.  Every entry is

* runnable via ``repro algo-grid`` (:mod:`repro.experiments.algo_grid`),
* servable as a fast-tier solver in :mod:`repro.service` (the extras are
  exported as :data:`ALGEBRA_SOLVERS` and appended to the protocol's
  solver table), and
* constructible with :func:`component_scheduler`.
"""

from __future__ import annotations

from repro.algebra.components import Components
from repro.algebra.scheduler import ComponentScheduler

__all__ = [
    "CATALOGUE",
    "LEGACY_EQUIVALENTS",
    "ALGEBRA_SOLVERS",
    "catalogue",
    "component_scheduler",
]

#: name -> component tuple.  Insertion order is the canonical sweep order.
CATALOGUE: dict[str, Components] = {
    # -- the four legacy schedulers as grid points (bit-identical) ----- #
    "heft": Components("upward", "eft", "insertion", "static"),
    "cpop": Components("cp", "pinned", "insertion", "ready"),
    "peft": Components("oct", "oct", "insertion", "ready"),
    # The greedy orders ignore the ranking; "upward" is just a valid
    # placeholder for min-min's ranking slot.
    "minmin": Components("upward", "eft", "insertion", "greedy-eft"),
    # -- recombinations ------------------------------------------------ #
    "heft-append": Components("upward", "eft", "append", "static"),
    "heft-greedy": Components("upward", "greedy", "insertion", "static"),
    "heft-lookahead": Components("upward", "lookahead", "insertion", "static"),
    "heft-q90": Components("upward", "padded", "insertion", "static", q=0.9),
    "heft-ready": Components("upward", "eft", "insertion", "ready"),
    "blevel-eft": Components("blevel", "eft", "insertion", "static"),
    "blevel-append": Components("blevel", "eft", "append", "static"),
    "cpop-append": Components("cp", "pinned", "append", "ready"),
    "cpop-unpinned": Components("cp", "eft", "insertion", "ready"),
    "peft-append": Components("oct", "oct", "append", "ready"),
    "peft-eft": Components("oct", "eft", "insertion", "ready"),
    "peft-lookahead": Components("oct", "lookahead", "insertion", "ready"),
    "minmin-append": Components("upward", "eft", "append", "greedy-eft"),
    "maxmin": Components("upward", "eft", "insertion", "greedy-maxeft"),
    "random-eft": Components("random", "eft", "insertion", "ready"),
    "random-append": Components("random", "eft", "append", "ready"),
}

#: Catalogue entries that reproduce a legacy class bit-identically.
LEGACY_EQUIVALENTS = ("heft", "cpop", "peft", "minmin")

#: New solver names contributed to ``repro.service``'s fast tier — the
#: catalogue minus the legacy names the protocol already lists.
ALGEBRA_SOLVERS: tuple[str, ...] = tuple(
    name for name in CATALOGUE if name not in LEGACY_EQUIVALENTS
)


def catalogue() -> dict[str, Components]:
    """A copy of the named catalogue (mutation-safe)."""
    return dict(CATALOGUE)


def component_scheduler(name: str) -> ComponentScheduler:
    """Build the catalogue scheduler registered under *name*."""
    try:
        comps = CATALOGUE[name]
    except KeyError:
        raise KeyError(
            f"unknown catalogue scheduler {name!r}; "
            f"choose from {tuple(CATALOGUE)}"
        ) from None
    return ComponentScheduler(comps, name=name)
