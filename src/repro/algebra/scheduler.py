"""ComponentScheduler — one list scheduler per point of the component grid.

The order loops here replicate the legacy classes' mechanics exactly —
the ``static`` loop is HEFT's ``np.lexsort`` pass, the ``ready`` loop is
the CPOP/PEFT priority heap, the greedy loops are min-min's sorted-set
scan — so a tuple that names a legacy scheduler's components produces a
bit-identical schedule (pinned by
``tests/property/test_algebra_identity.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import replace

import numpy as np

from repro import obs
from repro.algebra.components import Components, RankContext, rank_context
from repro.core.problem import SchedulingProblem
from repro.heuristics.base import PartialSchedule
from repro.platform.uncertainty import UncertaintyModel
from repro.schedule.schedule import Schedule

__all__ = ["ComponentScheduler"]


# --------------------------------------------------------------------- #
# Processor-selection functions
#
# Each returns ``(proc, fin)`` — the chosen processor and the task's
# earliest finish time there — without mutating the partial schedule, so
# the greedy orders can compare candidates before committing.
# --------------------------------------------------------------------- #


def _select_eft(
    partial: PartialSchedule, v: int, ctx: RankContext
) -> tuple[int, float]:
    proc, _, fin = partial.best_processor(v)
    return proc, fin


def _select_greedy(
    partial: PartialSchedule, v: int, ctx: RankContext
) -> tuple[int, float]:
    proc = int(np.argmin(partial.problem.expected_times[v]))
    return proc, partial.eft(v, proc)[1]


def _select_oct(
    partial: PartialSchedule, v: int, ctx: RankContext
) -> tuple[int, float]:
    oct_table = ctx.oct_table
    assert oct_table is not None  # guaranteed by Components validation
    best: tuple[float, int, float] | None = None  # (score, proc, fin)
    for p in range(partial.problem.m):
        _, fin = partial.eft(v, p)
        score = fin + float(oct_table[v, p])
        if best is None or score < best[0]:
            best = (score, p, fin)
    assert best is not None
    return best[1], best[2]


def _select_pinned(
    partial: PartialSchedule, v: int, ctx: RankContext
) -> tuple[int, float]:
    if v in ctx.cp_tasks:
        return ctx.cp_proc, partial.eft(v, ctx.cp_proc)[1]
    return _select_eft(partial, v, ctx)


def _select_lookahead(
    partial: PartialSchedule, v: int, ctx: RankContext
) -> tuple[int, float]:
    """Lookahead-1: judge each placement by its worst evaluable child EFT.

    For every processor, tentatively place *v* there, compute the best
    EFT of each child all of whose predecessors are then placed, and
    score the placement by the worst such child (falling back to *v*'s
    own finish when no child is evaluable yet).  Ties break to the
    earlier own finish, then to the lower processor index.
    """
    problem = partial.problem
    graph = problem.graph
    best: tuple[tuple[float, float], int] | None = None  # ((score, fin), p)
    for p in range(problem.m):
        _, fin = partial.eft(v, p)
        partial.place(v, p)
        worst: float | None = None
        for w in graph.successors(v):
            w = int(w)
            preds = graph.edge_src[graph.predecessor_edge_indices(w)]
            if all(partial.is_placed(int(u)) for u in preds):
                _, _, child_fin = partial.best_processor(w)
                worst = child_fin if worst is None else max(worst, child_fin)
        partial.unplace(v)
        key = (fin if worst is None else worst, fin)
        if best is None or key < best[0]:
            best = (key, p)
    assert best is not None
    return best[1], best[0][1]


_SELECTORS = {
    "eft": _select_eft,
    "greedy": _select_greedy,
    "oct": _select_oct,
    "pinned": _select_pinned,
    "lookahead": _select_lookahead,
    # "padded" is resolved by ComponentScheduler.schedule (proxy problem).
}


class ComponentScheduler:
    """List scheduler assembled from a :class:`Components` tuple.

    >>> from repro.algebra import Components, ComponentScheduler
    >>> ComponentScheduler(Components()).name
    'upward/eft/insertion/static'

    Parameters
    ----------
    components:
        The point of the grid to run.
    name:
        Optional display name; defaults to the tuple's canonical
        ``ranking/selection/insertion/order`` spec string.
    """

    def __init__(
        self, components: Components, *, name: str | None = None
    ) -> None:
        self.components = components
        self.name = name if name is not None else components.spec

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Build the schedule for *problem* from the component tuple."""
        comps = self.components
        with obs.trace(
            "algebra.solve",
            scheduler=self.name,
            spec=comps.spec,
            n=problem.n,
            m=problem.m,
        ):
            if obs.enabled():
                obs.add("algebra.solves")
                obs.add(f"algebra.ranking.{comps.ranking}")
                obs.add(f"algebra.selection.{comps.selection}")
                obs.add(f"algebra.insertion.{comps.insertion}")
                obs.add(f"algebra.order.{comps.order}")
            if comps.selection == "padded":
                # QuantileHeftScheduler's mechanism, generalised: plan the
                # whole pipeline against q-quantile durations, then rebind
                # the processor orders to the real problem.
                proxy = SchedulingProblem(
                    graph=problem.graph,
                    platform=problem.platform,
                    uncertainty=UncertaintyModel.deterministic(
                        problem.uncertainty.quantile_times(comps.q)
                    ),
                    name=f"{problem.name}@q{comps.q:g}",
                )
                planned = self._run(proxy, replace(comps, selection="eft"))
                return Schedule(problem, [list(t) for t in planned.proc_orders])
            return self._run(problem, comps)

    def _run(
        self, problem: SchedulingProblem, comps: Components
    ) -> Schedule:
        ctx = rank_context(comps, problem)
        partial = PartialSchedule(
            problem, append_only=(comps.insertion == "append")
        )
        select = _SELECTORS[comps.selection]

        if comps.order == "static":
            # HEFT's pass: one descending sort (ties to the smaller id).
            order = np.lexsort((np.arange(problem.n), -ctx.priorities))
            for v in order:
                v = int(v)
                proc, _ = select(partial, v, ctx)
                partial.place(v, proc)
            return partial.to_schedule()

        graph = problem.graph
        indeg = graph.in_degree().astype(np.int64).copy()

        if comps.order == "ready":
            # CPOP/PEFT's pass: max-heap on priority over ready tasks.
            prio = ctx.priorities
            ready_heap = [
                (-float(prio[v]), int(v)) for v in np.flatnonzero(indeg == 0)
            ]
            heapq.heapify(ready_heap)
            placed = 0
            while ready_heap:
                _, v = heapq.heappop(ready_heap)
                proc, _ = select(partial, v, ctx)
                partial.place(v, proc)
                placed += 1
                for w in graph.successors(v):
                    w = int(w)
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        heapq.heappush(ready_heap, (-float(prio[w]), w))
            if placed != problem.n:  # pragma: no cover - graph is acyclic
                raise RuntimeError("ready order failed to place all tasks")
            return partial.to_schedule()

        # Greedy orders (min-min's pass): the ranking is ignored; every
        # step commits the ready task with the extreme selected finish.
        maximize = comps.order == "greedy-maxeft"
        ready = set(int(v) for v in np.flatnonzero(indeg == 0))
        for _ in range(problem.n):
            best: tuple[float, int, int] | None = None  # (fin, task, proc)
            for v in sorted(ready):
                proc, fin = select(partial, v, ctx)
                better = (
                    best is None
                    or (fin > best[0] if maximize else fin < best[0])
                )
                if better:
                    best = (fin, v, proc)
            if best is None:  # pragma: no cover - graph is acyclic
                raise RuntimeError("greedy order deadlocked: no ready task")
            _, v, proc = best
            partial.place(v, proc)
            ready.discard(v)
            for w in graph.successors(v):
                w = int(w)
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.add(w)
        return partial.to_schedule()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComponentScheduler({self.components!r}, name={self.name!r})"
