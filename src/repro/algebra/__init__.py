"""repro.algebra — the composable list-scheduling algebra.

Factors list scheduling into four independently pluggable axes —
priority **ranking** × processor **selection** × **insertion** policy ×
placement **order** (tie-breaking / lookahead) — per the decomposition
of "Parameterized Task Graph Scheduling Algorithm for Comparing
Algorithmic Components" (arXiv 2403.07112).  A :class:`Components`
tuple names one point of the grid; :class:`ComponentScheduler` runs it;
:data:`CATALOGUE` names the served combinations, the first four of
which reproduce :class:`~repro.heuristics.HeftScheduler`,
:class:`~repro.heuristics.CpopScheduler`,
:class:`~repro.heuristics.PeftScheduler` and
:class:`~repro.heuristics.MinMinScheduler` **bit-identically**
(hypothesis-pinned in ``tests/property/test_algebra_identity.py``).

>>> from repro.algebra import Components, ComponentScheduler
>>> ComponentScheduler(Components("upward", "eft", "append", "static"))
ComponentScheduler(...)

See ``docs/algorithms.md`` for the executable component catalogue and
``repro algo-grid`` for the cross-product sweep.
"""

from repro.algebra.components import (
    INSERTIONS,
    MONOTONE_RANKINGS,
    ORDERS,
    RANKINGS,
    SELECTIONS,
    Components,
    RankContext,
    rank_context,
    static_blevels,
)
from repro.algebra.catalogue import (
    ALGEBRA_SOLVERS,
    CATALOGUE,
    LEGACY_EQUIVALENTS,
    catalogue,
    component_scheduler,
)
from repro.algebra.scheduler import ComponentScheduler

__all__ = [
    "RANKINGS",
    "SELECTIONS",
    "INSERTIONS",
    "ORDERS",
    "MONOTONE_RANKINGS",
    "Components",
    "RankContext",
    "rank_context",
    "static_blevels",
    "ComponentScheduler",
    "CATALOGUE",
    "LEGACY_EQUIVALENTS",
    "ALGEBRA_SOLVERS",
    "catalogue",
    "component_scheduler",
]
