"""The four component axes of the list-scheduling algebra.

Following the decomposition of "Parameterized Task Graph Scheduling
Algorithm for Comparing Algorithmic Components" (arXiv 2403.07112), a
list scheduler is a point in the cross-product of four independent
axes:

* **ranking** — the static priority assigned to every task
  (:data:`RANKINGS`);
* **selection** — which processor a task is committed to
  (:data:`SELECTIONS`);
* **insertion** — whether a task may fill an idle gap between already
  placed tasks or only append after the processor's last finish
  (:data:`INSERTIONS`);
* **order** — how the ranking turns into an actual placement sequence,
  including the tie-breaking / dynamic-lookahead variants
  (:data:`ORDERS`).

:class:`Components` names one point of that grid and validates the
combination; :func:`rank_context` evaluates the ranking axis into the
:class:`RankContext` the selection and order loops consume.  The legacy
classes in :mod:`repro.heuristics` are specific points of the grid (see
:mod:`repro.algebra.catalogue`) and remain the verified reference
implementations — the ranking functions here are *imported from* them,
not reimplemented, so the component route cannot drift numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.heuristics.base import average_execution_times
from repro.heuristics.cpop import critical_path_tasks
from repro.heuristics.heft import downward_ranks, upward_ranks
from repro.heuristics.peft import optimistic_cost_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import SchedulingProblem

__all__ = [
    "RANKINGS",
    "SELECTIONS",
    "INSERTIONS",
    "ORDERS",
    "MONOTONE_RANKINGS",
    "Components",
    "RankContext",
    "rank_context",
    "static_blevels",
]

#: Priority-ranking axis: how every task's static priority is computed.
RANKINGS = ("upward", "blevel", "cp", "oct", "random")

#: Processor-selection axis: where a task is committed.
SELECTIONS = ("eft", "greedy", "oct", "pinned", "lookahead", "padded")

#: Insertion-policy axis: gap-filling vs append-only slot search.
INSERTIONS = ("insertion", "append")

#: Order axis: how the ranking becomes a placement sequence.  ``static``
#: sorts once by descending priority (ties to the smaller task id);
#: ``ready`` pops the highest-priority *ready* task (same tie-break);
#: the greedy orders ignore the ranking and pick the ready task whose
#: selected finish time is smallest (min-min) or largest (max-min).
ORDERS = ("static", "ready", "greedy-eft", "greedy-maxeft")

#: Rankings that strictly decrease along every edge (given positive
#: execution times), i.e. whose descending sort is a topological order.
#: Only these may drive the ``static`` order.
MONOTONE_RANKINGS = frozenset({"upward", "blevel"})


def static_blevels(problem: SchedulingProblem) -> np.ndarray:
    """Static b-level: longest average-execution path to an exit task.

    The classic communication-free bottom level — :func:`upward_ranks`
    with every communication cost zeroed.  Monotone along edges, so its
    descending sort is a valid static placement order.
    """
    graph = problem.graph
    w = average_execution_times(problem)
    rank = w.copy()
    for v in graph.topological[::-1]:
        v = int(v)
        eidx = graph.successor_edge_indices(v)
        if eidx.size:
            succ = graph.edge_dst[eidx]
            rank[v] = w[v] + float(rank[succ].max())
    return rank


@dataclass(frozen=True)
class Components:
    """One named point of the scheduler grid: ranking × selection ×
    insertion × order.

    Parameters
    ----------
    ranking / selection / insertion / order:
        One member of each axis (see the module constants).
    q:
        Quantile for the ``padded`` selection (``0.9`` reproduces
        :class:`~repro.heuristics.padded.QuantileHeftScheduler`'s
        default); ignored by every other selection.
    seed:
        Entropy for the ``random`` ranking's deterministic priority
        stream; ignored by every other ranking.

    Raises
    ------
    ValueError
        On any combination that cannot produce a valid schedule —
        a non-monotone ranking under the ``static`` order, or a
        selection that needs ranking context the ranking does not
        produce (``pinned`` needs ``cp``, ``oct`` needs ``oct``).
    """

    ranking: str = "upward"
    selection: str = "eft"
    insertion: str = "insertion"
    order: str = "static"
    q: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        for axis, value, options in (
            ("ranking", self.ranking, RANKINGS),
            ("selection", self.selection, SELECTIONS),
            ("insertion", self.insertion, INSERTIONS),
            ("order", self.order, ORDERS),
        ):
            if value not in options:
                raise ValueError(
                    f"unknown {axis} {value!r}; choose from {options}"
                )
        if self.order == "static" and self.ranking not in MONOTONE_RANKINGS:
            raise ValueError(
                f"ranking {self.ranking!r} is not monotone along edges, so "
                f"its static sort is not a topological order; use the "
                f"'ready' or greedy orders (monotone: "
                f"{tuple(sorted(MONOTONE_RANKINGS))})"
            )
        if self.selection == "pinned" and self.ranking != "cp":
            raise ValueError(
                "'pinned' selection needs the critical-path context only "
                "the 'cp' ranking produces"
            )
        if self.selection == "oct" and self.ranking != "oct":
            raise ValueError(
                "'oct' selection needs the optimistic cost table only "
                "the 'oct' ranking produces"
            )
        if not (0.0 <= self.q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {self.q}")

    @property
    def spec(self) -> str:
        """Canonical ``ranking/selection/insertion/order`` string."""
        extra = ""
        if self.selection == "padded":
            extra = f"@q{self.q:g}"
        if self.ranking == "random" and self.seed:
            extra += f"@s{self.seed}"
        return (
            f"{self.ranking}/{self.selection}{extra}"
            f"/{self.insertion}/{self.order}"
        )


@dataclass(frozen=True)
class RankContext:
    """The evaluated ranking axis: priorities plus selection context.

    ``priorities`` always holds the per-task priority vector; the other
    fields are only populated by the rankings that produce them
    (``oct_table`` by ``oct``, the critical-path fields by ``cp``).
    """

    priorities: np.ndarray
    oct_table: np.ndarray | None = None
    cp_tasks: frozenset[int] = field(default_factory=frozenset)
    cp_proc: int = -1


def rank_context(
    components: Components, problem: SchedulingProblem
) -> RankContext:
    """Evaluate the ranking axis of *components* for *problem*."""
    ranking = components.ranking
    if ranking == "upward":
        return RankContext(priorities=upward_ranks(problem))
    if ranking == "blevel":
        return RankContext(priorities=static_blevels(problem))
    if ranking == "cp":
        prio = upward_ranks(problem) + downward_ranks(problem)
        cp = set(critical_path_tasks(problem))
        cp_idx = np.asarray(sorted(cp), dtype=np.int64)
        cp_proc = int(np.argmin(problem.expected_times[cp_idx].sum(axis=0)))
        return RankContext(
            priorities=prio, cp_tasks=frozenset(cp), cp_proc=cp_proc
        )
    if ranking == "oct":
        table = optimistic_cost_table(problem)
        return RankContext(priorities=table.mean(axis=1), oct_table=table)
    if ranking == "random":
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=components.seed, spawn_key=(problem.n,)
            )
        )
        return RankContext(
            priorities=rng.permutation(problem.n).astype(np.float64)
        )
    raise AssertionError(f"unhandled ranking {ranking!r}")  # pragma: no cover
