"""Discrete-event execution simulator.

An independent implementation of the paper's execution semantics ("each
task starts to execute as soon as it becomes ready", Claim 3.2) used to
cross-validate the critical-path schedule evaluator: both must produce
identical start/finish times and makespans for any schedule and any
duration realization.  It also produces Gantt-style traces for the
examples.
"""

from repro.sim.dynamic import (
    DynamicReport,
    DynamicRun,
    assess_dynamic,
    simulate_dynamic,
    simulate_semi_dynamic,
)
from repro.sim.eventsim import GanttEntry, SimulationResult, simulate

__all__ = [
    "simulate",
    "SimulationResult",
    "GanttEntry",
    "simulate_dynamic",
    "simulate_semi_dynamic",
    "DynamicRun",
    "assess_dynamic",
    "DynamicReport",
]
