"""Heap-based discrete-event simulation of schedule execution.

Semantics (paper Sec. 3.1 and Claim 3.2):

* every processor executes its assigned tasks strictly in schedule order;
* a task may start once (a) its processor has finished the preceding task
  in the processor's order, and (b) every task-graph predecessor has
  finished *and its data has arrived* (finish + communication time, zero
  for same-processor transfers);
* communications are contention-free and overlap with computation.

The implementation is deliberately different from
:mod:`repro.schedule.evaluation` (event heap vs. topological array passes)
so the two serve as mutual correctness oracles in the property tests.

The event loop is *fault-aware*: an optional execution environment (see
:class:`repro.faults.environment.FaultEnvironment`) supplies per-processor
speed timelines and link-degradation factors.  With an environment, task
starts stall through outage windows, running work is suspended (progress
kept) and resumed at recovery, slowdown windows stretch executions, and
communication times are scaled by the factor active when the transfer
starts.  A permanent processor failure yields infinite finish times that
propagate to an infinite makespan — never a deadlock.  Without an
environment (the default) the loop is byte-for-byte the paper's
semantics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.schedule.schedule import Schedule

__all__ = ["GanttEntry", "SimulationResult", "simulate"]


@dataclass(frozen=True)
class GanttEntry:
    """One bar of the Gantt chart: a task's placement in the execution."""

    task: int
    processor: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Execution time of the task in this realization."""
        return self.finish - self.start


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated execution of a schedule."""

    makespan: float
    start_times: np.ndarray
    finish_times: np.ndarray

    def busy_times(self, schedule: Schedule) -> np.ndarray:
        """``(m,)`` total realized compute time on each processor.

        The realized analogue of the expected per-processor loads that
        :meth:`repro.energy.power.PowerModel.energy_of` prices — lets a
        simulated (possibly faulty) run be priced at what actually
        executed instead of what was planned.  Tasks that never finished
        (permanent failure) contribute ``inf`` to their processor.
        """
        busy = np.zeros(schedule.m, dtype=np.float64)
        np.add.at(busy, schedule.proc_of, self.finish_times - self.start_times)
        return busy

    def gantt(self, schedule: Schedule) -> list[GanttEntry]:
        """Gantt entries sorted by (processor, start time)."""
        entries = [
            GanttEntry(
                task=v,
                processor=int(schedule.proc_of[v]),
                start=float(self.start_times[v]),
                finish=float(self.finish_times[v]),
            )
            for v in range(schedule.n)
        ]
        entries.sort(key=lambda e: (e.processor, e.start, e.task))
        return entries


def simulate(
    schedule: Schedule,
    durations: np.ndarray | None = None,
    *,
    env=None,
) -> SimulationResult:
    """Execute *schedule* under *durations* (default: expected durations).

    Parameters
    ----------
    schedule:
        The schedule to execute.
    durations:
        ``(n,)`` actual execution time of every task on its assigned
        processor; defaults to the expected durations.
    env:
        Optional fault environment (duck-typed:
        ``earliest_start(p, t)``, ``finish_time(p, t, work)``,
        ``comm_factor(src, dst, t)`` — see
        :class:`repro.faults.environment.FaultEnvironment`).  Tasks on a
        processor in outage stall until recovery; permanent failures
        produce infinite finish times and an infinite makespan.

    Returns
    -------
    SimulationResult
        Start/finish times of all tasks and the realized makespan.
    """
    if durations is None:
        durations = schedule.expected_durations()
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (schedule.n,):
        raise ValueError(
            f"durations must have shape ({schedule.n},), got {durations.shape}"
        )

    problem = schedule.problem
    graph = problem.graph
    platform = problem.platform
    proc_of = schedule.proc_of
    n, m = schedule.n, schedule.m

    remaining_preds = graph.in_degree().astype(np.int64).copy()
    ready_time = np.zeros(n, dtype=np.float64)  # max over finished preds of arrival
    start = np.full(n, np.nan, dtype=np.float64)
    finish = np.full(n, np.nan, dtype=np.float64)

    next_slot = [0] * m  # index into each processor's order
    proc_free = [0.0] * m

    # Event heap of (finish_time, task). Ties broken by task id for
    # determinism; tie order cannot affect results because all state
    # updates are max-accumulations.
    events: list[tuple[float, int]] = []
    started = np.zeros(n, dtype=bool)

    def try_start(p: int) -> None:
        """Start the next task on processor *p* if its inputs are satisfied."""
        k = next_slot[p]
        order = schedule.proc_orders[p]
        if k >= len(order):
            return
        v = int(order[k])
        if remaining_preds[v] > 0 or started[v]:
            return
        t0 = max(proc_free[p], ready_time[v])
        if env is None:
            f = t0 + durations[v]
        else:
            t0 = env.earliest_start(p, t0)
            f = env.finish_time(p, t0, float(durations[v]))
        start[v] = t0
        finish[v] = f
        started[v] = True
        proc_free[p] = finish[v]
        next_slot[p] += 1
        heapq.heappush(events, (finish[v], v))

    for p in range(m):
        try_start(p)

    completed = 0
    while events:
        t, v = heapq.heappop(events)
        completed += 1
        for e in graph.successor_edge_indices(v):
            w = int(graph.edge_dst[e])
            comm = platform.comm_time(
                float(graph.edge_data[e]), int(proc_of[v]), int(proc_of[w])
            )
            if env is not None and comm > 0.0:
                comm *= env.comm_factor(int(proc_of[v]), int(proc_of[w]), t)
            arrival = t + comm
            if arrival > ready_time[w]:
                ready_time[w] = arrival
            remaining_preds[w] -= 1
        # A completion can unblock the head task of any processor (the
        # successor may sit elsewhere), and frees v's own processor.
        for p in range(m):
            try_start(p)

    if completed != n:  # pragma: no cover - guarded by Schedule validation
        raise RuntimeError(
            "simulation deadlocked: schedule inconsistent with precedence"
        )

    start.setflags(write=False)
    finish.setflags(write=False)
    return SimulationResult(
        makespan=float(finish.max()) if n else 0.0,
        start_times=start,
        finish_times=finish,
    )
