"""Dynamic (online) scheduling baseline.

The paper's introduction names the main alternative to robust *static*
scheduling: "dynamic scheduling algorithm assigns each ready task
according to the current status of the resource environment aiming to
avoid the inaccuracy of execution time estimation".  This module
implements that baseline so the trade-off can be measured:

* tasks are prioritised by HEFT's upward rank (expected times — the only
  timing information available before execution);
* *at runtime*, the moment a task becomes ready it is assigned to the
  processor minimizing its expected finish time given the realized state
  so far (actual predecessor finish times, actual processor queues);
* the task's realized duration is revealed only when it completes.

Because decisions depend on the realization, the "schedule" differs per
run; robustness is measured on the makespan sample exactly as for static
schedules (Defs. 3.6/3.7, with ``M_0`` the makespan of the run fed the
expected durations).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.heuristics.heft import upward_ranks
from repro.robustness.metrics import (
    mean_relative_tardiness,
    miss_rate,
    robustness_miss_rate,
    robustness_tardiness,
)
from repro.utils.rng import as_generator

__all__ = [
    "DynamicRun",
    "simulate_dynamic",
    "simulate_semi_dynamic",
    "DynamicReport",
    "assess_dynamic",
]


@dataclass(frozen=True)
class DynamicRun:
    """Outcome of one online-scheduled execution."""

    makespan: float
    proc_of: np.ndarray
    start_times: np.ndarray
    finish_times: np.ndarray


def simulate_dynamic(
    problem: SchedulingProblem,
    durations: np.ndarray,
    priorities: np.ndarray | None = None,
) -> DynamicRun:
    """Execute *problem* online under one realization of durations.

    Parameters
    ----------
    problem:
        The instance; expected times drive the placement decisions.
    durations:
        ``(n, m)`` realized execution times (only the chosen processor's
        entry is consumed per task) **or** ``(n,)`` per-task durations
        applying to whichever processor is chosen.
    priorities:
        Ready-queue priority per task (larger first); defaults to HEFT
        upward ranks.

    Notes
    -----
    Ready tasks are dispatched immediately (eager MCT policy): on
    becoming ready, a task goes to the processor minimizing
    ``max(processor free time, data arrival) + expected time``.  Eagerness
    means no intentional idling — the classic just-in-time list policy.
    """
    n, m = problem.n, problem.m
    durations = np.asarray(durations, dtype=np.float64)
    per_proc = durations.ndim == 2
    if per_proc and durations.shape != (n, m):
        raise ValueError(f"durations must be (n={n}, m={m}) or (n,), got {durations.shape}")
    if not per_proc and durations.shape != (n,):
        raise ValueError(f"durations must be (n={n}, m={m}) or (n,), got {durations.shape}")

    graph = problem.graph
    platform = problem.platform
    expected = problem.expected_times
    if priorities is None:
        priorities = upward_ranks(problem)

    remaining = graph.in_degree().astype(np.int64).copy()
    finish = np.full(n, np.nan, dtype=np.float64)
    start = np.full(n, np.nan, dtype=np.float64)
    proc_of = np.full(n, -1, dtype=np.int64)
    proc_free = np.zeros(m, dtype=np.float64)

    def dispatch(v: int, now: float) -> None:
        """Assign ready task *v* using expected times and realized state."""
        best_p, best_est, best_eft = -1, 0.0, np.inf
        for p in range(m):
            arrival = now
            for e in graph.predecessor_edge_indices(v):
                u = int(graph.edge_src[e])
                a = finish[u] + platform.comm_time(
                    float(graph.edge_data[e]), int(proc_of[u]), p
                )
                if a > arrival:
                    arrival = a
            est = max(float(proc_free[p]), arrival)
            eft = est + float(expected[v, p])
            if eft < best_eft:
                best_p, best_est, best_eft = p, est, eft
        dur = float(durations[v, best_p]) if per_proc else float(durations[v])
        start[v] = best_est
        finish[v] = best_est + dur
        proc_of[v] = best_p
        proc_free[best_p] = finish[v]
        heapq.heappush(events, (float(finish[v]), v))

    events: list[tuple[float, int]] = []
    # Entry tasks become ready at time 0, highest priority first.
    for v in sorted(
        (int(v) for v in graph.entry_nodes), key=lambda v: -priorities[v]
    ):
        dispatch(v, 0.0)

    completed = 0
    while events:
        t, v = heapq.heappop(events)
        completed += 1
        newly_ready = []
        for w in graph.successors(v):
            w = int(w)
            remaining[w] -= 1
            if remaining[w] == 0:
                newly_ready.append(w)
        for w in sorted(newly_ready, key=lambda w: -priorities[w]):
            dispatch(w, t)

    if completed != n:  # pragma: no cover - graph validated acyclic
        raise RuntimeError("dynamic simulation failed to complete all tasks")
    start.setflags(write=False)
    finish.setflags(write=False)
    proc_of.setflags(write=False)
    return DynamicRun(
        makespan=float(finish.max()),
        proc_of=proc_of,
        start_times=start,
        finish_times=finish,
    )


def simulate_semi_dynamic(
    problem: SchedulingProblem,
    proc_of: np.ndarray,
    durations: np.ndarray,
    priorities: np.ndarray | None = None,
) -> DynamicRun:
    """Partially-online execution: fixed assignment, runtime ordering.

    The middle ground between a fully static schedule and the fully
    dynamic policy — the approach of the paper's related work (Moukrim et
    al. [20, 21]): the task→processor *assignment* is fixed offline, but
    each processor orders its tasks at runtime — whenever it goes idle it
    commits to the dependency-satisfied assigned task that can start
    earliest (ties to the higher upward-rank priority).  Runtime
    reordering within a processor absorbs disturbances that a frozen
    sequence cannot.

    Parameters
    ----------
    problem:
        The instance.
    proc_of:
        ``(n,)`` offline processor assignment.
    durations:
        ``(n,)`` realized duration of each task on its assigned processor.
    priorities:
        Tie-breaking priority (larger first); defaults to upward ranks.
    """
    n, m = problem.n, problem.m
    proc_of = np.asarray(proc_of, dtype=np.int64)
    if proc_of.shape != (n,):
        raise ValueError(f"proc_of must have shape ({n},), got {proc_of.shape}")
    if np.any((proc_of < 0) | (proc_of >= m)):
        raise ValueError("processor index out of range in proc_of")
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (n,):
        raise ValueError(f"durations must have shape ({n},), got {durations.shape}")

    graph = problem.graph
    platform = problem.platform
    if priorities is None:
        priorities = upward_ranks(problem)

    remaining = graph.in_degree().astype(np.int64).copy()
    ready_time = np.zeros(n, dtype=np.float64)  # data-arrival bound per task
    start = np.full(n, np.nan, dtype=np.float64)
    finish = np.full(n, np.nan, dtype=np.float64)
    started = np.zeros(n, dtype=bool)
    proc_free = np.zeros(m, dtype=np.float64)
    # Per-processor pool of dependency-satisfied, not-yet-started tasks.
    pools: list[set[int]] = [set() for _ in range(m)]
    for v in np.flatnonzero(remaining == 0):
        pools[int(proc_of[v])].add(int(v))

    events: list[tuple[float, int]] = []

    def try_start(p: int) -> None:
        """Start the best startable task of processor *p*, if any."""
        candidates = [v for v in pools[p] if not started[v]]
        if not candidates:
            return
        # Earliest feasible start per candidate; prefer the one that can
        # start soonest, then the higher priority (runtime list policy).
        best_v, best_t = -1, np.inf
        for v in sorted(candidates, key=lambda v: -priorities[v]):
            t0 = max(float(proc_free[p]), float(ready_time[v]))
            if t0 < best_t - 1e-15:
                best_v, best_t = v, t0
        start[best_v] = best_t
        finish[best_v] = best_t + durations[best_v]
        started[best_v] = True
        pools[p].discard(best_v)
        proc_free[p] = finish[best_v]
        heapq.heappush(events, (float(finish[best_v]), best_v))

    for p in range(m):
        try_start(p)

    completed = 0
    while events:
        t, v = heapq.heappop(events)
        completed += 1
        for e in graph.successor_edge_indices(v):
            w = int(graph.edge_dst[e])
            arrival = t + platform.comm_time(
                float(graph.edge_data[e]), int(proc_of[v]), int(proc_of[w])
            )
            if arrival > ready_time[w]:
                ready_time[w] = arrival
            remaining[w] -= 1
            if remaining[w] == 0:
                pools[int(proc_of[w])].add(w)
        for p in range(m):
            try_start(p)

    if completed != n:  # pragma: no cover - graph validated acyclic
        raise RuntimeError("semi-dynamic simulation deadlocked")
    start.setflags(write=False)
    finish.setflags(write=False)
    return DynamicRun(
        makespan=float(finish.max()),
        proc_of=proc_of,
        start_times=start,
        finish_times=finish,
    )


@dataclass(frozen=True)
class DynamicReport:
    """Monte-Carlo robustness of the online policy (mirrors RobustnessReport)."""

    expected_makespan: float
    realized_makespans: np.ndarray
    mean_makespan: float
    mean_tardiness: float
    miss_rate: float
    r1: float
    r2: float


def assess_dynamic(
    problem: SchedulingProblem,
    n_realizations: int = 1000,
    rng: np.random.Generator | int | None = None,
) -> DynamicReport:
    """Monte-Carlo evaluation of the online policy on *problem*.

    ``M_0`` is the makespan of the run executed with the expected
    durations (the promise a user would be given up front); realizations
    draw the full ``(n, m)`` duration matrix so the online policy's
    processor choice always sees a consistent world.
    """
    if n_realizations < 1:
        raise ValueError(f"n_realizations must be >= 1, got {n_realizations}")
    gen = as_generator(rng)
    priorities = upward_ranks(problem)

    m0 = simulate_dynamic(problem, problem.expected_times, priorities).makespan

    unc = problem.uncertainty
    low = unc.bcet
    high = (2.0 * unc.ul - 1.0) * unc.bcet
    makespans = np.empty(n_realizations, dtype=np.float64)
    for r in range(n_realizations):
        durations = gen.uniform(low, high)
        makespans[r] = simulate_dynamic(problem, durations, priorities).makespan
    makespans.setflags(write=False)

    return DynamicReport(
        expected_makespan=m0,
        realized_makespans=makespans,
        mean_makespan=float(makespans.mean()),
        mean_tardiness=mean_relative_tardiness(makespans, m0),
        miss_rate=miss_rate(makespans, m0),
        r1=robustness_tardiness(makespans, m0),
        r2=robustness_miss_rate(makespans, m0),
    )
