"""repro — robust bi-objective DAG scheduling for heterogeneous systems.

A from-scratch reproduction of Shi, Jeannot & Dongarra,
*"Robust task scheduling in non-deterministic heterogeneous computing
systems"* (IEEE CLUSTER 2006): schedule DAG applications onto
heterogeneous processors to simultaneously minimize makespan and maximize
robustness to task-duration uncertainty, via an ε-constraint genetic
algorithm that maximizes average slack subject to a HEFT-relative makespan
bound.

Quickstart::

    import repro

    problem = repro.SchedulingProblem.random(m=4, rng=42)
    result = repro.RobustScheduler(epsilon=1.3, rng=7).solve(problem)
    report = repro.assess_robustness(result.schedule, 1000, rng=11)
    print(report.expected_makespan, report.r1, report.r2)

Layers (see DESIGN.md): :mod:`repro.graph` (DAGs), :mod:`repro.platform`
(machines + uncertainty), :mod:`repro.schedule` (disjunctive-graph
evaluation), :mod:`repro.heuristics` (HEFT & friends), :mod:`repro.ga`
(the genetic algorithm), :mod:`repro.robustness` (Monte-Carlo metrics),
:mod:`repro.moop` (Pareto/NSGA-II extension), :mod:`repro.experiments`
(per-figure drivers), :mod:`repro.sim` (event-driven oracle),
:mod:`repro.faults` (fault injection & reactive policies),
:mod:`repro.energy` (energy pricing, DVFS and k-fault replication),
:mod:`repro.algebra` (composable list-scheduling components).
"""

from repro.algebra import (
    CATALOGUE,
    Components,
    ComponentScheduler,
    component_scheduler,
)
from repro.core.problem import SchedulingProblem
from repro.core.robust import RobustResult, RobustScheduler
from repro.energy import (
    EnergyBreakdown,
    EnergyConstraintFitness,
    EnergyResult,
    EnergyScheduler,
    PowerModel,
    ReplicationPlan,
    SurvivalReport,
    build_replication_plan,
    slowest_feasible_freqs,
    verify_survival,
)
from repro.faults import (
    BUILTIN_SCENARIOS,
    FaultAssessment,
    FaultScenario,
    LinkFault,
    OutageFault,
    SlowdownFault,
    TailFault,
    assess_robustness_faulty,
)
from repro.ga.engine import GAParams, GeneticScheduler
from repro.ga.fitness import (
    EpsilonConstraintFitness,
    MakespanFitness,
    SlackFitness,
)
from repro.graph.generator import DagParams, random_dag
from repro.graph.taskgraph import TaskGraph
from repro.heuristics.annealing import AnnealingParams, AnnealingScheduler
from repro.heuristics.cpop import CpopScheduler
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.padded import QuantileHeftScheduler
from repro.heuristics.peft import PeftScheduler
from repro.heuristics.random_sched import RandomScheduler
from repro.platform.etc import EtcParams, generate_etc
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams
from repro.robustness.analysis import bootstrap_robustness, convergence_profile
from repro.robustness.clark import analytic_robustness, clark_makespan
from repro.robustness.montecarlo import RobustnessReport, assess_robustness
from repro.robustness.performance import overall_performance
from repro.schedule.evaluation import (
    ScheduleEvaluation,
    batch_makespans,
    evaluate,
    expected_makespan,
)
from repro.schedule.gantt import render_gantt
from repro.schedule.schedule import Schedule

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # problem construction
    "TaskGraph",
    "DagParams",
    "random_dag",
    "Platform",
    "EtcParams",
    "generate_etc",
    "UncertaintyModel",
    "UncertaintyParams",
    "SchedulingProblem",
    # schedules and evaluation
    "Schedule",
    "ScheduleEvaluation",
    "evaluate",
    "expected_makespan",
    "batch_makespans",
    # schedulers
    "HeftScheduler",
    "CpopScheduler",
    "MinMinScheduler",
    "PeftScheduler",
    "QuantileHeftScheduler",
    "AnnealingScheduler",
    "AnnealingParams",
    "RandomScheduler",
    "Components",
    "ComponentScheduler",
    "CATALOGUE",
    "component_scheduler",
    "GeneticScheduler",
    "GAParams",
    "MakespanFitness",
    "SlackFitness",
    "EpsilonConstraintFitness",
    "RobustScheduler",
    "RobustResult",
    # robustness
    "RobustnessReport",
    "assess_robustness",
    "overall_performance",
    "bootstrap_robustness",
    "convergence_profile",
    "clark_makespan",
    "analytic_robustness",
    # fault injection
    "FaultScenario",
    "SlowdownFault",
    "OutageFault",
    "LinkFault",
    "TailFault",
    "FaultAssessment",
    "assess_robustness_faulty",
    "BUILTIN_SCENARIOS",
    # energy and replication
    "PowerModel",
    "EnergyBreakdown",
    "slowest_feasible_freqs",
    "EnergyConstraintFitness",
    "EnergyScheduler",
    "EnergyResult",
    "ReplicationPlan",
    "SurvivalReport",
    "build_replication_plan",
    "verify_survival",
    # visualization
    "render_gantt",
]
