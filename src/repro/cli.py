"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro fig4 --scale smoke
    python -m repro fig2 --scale medium --uls 2 8
    python -m repro fig5 --scale paper
    python -m repro solve --seed 42 --epsilon 1.3   # one-off solve demo
    python -m repro fig4 --scale smoke --trace run.jsonl
    python -m repro trace-summary run.jsonl         # inspect the trace
    python -m repro serve --port 8642 --workers 2   # scheduler service
    python -m repro serve --port 8642 --shards 4    # sharded deployment
    python -m repro submit --port 8642 --solver ga --epsilon 1.2
    python -m repro faults --scenario proc-failure  # fault injection
    python -m repro stream --load 1.5 --policy prune  # streaming workload
    python -m repro stream --grid --workers 4       # policy x load curves
    python -m repro energy --epsilons 1.0 1.3 1.6   # energy frontier study
    python -m repro energy --k 2 --workers 4        # 2-fault replication
    python -m repro algo-grid --rank-by r1          # scheduler catalogue sweep

or via the installed entry point ``repro-sched``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Sequence

from repro.experiments.config import PAPER_ULS, SCALES, ExperimentConfig
from repro.service.protocol import SOLVERS

__all__ = ["main", "build_parser"]

# Graph families of the algo-grid sweep.  Kept as a literal so parser
# construction stays import-light; pinned to
# repro.experiments.algo_grid.FAMILIES by tests/unit/test_algebra.py.
ALGO_FAMILIES = ("layered", "gauss", "fft", "forkjoin")


def _positive_int(text: str) -> int:
    """argparse type: strictly positive integer (clear error, no hangs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL observability trace (spans, events, metrics) "
        "of the whole run to PATH; inspect with 'repro trace-summary'",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Reproduce 'Robust task scheduling in non-deterministic "
            "heterogeneous computing systems' (CLUSTER 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scale",
            choices=sorted(SCALES),
            default="medium",
            help="experiment scale preset (default: medium)",
        )
        p.add_argument(
            "--seed", type=int, default=None, help="root seed (default: config default)"
        )
        p.add_argument(
            "--uls",
            type=float,
            nargs="+",
            default=list(PAPER_ULS),
            help="uncertainty levels to sweep (default: 2 4 6 8)",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress progress output"
        )
        p.add_argument(
            "--jobs",
            type=_positive_int,
            default=1,
            help="worker processes for the (UL, eps, instance) grid "
            "(figs 4-8; results are identical for any value)",
        )
        p.add_argument(
            "--workers",
            type=_positive_int,
            default=None,
            help="cluster worker processes (figs 2-8; overrides --jobs; "
            "crashed or hung workers are detected and their cells retried)",
        )
        p.add_argument(
            "--checkpoint",
            default=None,
            help="JSONL journal of finished cells for crash recovery "
            "(figs 2-8; default with --resume: "
            "results/checkpoints/<command>-<scale>-seed<seed>.jsonl)",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="skip cells already journaled in the checkpoint; restored "
            "cells are bit-identical to recomputed ones (figs 2-8)",
        )
        p.add_argument(
            "--metrics-json",
            default=None,
            help="deprecated: dump the cluster run metrics to this JSON "
            "file (figs 2-8); prefer --trace, which captures the same "
            "counters as gauges plus spans and lifecycle events",
        )
        _trace_arg(p)

    for fig, help_text in [
        ("fig2", "GA evolution, minimizing makespan (Sec. 5.1)"),
        ("fig3", "GA evolution, maximizing slack (Sec. 5.1)"),
        ("fig4", "improvement over HEFT at eps = 1.0 (Sec. 5.2)"),
        ("fig5", "R1 improvement vs eps (Sec. 5.2)"),
        ("fig6", "R2 improvement vs eps (Sec. 5.2)"),
        ("fig7", "best eps for overall performance, R1 (Sec. 5.2)"),
        ("fig8", "best eps for overall performance, R2 (Sec. 5.2)"),
    ]:
        p = sub.add_parser(fig, help=help_text)
        common(p)

    def instance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42, help="instance seed")
        p.add_argument(
            "--tasks", type=_positive_int, default=50, help="number of tasks"
        )
        p.add_argument(
            "--procs", type=_positive_int, default=4, help="number of processors"
        )
        p.add_argument(
            "--ul", type=float, default=2.0, help="mean uncertainty level"
        )
        _trace_arg(p)

    solve = sub.add_parser("solve", help="solve one random instance end-to-end")
    instance_args(solve)
    solve.add_argument("--epsilon", type=float, default=1.0, help="eps budget")
    solve.add_argument(
        "--realizations",
        type=_positive_int,
        default=500,
        help="Monte-Carlo realizations",
    )

    compare = sub.add_parser(
        "compare", help="run every scheduler on one instance and compare"
    )
    instance_args(compare)
    compare.add_argument(
        "--realizations",
        type=_positive_int,
        default=500,
        help="Monte-Carlo realizations",
    )

    gantt = sub.add_parser("gantt", help="render a schedule as an ASCII Gantt chart")
    instance_args(gantt)
    gantt.add_argument(
        "--scheduler",
        choices=("heft", "cpop", "peft", "minmin", "robust"),
        default="robust",
        help="which scheduler's result to draw",
    )
    gantt.add_argument("--epsilon", type=float, default=1.2, help="robust GA budget")
    gantt.add_argument("--width", type=int, default=78, help="chart width")

    pareto = sub.add_parser(
        "pareto", help="approximate the makespan/slack Pareto front with NSGA-II"
    )
    instance_args(pareto)
    pareto.add_argument(
        "--iterations", type=int, default=150, help="NSGA-II generations"
    )

    export = sub.add_parser(
        "export", help="generate an instance and write it (and its HEFT schedule)"
    )
    instance_args(export)
    export.add_argument(
        "--out", default="instance.json", help="output problem JSON path"
    )
    export.add_argument(
        "--dot", default=None, help="also write the task graph as DOT here"
    )

    zoo = sub.add_parser(
        "zoo", help="compare the whole scheduler zoo over the instance pool"
    )
    common(zoo)
    zoo.add_argument(
        "--zoo-ul", type=float, default=4.0, help="uncertainty level for the zoo"
    )
    zoo.add_argument(
        "--no-dynamic",
        action="store_true",
        help="skip the (slow) online-MCT dynamic baseline",
    )

    sens = sub.add_parser(
        "sensitivity",
        help="sweep a generator parameter and report the eps=1.0 gain",
    )
    common(sens)
    sens.add_argument(
        "--parameter", choices=("ccr", "alpha", "m"), default="ccr"
    )
    sens.add_argument(
        "--values", type=float, nargs="+", default=[0.1, 0.5, 1.0]
    )
    sens.add_argument(
        "--sens-ul", type=float, default=4.0, help="fixed uncertainty level"
    )

    faults = sub.add_parser(
        "faults",
        help="assess schedulers under injected fault scenarios "
        "(see docs/faults.md)",
    )
    instance_args(faults)
    faults.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME_OR_PATH",
        help="builtin scenario name or a JSON/YAML spec path; repeatable "
        "(default: every builtin; see --list-scenarios)",
    )
    faults.add_argument(
        "--epsilon", type=float, default=1.4, help="robust GA eps budget"
    )
    faults.add_argument(
        "--realizations",
        type=_positive_int,
        default=200,
        help="Monte-Carlo realizations per cell (default: 200)",
    )
    faults.add_argument(
        "--instances",
        type=_positive_int,
        default=1,
        help="instances to average over (default: 1)",
    )
    faults.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="cluster worker processes for the instance fan-out "
        "(results are identical for any value)",
    )
    faults.add_argument(
        "--policies",
        nargs="+",
        choices=("rerun-static", "repair", "dynamic"),
        default=["rerun-static", "repair", "dynamic"],
        help="reactive policies to grid over (default: all three)",
    )
    faults.add_argument(
        "--ga-iterations",
        type=_positive_int,
        default=80,
        help="robust GA generations (default: 80)",
    )
    faults.add_argument(
        "--ga-population",
        type=_positive_int,
        default=20,
        help="robust GA population size (default: 20)",
    )
    faults.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the builtin scenario library and exit",
    )
    faults.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    energy = sub.add_parser(
        "energy",
        help="energy/replication frontier study: HEFT vs robust GA vs "
        "energy GA (see docs/energy.md)",
    )
    instance_args(energy)
    energy.add_argument(
        "--epsilons",
        type=float,
        nargs="+",
        default=[1.0, 1.3, 1.6],
        help="makespan budgets as multiples of M_HEFT (default: 1.0 1.3 1.6)",
    )
    energy.add_argument(
        "--slack-ratio",
        type=float,
        default=0.5,
        help="reliability floor R as a fraction of HEFT's average slack "
        "(default: 0.5; must be <= 1 so HEFT keeps every cell feasible)",
    )
    energy.add_argument(
        "--power",
        choices=("default", "uniform", "null"),
        default="default",
        help="power model: 'default' heterogeneous with DVFS levels, "
        "'uniform' identical processors, 'null' zero power (degenerates "
        "to the paper's slack GA; default: default)",
    )
    energy.add_argument(
        "--k",
        type=int,
        default=1,
        help="permanent processor failures the replication plan must "
        "tolerate (0 skips replication; default: 1)",
    )
    energy.add_argument(
        "--deadline-factor",
        type=float,
        default=4.0,
        help="replication deadline as a multiple of M_HEFT (default: 4)",
    )
    energy.add_argument(
        "--realizations",
        type=_positive_int,
        default=200,
        help="Monte-Carlo realizations per cell (default: 200)",
    )
    energy.add_argument(
        "--replication-realizations",
        type=_positive_int,
        default=10,
        help="realizations per failure subset in survival verification "
        "(default: 10)",
    )
    energy.add_argument(
        "--instances",
        type=_positive_int,
        default=1,
        help="instances to average over (default: 1)",
    )
    energy.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="cluster worker processes for the instance fan-out "
        "(results are identical for any value)",
    )
    energy.add_argument(
        "--ga-iterations",
        type=_positive_int,
        default=80,
        help="GA generations (default: 80)",
    )
    energy.add_argument(
        "--ga-population",
        type=_positive_int,
        default=20,
        help="GA population size (default: 20)",
    )
    energy.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    algo = sub.add_parser(
        "algo-grid",
        help="sweep the component-algebra scheduler catalogue across "
        "graph families (see docs/algorithms.md)",
    )
    instance_args(algo)
    algo.add_argument(
        "--combos",
        nargs="+",
        default=None,
        metavar="NAME",
        help="catalogue combinations to sweep (default: all; "
        "see --list-combos)",
    )
    algo.add_argument(
        "--families",
        nargs="+",
        default=list(ALGO_FAMILIES),
        choices=ALGO_FAMILIES,
        help="graph families to draw instances from (default: all)",
    )
    algo.add_argument(
        "--instances",
        type=_positive_int,
        default=3,
        help="instances per family (default: 3)",
    )
    algo.add_argument(
        "--realizations",
        type=_positive_int,
        default=200,
        help="Monte-Carlo realizations per cell (default: 200)",
    )
    algo.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes (default: in-process; results are "
        "bit-identical for any value)",
    )
    algo.add_argument(
        "--rank-by",
        choices=("makespan", "r1", "r2"),
        default="makespan",
        help="ranking criterion for the summary table (default: makespan)",
    )
    algo.add_argument(
        "--list-combos",
        action="store_true",
        help="print the scheduler catalogue and exit",
    )
    algo.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    stream = sub.add_parser(
        "stream",
        help="run a streaming oversubscribed workload with shedding "
        "policies (see docs/stream.md)",
    )
    stream.add_argument("--seed", type=int, default=0, help="workload seed")
    stream.add_argument(
        "--stream-jobs",
        type=_positive_int,
        default=40,
        help="DAG jobs in the arrival stream (default: 40)",
    )
    stream.add_argument(
        "--tasks", type=_positive_int, default=24, help="tasks per job"
    )
    stream.add_argument(
        "--procs",
        type=_positive_int,
        default=4,
        help="shared-platform processors",
    )
    stream.add_argument(
        "--ul", type=float, default=2.0, help="mean uncertainty level per job"
    )
    stream.add_argument(
        "--load",
        type=float,
        default=1.5,
        help="offered load relative to capacity; >1 oversubscribes "
        "(default: 1.5)",
    )
    stream.add_argument(
        "--arrival",
        choices=("poisson", "mmpp"),
        default="poisson",
        help="arrival process (mmpp = two-state bursty)",
    )
    stream.add_argument(
        "--burstiness",
        type=float,
        default=4.0,
        help="mmpp fast/slow rate ratio (default: 4)",
    )
    stream.add_argument(
        "--deadline-factor",
        type=float,
        default=3.0,
        help="deadline = arrival + factor x isolated expected makespan",
    )
    stream.add_argument(
        "--policy",
        choices=("none", "prune", "drop"),
        default="none",
        help="shedding policy for a single run (default: none)",
    )
    stream.add_argument(
        "--grid",
        action="store_true",
        help="sweep the policy x load grid through repro.cluster instead "
        "of one run (see --loads/--policies/--workers)",
    )
    stream.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="grid load levels (default: 0.5 1.0 1.5 2.0)",
    )
    stream.add_argument(
        "--policies",
        nargs="+",
        choices=("none", "prune", "drop"),
        default=None,
        help="grid policies (default: all three)",
    )
    stream.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="cluster worker processes for the grid fan-out "
        "(results are identical for any value)",
    )
    stream.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    _trace_arg(stream)

    serve = sub.add_parser(
        "serve", help="run the scheduler service daemon (see docs/service.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 picks a free one; it is announced on stderr)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="GA executor slots (>1 uses the repro.cluster process pool)",
    )
    serve.add_argument(
        "--ga-queue-limit",
        type=int,
        default=8,
        help="GA requests allowed to wait; the excess is shed to the "
        "degraded heuristic tier (default: 8)",
    )
    serve.add_argument(
        "--admission",
        choices=("tiered", "stream"),
        default="tiered",
        help="GA admission mode: 'tiered' sheds on the EWMA wait point "
        "estimate, 'stream' on the probabilistic on-time-start test "
        "(default: tiered; see docs/stream.md)",
    )
    serve.add_argument(
        "--stream-threshold",
        type=float,
        default=0.5,
        help="stream admission: shed GA requests whose on-time start "
        "probability is below this (default: 0.5)",
    )
    serve.add_argument(
        "--cache-mb",
        type=float,
        default=64.0,
        help="result cache budget in MiB (default: 64)",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="scheduler-worker shards; >1 runs the sharded deployment "
        "(a coordinator consistent-hashes requests across the shards; "
        "default: 1, the classic single-node daemon)",
    )
    serve.add_argument(
        "--transport",
        choices=("inproc", "tcp"),
        default="tcp",
        help="shard transport when --shards > 1: 'tcp' forks one OS "
        "process per shard (real parallelism), 'inproc' keeps them in "
        "the coordinator's event loop (default: tcp)",
    )
    serve.add_argument(
        "--steal-margin",
        type=_positive_int,
        default=1,
        help="sharded only: GA backlog difference before work stealing "
        "kicks in (default: 1)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress lifecycle output"
    )
    _trace_arg(serve)

    submit = sub.add_parser(
        "submit", help="send one request to a running scheduler service"
    )
    submit.add_argument("--host", default="127.0.0.1", help="server address")
    submit.add_argument("--port", type=int, default=8642, help="server port")
    submit.add_argument(
        "--op",
        choices=("solve", "status", "ping", "shutdown"),
        default="solve",
        help="request to send (default: solve)",
    )
    submit.add_argument(
        "--problem",
        default=None,
        help="problem JSON file ('repro export' output); omitted: generate "
        "an instance from --seed/--tasks/--procs/--ul",
    )
    submit.add_argument("--seed", type=int, default=42, help="instance + solver seed")
    submit.add_argument(
        "--tasks", type=_positive_int, default=50, help="generated-instance tasks"
    )
    submit.add_argument(
        "--procs", type=_positive_int, default=4, help="generated-instance processors"
    )
    submit.add_argument(
        "--ul", type=float, default=2.0, help="generated-instance uncertainty level"
    )
    submit.add_argument(
        "--solver",
        choices=SOLVERS,
        default="ga",
        help="which solver to request (every non-GA name is fast-tier, "
        "including the component-algebra catalogue; see docs/algorithms.md)",
    )
    submit.add_argument("--epsilon", type=float, default=1.0, help="GA eps budget")
    submit.add_argument(
        "--realizations",
        type=_positive_int,
        default=500,
        help="Monte-Carlo realizations",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="queue-wait deadline in seconds; a GA request predicted to "
        "wait longer is shed to the heuristic tier",
    )
    submit.add_argument(
        "--ga-iterations",
        type=_positive_int,
        default=None,
        help="override GAParams.max_iterations for this request",
    )
    submit.add_argument(
        "--ga-stagnation",
        type=_positive_int,
        default=None,
        help="override GAParams.stagnation_limit for this request",
    )
    submit.add_argument(
        "--ga-population",
        type=_positive_int,
        default=None,
        help="override GAParams.population_size for this request",
    )
    submit.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="allow the server to seed a GA solve from previously solved "
        "near-match problems (default: on; --no-warm-start disables)",
    )
    submit.add_argument(
        "--retry-s",
        type=float,
        default=5.0,
        help="keep retrying the connection this long (default: 5)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        help="print the raw response JSON instead of a summary",
    )

    tsum = sub.add_parser(
        "trace-summary",
        help="render a human-readable summary of a --trace JSONL file",
    )
    tsum.add_argument("path", help="trace file written by --trace")
    tsum.add_argument(
        "--top",
        type=_positive_int,
        default=5,
        help="histograms to show in full (default: 5)",
    )
    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    kwargs = {"scale": SCALES[args.scale]}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return ExperimentConfig(**kwargs)


def _cluster_kwargs(args: argparse.Namespace, config: ExperimentConfig) -> dict:
    """Execution knobs shared by every figure driver (repro.cluster)."""
    checkpoint = args.checkpoint
    if checkpoint is None and args.resume:
        checkpoint = (
            f"results/checkpoints/{args.command}-{config.scale.name}"
            f"-seed{config.seed}.jsonl"
        )
    return {
        "n_jobs": args.workers if args.workers is not None else args.jobs,
        "checkpoint": checkpoint,
        "resume": args.resume,
        "metrics_path": args.metrics_json,
    }


def _progress(args: argparse.Namespace):
    if args.quiet:
        return None

    start = time.perf_counter()

    def report(msg: str) -> None:
        print(f"[{time.perf_counter() - start:7.1f}s] {msg}", file=sys.stderr)

    return report


def _instance(args: argparse.Namespace):
    from repro.core.problem import SchedulingProblem
    from repro.graph.generator import DagParams
    from repro.platform.uncertainty import UncertaintyParams

    return SchedulingProblem.random(
        m=args.procs,
        dag_params=DagParams(n=args.tasks),
        uncertainty_params=UncertaintyParams(mean_ul=args.ul),
        rng=args.seed,
    )


def _run_solve(args: argparse.Namespace) -> str:
    from repro.core.robust import RobustScheduler
    from repro.robustness.montecarlo import assess_robustness
    from repro.utils.tables import format_table

    problem = _instance(args)
    result = RobustScheduler(epsilon=args.epsilon, rng=args.seed + 1).solve(problem)
    ga_report = assess_robustness(result.schedule, args.realizations, args.seed + 2)
    heft_report = assess_robustness(
        result.heft_schedule, args.realizations, args.seed + 3
    )
    rows = [
        ["HEFT", heft_report.expected_makespan, heft_report.mean_makespan,
         heft_report.avg_slack, heft_report.r1, heft_report.r2],
        ["robust GA", ga_report.expected_makespan, ga_report.mean_makespan,
         ga_report.avg_slack, ga_report.r1, ga_report.r2],
    ]
    return format_table(
        ["scheduler", "M0", "mean M", "avg slack", "R1", "R2"],
        rows,
        title=f"{problem.name}  (eps={args.epsilon}, N={args.realizations})",
    )


def _run_compare(args: argparse.Namespace) -> str:
    from repro.core.robust import RobustScheduler
    from repro.heuristics import (
        CpopScheduler,
        HeftScheduler,
        MinMinScheduler,
        PeftScheduler,
    )
    from repro.robustness.montecarlo import assess_robustness
    from repro.utils.tables import format_table

    problem = _instance(args)
    schedulers = [
        ("HEFT", HeftScheduler()),
        ("CPOP", CpopScheduler()),
        ("PEFT", PeftScheduler()),
        ("min-min", MinMinScheduler()),
        ("robust GA", RobustScheduler(epsilon=1.0, rng=args.seed + 1)),
    ]
    rows = []
    for name, scheduler in schedulers:
        schedule = scheduler.schedule(problem)
        report = assess_robustness(schedule, args.realizations, args.seed + 2)
        rows.append(
            [name, report.expected_makespan, report.mean_makespan,
             report.avg_slack, report.miss_rate, report.r1, report.r2]
        )
    return format_table(
        ["scheduler", "M0", "mean M", "slack", "miss", "R1", "R2"],
        rows,
        title=f"{problem.name}  (N={args.realizations})",
    )


def _run_gantt(args: argparse.Namespace) -> str:
    from repro.core.robust import RobustScheduler
    from repro.heuristics import (
        CpopScheduler,
        HeftScheduler,
        MinMinScheduler,
        PeftScheduler,
    )
    from repro.schedule.gantt import render_gantt

    problem = _instance(args)
    schedulers = {
        "heft": HeftScheduler(),
        "cpop": CpopScheduler(),
        "peft": PeftScheduler(),
        "minmin": MinMinScheduler(),
        "robust": RobustScheduler(epsilon=args.epsilon, rng=args.seed + 1),
    }
    schedule = schedulers[args.scheduler].schedule(problem)
    header = f"{problem.name} — {args.scheduler}"
    return header + "\n" + render_gantt(schedule, width=args.width)


def _run_pareto(args: argparse.Namespace) -> str:
    from repro.ga.engine import GAParams
    from repro.moop.nsga2 import Nsga2Scheduler
    from repro.utils.tables import format_table

    problem = _instance(args)
    result = Nsga2Scheduler(
        GAParams(max_iterations=args.iterations), rng=args.seed + 1
    ).run(problem)
    rows = [[ind.makespan, ind.avg_slack] for ind in result.front]
    return format_table(
        ["makespan", "avg slack"],
        rows,
        title=f"{problem.name} — NSGA-II front ({len(rows)} schedules, "
        f"{result.generations} generations)",
    )


def _run_export(args: argparse.Namespace) -> str:
    import pathlib

    from repro.heuristics.heft import HeftScheduler
    from repro.io import graph_to_dot, save_problem, save_schedule

    problem = _instance(args)
    out = pathlib.Path(args.out)
    save_problem(problem, out)
    schedule_path = out.with_name(out.stem + ".heft-schedule.json")
    save_schedule(HeftScheduler().schedule(problem), schedule_path)
    messages = [f"wrote {out}", f"wrote {schedule_path}"]
    if args.dot:
        pathlib.Path(args.dot).write_text(graph_to_dot(problem.graph))
        messages.append(f"wrote {args.dot}")
    return "\n".join(messages)


def _run_faults(args: argparse.Namespace) -> str:
    from repro.experiments.config import Scale
    from repro.experiments.fault_grid import run_fault_grid
    from repro.faults import BUILTIN_SCENARIOS, resolve_scenario
    from repro.ga.engine import GAParams

    if args.list_scenarios:
        lines = ["builtin fault scenarios:"]
        for name, scenario in sorted(BUILTIN_SCENARIOS.items()):
            kinds = ", ".join(type(f).__name__ for f in scenario.faults) or "empty"
            rel = " [relative times]" if scenario.relative_times else ""
            lines.append(f"  {name:14s} {kinds}{rel}")
        return "\n".join(lines)

    names = args.scenario or sorted(BUILTIN_SCENARIOS)
    try:
        scenarios = tuple(resolve_scenario(s) for s in names)
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))

    strategies: list[tuple[str, str]] = []
    for policy in dict.fromkeys(args.policies):
        if policy == "dynamic":
            strategies.append(("online", "dynamic"))
        else:
            strategies.append(("heft", policy))
            strategies.append(("robust-ga", policy))

    scale = Scale(
        name="cli-faults",
        n_graphs=args.instances,
        n_realizations=args.realizations,
        n_tasks=args.tasks,
        ga_max_iterations=args.ga_iterations,
        ga_stagnation=max(args.ga_iterations // 4, 1),
    )
    config = ExperimentConfig(scale=scale, m=args.procs, seed=args.seed)
    ga_params = GAParams(
        population_size=args.ga_population,
        max_iterations=args.ga_iterations,
        stagnation_limit=scale.ga_stagnation,
    )
    results = run_fault_grid(
        config,
        scenarios,
        mean_ul=args.ul,
        epsilon=args.epsilon,
        strategies=tuple(strategies),
        ga_params=ga_params,
        n_jobs=args.workers if args.workers is not None else 1,
        progress=_progress(args),
    )
    return results.to_table()


def _run_algo_grid(args: argparse.Namespace) -> str:
    from repro.algebra import CATALOGUE
    from repro.experiments.algo_grid import run_algo_grid

    if args.list_combos:
        lines = ["scheduler catalogue (ranking/selection/insertion/order):"]
        for name, comps in CATALOGUE.items():
            lines.append(f"  {name:16s} {comps.spec}")
        return "\n".join(lines)

    combos = tuple(dict.fromkeys(args.combos)) if args.combos else None
    try:
        results = run_algo_grid(
            seed=args.seed,
            combos=combos,
            families=tuple(dict.fromkeys(args.families)),
            n_instances=args.instances,
            n_tasks=args.tasks,
            m=args.procs,
            mean_ul=args.ul,
            n_realizations=args.realizations,
            n_jobs=args.workers if args.workers is not None else 1,
            progress=_progress(args),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    return results.to_table(args.rank_by)


def _run_energy(args: argparse.Namespace) -> str:
    from repro.energy import PowerModel
    from repro.experiments.config import Scale
    from repro.experiments.energy_grid import run_energy_grid
    from repro.ga.engine import GAParams

    if not (0.0 <= args.slack_ratio <= 1.0):
        raise SystemExit(
            f"--slack-ratio must be in [0, 1], got {args.slack_ratio}"
        )
    if args.k < 0:
        raise SystemExit(f"--k must be >= 0, got {args.k}")
    powers = {
        "default": PowerModel.default,
        "uniform": PowerModel.uniform,
        "null": PowerModel.null,
    }
    power = powers[args.power](args.procs)
    scale = Scale(
        name="cli-energy",
        n_graphs=args.instances,
        n_realizations=args.realizations,
        n_tasks=args.tasks,
        ga_max_iterations=args.ga_iterations,
        ga_stagnation=max(args.ga_iterations // 4, 1),
    )
    config = ExperimentConfig(scale=scale, m=args.procs, seed=args.seed)
    ga_params = GAParams(
        population_size=args.ga_population,
        max_iterations=args.ga_iterations,
        stagnation_limit=scale.ga_stagnation,
    )
    results = run_energy_grid(
        config,
        power=power,
        epsilons=tuple(args.epsilons),
        mean_ul=args.ul,
        slack_ratio=args.slack_ratio,
        k=args.k,
        deadline_factor=args.deadline_factor,
        replication_realizations=args.replication_realizations,
        ga_params=ga_params,
        n_jobs=args.workers if args.workers is not None else 1,
        progress=_progress(args),
    )
    out = results.to_table()
    if results.replication:
        out += "\n" + results.replication_table()
    return out


def _run_stream(args: argparse.Namespace) -> str:
    from repro.experiments.stream_grid import DEFAULT_LOADS, run_stream_grid
    from repro.stream import (
        POLICY_NAMES,
        StreamParams,
        build_workload,
        make_policy,
        run_stream,
    )

    params = StreamParams(
        n_jobs=args.stream_jobs,
        tasks=args.tasks,
        m=args.procs,
        mean_ul=args.ul,
        load=args.load,
        arrival=args.arrival,
        burstiness=args.burstiness,
        deadline_factor=args.deadline_factor,
        seed=args.seed,
    )
    if args.grid:
        results = run_stream_grid(
            params,
            loads=tuple(args.loads) if args.loads else DEFAULT_LOADS,
            policies=tuple(args.policies) if args.policies else POLICY_NAMES,
            n_jobs=args.workers if args.workers is not None else 1,
            progress=_progress(args),
        )
        return results.to_table()

    result = run_stream(build_workload(params), make_policy(args.policy))
    lines = [
        f"stream     : {params.n_jobs} jobs x {params.tasks} tasks on "
        f"m={params.m} ({params.arrival}, load={params.load:g}, "
        f"seed={params.seed})",
        f"policy     : {result.policy}",
        f"on-time    : {result.n_on_time}/{result.n_jobs} "
        f"(rate {result.on_time_rate:.3f}, miss {result.miss_rate:.3f})",
        f"outcomes   : {result.n_late} late, {result.n_dropped} dropped, "
        f"{result.n_rejected} rejected, {result.n_deferrals} deferrals",
        f"goodput    : {result.goodput:.3f} work/time over horizon "
        f"{result.horizon:.2f}",
        f"utilization: {result.utilization:.3f}",
    ]
    if result.n_on_time + result.n_late:
        lines.append(f"mean resp  : {result.mean_response:.2f}")
    return "\n".join(lines)


def _run_serve(args: argparse.Namespace) -> str:
    import asyncio

    from repro.service.coordinator import Coordinator, CoordinatorConfig
    from repro.service.server import SchedulerService, ServiceConfig

    if args.port < 0:
        raise SystemExit(f"port must be >= 0, got {args.port}")
    if args.ga_queue_limit < 0:
        raise SystemExit(
            f"--ga-queue-limit must be >= 0, got {args.ga_queue_limit}"
        )
    progress = None
    if not args.quiet:
        progress = lambda msg: print(f"[serve] {msg}", file=sys.stderr)  # noqa: E731
    if args.shards > 1:
        service = Coordinator(
            CoordinatorConfig(
                host=args.host,
                port=args.port,
                shards=args.shards,
                transport=args.transport,
                workers=args.workers,
                ga_queue_limit=args.ga_queue_limit,
                admission_mode=args.admission,
                stream_threshold=args.stream_threshold,
                cache_bytes=int(args.cache_mb * 1024 * 1024),
                steal_margin=args.steal_margin,
            ),
            progress=progress,
        )
    else:
        service = SchedulerService(
            ServiceConfig(
                host=args.host,
                port=args.port,
                workers=args.workers,
                ga_queue_limit=args.ga_queue_limit,
                admission_mode=args.admission,
                stream_threshold=args.stream_threshold,
                cache_bytes=int(args.cache_mb * 1024 * 1024),
            ),
            progress=progress,
        )
    try:
        asyncio.run(service.run())
    except KeyboardInterrupt:
        pass
    counters = service.counters
    cache = service.cache.stats()
    summary = (
        f"served {counters['requests']} requests "
        f"({counters['solve']} solves, {counters['degraded']} degraded, "
        f"{counters['coalesced']} coalesced); "
        f"cache {cache['hits']} hits / {cache['misses']} misses"
    )
    if args.shards > 1:
        summary += (
            f"; routed {counters['routed_home']} home / "
            f"{counters['routed_stolen']} stolen / "
            f"{counters['routed_failover']} failover "
            f"({counters['shard_restarts']} shard restarts)"
        )
    return summary


def _run_submit(args: argparse.Namespace) -> str:
    import json

    from repro.io import load_problem
    from repro.service.client import ServiceClient

    with ServiceClient(
        args.host, args.port, retry_s=max(args.retry_s, 0.0)
    ) as client:
        if args.op == "ping":
            return "pong" if client.ping() else "no pong"
        if args.op == "status":
            response = client.status()
        elif args.op == "shutdown":
            response = client.shutdown()
        else:
            problem = (
                load_problem(args.problem)
                if args.problem
                else _instance(args)
            )
            ga = {}
            if args.ga_iterations is not None:
                ga["max_iterations"] = args.ga_iterations
            if args.ga_stagnation is not None:
                ga["stagnation_limit"] = args.ga_stagnation
            if args.ga_population is not None:
                ga["population_size"] = args.ga_population
            response = client.solve(
                problem,
                solver=args.solver,
                epsilon=args.epsilon,
                seed=args.seed,
                n_realizations=args.realizations,
                deadline_s=args.deadline,
                ga=ga or None,
                warm_start=args.warm_start,
            )
    if args.json or args.op in ("status", "shutdown"):
        return json.dumps(response, indent=1)
    report = response["report"]
    flags = [
        flag
        for flag, on in [
            ("cached", response["cached"]),
            ("coalesced", response["coalesced"]),
            ("degraded", response["degraded"]),
            ("warm-started", bool(response.get("warm_seeds"))),
        ]
        if on
    ]
    lines = [
        f"solver     : {response['solver']}"
        + (f" (requested {response['requested_solver']})" if response["degraded"] else ""),
        f"flags      : {', '.join(flags) if flags else '-'}",
        f"M0         : {report['expected_makespan']}",
        f"mean M     : {report['mean_makespan']}",
        f"avg slack  : {report['avg_slack']}",
        f"R1 / R2    : {report['r1']} / {report['r2']}",
        f"elapsed    : {response['elapsed_s']:.3f}s",
    ]
    if response["degraded"]:
        lines.append(f"degraded   : {response['degraded_reason']}")
    return "\n".join(lines)


def _run_trace_summary(args: argparse.Namespace) -> str:
    from repro.obs import TraceSchemaError, load_trace, render_summary

    try:
        records = load_trace(args.path)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.path}")
    except TraceSchemaError as exc:
        raise SystemExit(f"{args.path}: trace schema violation: {exc}")
    return render_summary(records, top=args.top)


def run(argv: Sequence[str] | None = None) -> str:
    """Execute the CLI and return the rendered output (testing hook)."""
    args = build_parser().parse_args(argv)

    if args.command == "trace-summary":
        return _run_trace_summary(args)
    trace_path = getattr(args, "trace", None)
    if getattr(args, "metrics_json", None):
        note = (
            "note: --metrics-json is deprecated; prefer --trace PATH "
            "(same counters, plus spans and lifecycle events)"
        )
        if trace_path is None:
            # Forward the legacy flag into the equivalent trace sink so
            # old invocations still produce the full stream.
            trace_path = str(
                pathlib.Path(args.metrics_json).with_suffix(".trace.jsonl")
            )
            note += f"; writing the equivalent trace to {trace_path}"
        print(note, file=sys.stderr)
    if trace_path is None:
        return _dispatch(args)

    from repro.obs import runtime as obs
    from repro.obs.sinks import JsonlSink

    obs.enable(JsonlSink(trace_path))
    try:
        with obs.trace(f"cli.{args.command}"):
            return _dispatch(args)
    finally:
        obs.disable()


def _dispatch(args: argparse.Namespace) -> str:
    if args.command == "solve":
        return _run_solve(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "gantt":
        return _run_gantt(args)
    if args.command == "pareto":
        return _run_pareto(args)
    if args.command == "export":
        return _run_export(args)
    if args.command == "faults":
        return _run_faults(args)
    if args.command == "energy":
        return _run_energy(args)
    if args.command == "algo-grid":
        return _run_algo_grid(args)
    if args.command == "stream":
        return _run_stream(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "zoo":
        from repro.experiments.zoo import run_zoo

        return run_zoo(
            _config(args),
            args.zoo_ul,
            include_dynamic=not args.no_dynamic,
            progress=_progress(args),
        ).to_table()
    if args.command == "sensitivity":
        from repro.experiments.sensitivity import run_sensitivity

        return run_sensitivity(
            _config(args),
            args.parameter,
            tuple(args.values),
            mean_ul=args.sens_ul,
            progress=_progress(args),
        ).to_table()

    config = _config(args)
    uls = tuple(args.uls)
    progress = _progress(args)
    cluster = _cluster_kwargs(args, config)

    if args.command in ("fig2", "fig3"):
        from repro.experiments.slack_effect import run_slack_effect

        objective = "makespan" if args.command == "fig2" else "slack"
        return run_slack_effect(
            config, objective, uls, progress=progress, **cluster
        ).to_table()
    if args.command == "fig4":
        from repro.experiments.eps_one import run_eps_one

        return run_eps_one(
            config, uls, progress=progress, **cluster
        ).to_table()
    if args.command in ("fig5", "fig6"):
        from repro.experiments.eps_sweep import run_eps_sweep

        which = "r1" if args.command == "fig5" else "r2"
        return run_eps_sweep(
            config, uls, progress=progress, **cluster
        ).to_table(which)
    if args.command in ("fig7", "fig8"):
        from repro.experiments.best_eps import run_best_eps

        which = "r1" if args.command == "fig7" else "r2"
        return run_best_eps(
            config, uls, progress=progress, **cluster
        ).to_table(which)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    print(run(argv))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
