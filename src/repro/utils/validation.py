"""Argument-checking helpers shared across the library.

These raise early with precise messages so that user errors surface at
construction time rather than deep inside a GA run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_probability", "check_matrix", "check_square"]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that *value* is positive (``> 0``; ``>= 0`` if not strict)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_matrix(
    name: str,
    matrix: np.ndarray,
    shape: tuple[int, int] | None = None,
    *,
    nonnegative: bool = False,
    positive: bool = False,
) -> np.ndarray:
    """Validate and canonicalise a 2-D float matrix.

    Parameters
    ----------
    name:
        Parameter name used in error messages.
    matrix:
        Array-like input, converted to a C-contiguous ``float64`` array.
    shape:
        Required shape, if any.
    nonnegative, positive:
        Optional element-wise sign constraints.
    """
    out = np.ascontiguousarray(matrix, dtype=np.float64)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={out.ndim}")
    if shape is not None and out.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {out.shape}")
    if not np.all(np.isfinite(out)):
        raise ValueError(f"{name} contains non-finite entries")
    if positive and not np.all(out > 0):
        raise ValueError(f"{name} must be strictly positive")
    if nonnegative and not np.all(out >= 0):
        raise ValueError(f"{name} must be non-negative")
    return out


def check_square(name: str, matrix: np.ndarray, n: int | None = None) -> np.ndarray:
    """Validate a square matrix (optionally of size *n*)."""
    out = check_matrix(name, matrix)
    if out.shape[0] != out.shape[1]:
        raise ValueError(f"{name} must be square, got {out.shape}")
    if n is not None and out.shape[0] != n:
        raise ValueError(f"{name} must be {n}x{n}, got {out.shape}")
    return out
