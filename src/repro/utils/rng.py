"""Deterministic random-number management.

Every stochastic component in :mod:`repro` accepts either a seed-like value
or a ready-made :class:`numpy.random.Generator`.  Experiment drivers spawn
independent child generators through :class:`numpy.random.SeedSequence` so
that (a) whole experiments are reproducible from a single seed and (b) the
per-instance streams are statistically independent, which keeps results
stable when instances are later evaluated in parallel or out of order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "spawn_seeds"]

SeedLike = "int | Sequence[int] | np.random.SeedSequence | np.random.Generator | None"


def as_generator(
    seed: int | Sequence[int] | np.random.SeedSequence | np.random.Generator | None,
) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer / sequence of integers,
        a :class:`~numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so callers can share a stream).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(
    seed: int | Sequence[int] | np.random.SeedSequence | None, n: int
) -> list[np.random.SeedSequence]:
    """Spawn *n* independent child :class:`~numpy.random.SeedSequence` objects.

    Parameters
    ----------
    seed:
        Root entropy.  Passing the same value always yields the same children.
    n:
        Number of children; must be non-negative.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return root.spawn(n)


def spawn_generators(
    seed: int | Sequence[int] | np.random.SeedSequence | np.random.Generator | None,
    n: int,
) -> list[np.random.Generator]:
    """Spawn *n* independent generators rooted at *seed*.

    If *seed* is already a :class:`~numpy.random.Generator` the children are
    spawned from it via :meth:`numpy.random.Generator.spawn`, which keeps the
    parent usable afterwards.
    """
    if isinstance(seed, np.random.Generator):
        return seed.spawn(n)
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]
