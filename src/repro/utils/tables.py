"""ASCII table rendering for benchmark / experiment output.

The benchmark harness prints every reproduced figure as a plain-text table
(rows = x-axis values, columns = plotted series) so results are readable in
CI logs without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _fmt_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as a fixed-width ASCII table."""
    rows = [list(r) for r in rows]
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    rendered: list[list[str]] = [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
) -> str:
    """Render a figure-like structure: one x column plus one column per series."""
    headers = [x_name, *series.keys()]
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but x has {len(x_values)}"
            )
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
