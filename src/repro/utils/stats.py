"""Small statistics helpers used by experiments and reporting.

The paper reports most results as *log ratios* of a quantity relative to a
reference (step 0 of the GA, or the HEFT schedule); :func:`log_ratio` is the
single implementation of that transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["log_ratio", "geometric_mean", "summarize", "Summary"]


def log_ratio(value: np.ndarray | float, reference: np.ndarray | float) -> np.ndarray | float:
    """Natural-log ratio ``log(value / reference)`` used throughout Sec. 5.

    Both arguments must be strictly positive.  Accepts scalars or arrays
    (broadcasting applies).
    """
    value_arr = np.asarray(value, dtype=np.float64)
    ref_arr = np.asarray(reference, dtype=np.float64)
    if np.any(value_arr <= 0) or np.any(ref_arr <= 0):
        raise ValueError("log_ratio requires strictly positive inputs")
    out = np.log(value_arr / ref_arr)
    if np.isscalar(value) and np.isscalar(reference):
        return float(out)
    return out


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of strictly positive values.

    Used to aggregate per-instance ratios across the 100-graph instance pool:
    ratios compose multiplicatively, so the geometric mean is the natural
    cross-instance average (equivalently the exponential of the mean
    log-ratio the paper plots).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of an empty array")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}"
        )


def summarize(values: np.ndarray) -> Summary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
