"""Shared low-level helpers: RNG management, validation, statistics, tables.

This subpackage has no dependencies on the rest of :mod:`repro`; every other
layer may import from it.
"""

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.stats import (
    geometric_mean,
    log_ratio,
    summarize,
    Summary,
)
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_probability,
    check_square,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "geometric_mean",
    "log_ratio",
    "summarize",
    "Summary",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_square",
]
