"""Coefficient-of-variation based execution-time-cost generation.

Implements the ETC (expected/best-case time to compute) matrix generator of
Ali, Siegel, Maheswaran, Hensgen & Ali, *"Task execution time modeling for
heterogeneous computing systems"* (HCW 2000) — the method the paper cites
as [4] for producing the best-case execution-time matrix ``B`` (Sec. 5).

The generator is a two-stage gamma sampler controlled by a mean task cost
``mu_task`` and two coefficients of variation:

1. a per-task mean ``q_i ~ Gamma(shape=1/V_task^2, scale=mu_task*V_task^2)``
   (mean ``mu_task``, COV ``V_task`` — *task heterogeneity*);
2. the row ``b_{ij} ~ Gamma(shape=1/V_mach^2, scale=q_i*V_mach^2)``
   (mean ``q_i``, COV ``V_mach`` — *machine heterogeneity*).

The paper sets ``mu_task = cc = 20`` and ``V_task = V_mach = 0.5``
("medium task and machine heterogeneities").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["EtcParams", "generate_etc", "gamma_gamma_matrix"]


@dataclass(frozen=True)
class EtcParams:
    """Inputs of the COV-based ETC generator.

    Attributes
    ----------
    mu_task:
        Mean task execution cost (the paper's ``cc``; default 20).
    v_task:
        Task-heterogeneity coefficient of variation (default 0.5).
    v_mach:
        Machine-heterogeneity coefficient of variation (default 0.5).
    """

    mu_task: float = 20.0
    v_task: float = 0.5
    v_mach: float = 0.5

    def __post_init__(self) -> None:
        check_positive("mu_task", self.mu_task)
        check_positive("v_task", self.v_task)
        check_positive("v_mach", self.v_mach)


def gamma_gamma_matrix(
    n: int,
    m: int,
    mean: float,
    v_row: float,
    v_col: float,
    rng: np.random.Generator | int | None = None,
    *,
    minimum: float | None = None,
) -> np.ndarray:
    """Two-stage gamma matrix: row means ~ Gamma(mean, v_row), entries ~ Gamma(row mean, v_col).

    Shared by the ETC generator and the uncertainty-level generator (which
    the paper builds "similarly to the way we set the computation cost
    matrix").

    Parameters
    ----------
    n, m:
        Matrix shape (rows = tasks, columns = processors).
    mean:
        Grand mean of the matrix.
    v_row, v_col:
        Coefficients of variation of the two gamma stages.
    rng:
        Seed or generator.
    minimum:
        Optional lower clamp applied element-wise after sampling (used by
        the uncertainty model, where levels below 1 are meaningless).
    """
    if n < 1 or m < 1:
        raise ValueError(f"matrix shape must be positive, got ({n}, {m})")
    check_positive("mean", mean)
    check_positive("v_row", v_row)
    check_positive("v_col", v_col)
    gen = as_generator(rng)

    row_shape = 1.0 / (v_row * v_row)
    row_scale = mean * v_row * v_row
    q = gen.gamma(shape=row_shape, scale=row_scale, size=n)
    # Guard against pathological zero draws (possible for tiny shapes).
    q = np.maximum(q, np.finfo(np.float64).tiny)

    col_shape = 1.0 / (v_col * v_col)
    out = gen.gamma(shape=col_shape, scale=q[:, None] * (v_col * v_col), size=(n, m))
    out = np.maximum(out, np.finfo(np.float64).tiny)
    if minimum is not None:
        np.maximum(out, minimum, out=out)
    return out


def generate_etc(
    n: int,
    m: int,
    params: EtcParams | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate the best-case execution-time matrix ``B`` (``n x m``).

    ``B[i, j]`` is the best-case execution time of task ``i`` on processor
    ``j``.  Entries are strictly positive.
    """
    params = params or EtcParams()
    return gamma_gamma_matrix(
        n, m, params.mu_task, params.v_task, params.v_mach, rng
    )
