"""Heterogeneous platform layer: processors, execution-time costs, uncertainty.

* :class:`~repro.platform.platform.Platform` — ``m`` fully-connected
  processors with a transfer-rate matrix (paper Sec. 3.1).
* :func:`~repro.platform.etc.generate_etc` — the coefficient-of-variation
  based best-case execution-time generator of Ali et al. (paper Sec. 5).
* :class:`~repro.platform.uncertainty.UncertaintyModel` — per-(task,
  processor) uncertainty levels, expected times, and realization sampling.
"""

from repro.platform.etc import EtcParams, generate_etc
from repro.platform.platform import Platform
from repro.platform.trgen import generate_transfer_rates
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams, generate_ul

__all__ = [
    "Platform",
    "generate_transfer_rates",
    "EtcParams",
    "generate_etc",
    "UncertaintyModel",
    "UncertaintyParams",
    "generate_ul",
]
