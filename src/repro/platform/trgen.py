"""Heterogeneous transfer-rate matrix generation.

The paper fixes a deterministic transfer-rate matrix ``TR`` and never
varies it ("we do not consider the variation in data transfer rates"),
but its platform model (Sec. 3.1) allows arbitrary heterogeneous rates.
This generator rounds out the platform layer so experiments can also
sweep *network* heterogeneity, using the same COV-style parametrization
as the execution-time generator.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["generate_transfer_rates"]


def generate_transfer_rates(
    m: int,
    mean_rate: float = 1.0,
    v_link: float = 0.5,
    rng: np.random.Generator | int | None = None,
    *,
    symmetric: bool = True,
) -> np.ndarray:
    """Generate an ``m x m`` transfer-rate matrix.

    Off-diagonal rates are gamma-distributed with mean *mean_rate* and
    coefficient of variation *v_link*; the diagonal is set to 1.0 (it is
    ignored by :class:`~repro.platform.platform.Platform`, which treats
    intra-processor transfers as free).

    Parameters
    ----------
    m:
        Number of processors (>= 1).
    mean_rate:
        Mean link rate (data units per time unit).
    v_link:
        Link-heterogeneity coefficient of variation.
    rng:
        Seed or generator.
    symmetric:
        Whether rate(i, j) == rate(j, i) (full-duplex symmetric links,
        the common cluster model).  Asymmetric matrices model e.g.
        up/down-link asymmetry.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    check_positive("mean_rate", mean_rate)
    check_positive("v_link", v_link)
    gen = as_generator(rng)

    shape = 1.0 / (v_link * v_link)
    scale = mean_rate * v_link * v_link
    rates = gen.gamma(shape=shape, scale=scale, size=(m, m))
    rates = np.maximum(rates, np.finfo(np.float64).tiny)
    if symmetric:
        upper = np.triu(rates, k=1)
        rates = upper + upper.T
    np.fill_diagonal(rates, 1.0)
    return rates
