"""Heterogeneous multiprocessor platform model (paper Sec. 3.1).

The platform is a set ``P = {p_1, ..., p_m}`` of fully-connected processors.
Inter-processor data-transfer rates are given by an ``m x m`` matrix ``TR``;
intra-processor communication is free.  Communications are contention-free
and overlap with computation, so the only role of the platform in schedule
evaluation is the communication-time lookup
``comm_time(d, i, j) = d / TR[i, j]`` (0 when ``i == j``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_square

__all__ = ["Platform"]


class Platform:
    """``m`` fully-connected heterogeneous processors.

    Parameters
    ----------
    m:
        Number of processors (>= 1).
    transfer_rates:
        Optional ``m x m`` matrix of data-transfer rates (data units per
        time unit) between distinct processors; defaults to all ones
        (uniform unit-rate network, the configuration the paper's CCR
        parameter presumes).  Off-diagonal entries must be positive; the
        diagonal is ignored (intra-processor cost is identically zero).
    name:
        Optional label.
    """

    __slots__ = ("m", "name", "transfer_rates", "_inv_rates")

    def __init__(
        self,
        m: int,
        transfer_rates: np.ndarray | None = None,
        *,
        name: str = "platform",
    ) -> None:
        if m < 1:
            raise ValueError(f"platform needs at least one processor, got m={m}")
        self.m = int(m)
        self.name = str(name)
        if transfer_rates is None:
            tr = np.ones((m, m), dtype=np.float64)
        else:
            tr = check_square("transfer_rates", transfer_rates, m)
            off = ~np.eye(m, dtype=bool)
            if np.any(tr[off] <= 0):
                raise ValueError("off-diagonal transfer rates must be positive")
        np.fill_diagonal(tr, np.inf)  # intra-processor transfer is free
        self.transfer_rates = tr
        self._inv_rates = 1.0 / tr  # diagonal becomes exactly 0.0
        self.transfer_rates.setflags(write=False)
        self._inv_rates.setflags(write=False)

    def comm_time(self, data: float, src_proc: int, dst_proc: int) -> float:
        """Time to ship *data* units from ``src_proc`` to ``dst_proc``."""
        return float(data * self._inv_rates[src_proc, dst_proc])

    def comm_times(
        self, data: np.ndarray, src_procs: np.ndarray, dst_procs: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`comm_time` over aligned arrays."""
        data = np.asarray(data, dtype=np.float64)
        return data * self._inv_rates[src_procs, dst_procs]

    @property
    def mean_inverse_rate(self) -> float:
        """Average of ``1/TR`` over *distinct* processor pairs.

        Used by list schedulers (HEFT, CPOP) to form average communication
        costs for task prioritisation.  Returns 0 for a single-processor
        platform (no inter-processor links).
        """
        if self.m == 1:
            return 0.0
        off = ~np.eye(self.m, dtype=bool)
        return float(self._inv_rates[off].mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform(name={self.name!r}, m={self.m})"
