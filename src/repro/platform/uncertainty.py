"""Execution-time uncertainty model (paper Sec. 5).

Each (task, processor) pair carries an *uncertainty level* ``UL_ij >= 1``.
Given the best-case execution time ``b_ij``, the actual execution time is

.. math:: c_{ij} \\sim U\\bigl(b_{ij},\\; (2\\,UL_{ij} - 1)\\,b_{ij}\\bigr)

so its expectation is ``E[c_ij] = UL_ij * b_ij``.  Schedulers are fed these
*expected* times; Monte-Carlo evaluation samples realizations.

The ``UL`` matrix is generated "similarly to the way we set the computation
cost matrix": a two-stage gamma around a scenario-wide mean ``UL`` with
coefficients of variation ``V1 = V2 = 0.5``.  Because the uniform support
degenerates (or inverts) for levels below 1, sampled levels are clamped to
1 — a level of exactly 1 means a deterministic task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.etc import gamma_gamma_matrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_positive

__all__ = ["UncertaintyParams", "generate_ul", "UncertaintyModel"]


@dataclass(frozen=True)
class UncertaintyParams:
    """Inputs of the uncertainty-level generator.

    Attributes
    ----------
    mean_ul:
        Scenario-wide average uncertainty level (paper sweeps 2..8).
    v1:
        COV of the per-task expected level ``q_i`` (paper: 0.5).
    v2:
        COV of per-(task, processor) levels around ``q_i`` (paper: 0.5).
    """

    mean_ul: float = 2.0
    v1: float = 0.5
    v2: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_ul < 1.0:
            raise ValueError(f"mean_ul must be >= 1, got {self.mean_ul}")
        check_positive("v1", self.v1)
        check_positive("v2", self.v2)


def generate_ul(
    n: int,
    m: int,
    params: UncertaintyParams | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate the ``n x m`` uncertainty-level matrix (clamped to ``>= 1``)."""
    params = params or UncertaintyParams()
    return gamma_gamma_matrix(
        n, m, params.mean_ul, params.v1, params.v2, rng, minimum=1.0
    )


class UncertaintyModel:
    """Pairs a best-case time matrix with uncertainty levels.

    Parameters
    ----------
    bcet:
        ``n x m`` best-case execution times ``B`` (strictly positive).
    ul:
        ``n x m`` uncertainty levels, all ``>= 1``.

    Notes
    -----
    The object is immutable.  ``expected_times`` is what every scheduler in
    this library sees; :meth:`realize_durations` is the simulated "real
    resource environment".
    """

    __slots__ = ("bcet", "ul", "expected_times")

    def __init__(self, bcet: np.ndarray, ul: np.ndarray) -> None:
        bcet = check_matrix("bcet", bcet, positive=True)
        ul = check_matrix("ul", ul, shape=bcet.shape)
        if np.any(ul < 1.0):
            raise ValueError("uncertainty levels must be >= 1")
        self.bcet = bcet
        self.ul = ul
        self.expected_times = bcet * ul
        for arr in (self.bcet, self.ul, self.expected_times):
            arr.setflags(write=False)

    @property
    def n(self) -> int:
        """Number of tasks."""
        return self.bcet.shape[0]

    @property
    def m(self) -> int:
        """Number of processors."""
        return self.bcet.shape[1]

    @classmethod
    def deterministic(cls, times: np.ndarray) -> "UncertaintyModel":
        """A model with no uncertainty (``UL = 1`` everywhere).

        Expected, best-case and realized times all coincide with *times*;
        handy for tests and for running the classic deterministic problem.
        """
        times = check_matrix("times", times, positive=True)
        return cls(times, np.ones_like(times))

    @classmethod
    def generate(
        cls,
        bcet: np.ndarray,
        params: UncertaintyParams | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "UncertaintyModel":
        """Generate levels for an existing BCET matrix."""
        bcet = check_matrix("bcet", bcet, positive=True)
        n, m = bcet.shape
        return cls(bcet, generate_ul(n, m, params, rng))

    # ------------------------------------------------------------------ #
    # Realization sampling
    # ------------------------------------------------------------------ #

    def duration_bounds(self, proc_of: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-task (low, high) duration bounds under assignment *proc_of*.

        ``low[i] = b[i, p_i]`` and ``high[i] = (2*UL[i, p_i] - 1) * b[i, p_i]``.
        """
        proc_of = np.asarray(proc_of, dtype=np.int64)
        idx = np.arange(self.n)
        low = self.bcet[idx, proc_of]
        high = (2.0 * self.ul[idx, proc_of] - 1.0) * low
        return low, high

    def realize_durations(
        self,
        proc_of: np.ndarray,
        n_realizations: int,
        rng: np.random.Generator | int | None = None,
        *,
        family: str = "uniform",
    ) -> np.ndarray:
        """Sample actual task durations for a processor assignment.

        Parameters
        ----------
        proc_of:
            ``(n,)`` processor index of every task.
        n_realizations:
            Number of independent realizations ``N``.
        rng:
            Seed or generator.
        family:
            Duration distribution on the ``[b, (2·UL-1)·b]`` support:

            ``"uniform"``
                The paper's model (default).
            ``"beta"``
                ``Beta(2, 2)`` scaled to the support — same mean, 60 % of
                the uniform's variance (bell-shaped).
            ``"bimodal"``
                Equal mixture of uniforms on the lowest and highest fifths
                of the support — same mean, higher variance.  Models
                tasks that either hit a fast path or stall.

            All families share the support and the mean ``UL·b``, so the
            scheduler-visible expected times stay valid; only the shape —
            which the paper's model fixes — changes.  Useful for
            distribution-misspecification studies.

        Returns
        -------
        numpy.ndarray
            ``(n_realizations, n)`` durations; row ``r`` is one realization
            of the whole graph.  Durations of different tasks are sampled
            independently, matching the paper's independence assumption.
        """
        if n_realizations < 1:
            raise ValueError(f"n_realizations must be >= 1, got {n_realizations}")
        gen = as_generator(rng)
        low, high = self.duration_bounds(proc_of)
        shape = (n_realizations, self.n)
        if family == "uniform":
            return gen.uniform(low, high, size=shape)
        if family == "beta":
            return low + (high - low) * gen.beta(2.0, 2.0, size=shape)
        if family == "bimodal":
            span = high - low
            side = gen.random(shape) < 0.5
            frac = gen.uniform(0.0, 0.2, size=shape)
            return np.where(side, low + frac * span, high - frac * span)
        raise ValueError(
            f"unknown duration family {family!r}; "
            "choose 'uniform', 'beta' or 'bimodal'"
        )

    def expected_durations(self, proc_of: np.ndarray) -> np.ndarray:
        """Expected duration of every task under assignment *proc_of*."""
        proc_of = np.asarray(proc_of, dtype=np.int64)
        return self.expected_times[np.arange(self.n), proc_of]

    def quantile_durations(self, proc_of: np.ndarray, q: float) -> np.ndarray:
        """The *q*-quantile of each task's duration under *proc_of*.

        Extension hook (paper Sec. 6 future work): feed the scheduler a
        pessimistic quantile instead of the mean.  For the uniform model the
        quantile is ``low + q * (high - low)``.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        low, high = self.duration_bounds(proc_of)
        return low + q * (high - low)

    def quantile_times(self, q: float) -> np.ndarray:
        """Full ``n x m`` matrix of per-(task, processor) duration quantiles."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        high = (2.0 * self.ul - 1.0) * self.bcet
        return self.bcet + q * (high - self.bcet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertaintyModel(n={self.n}, m={self.m}, "
            f"mean_ul={float(self.ul.mean()):.3g})"
        )
