"""Schedule validation diagnostics and repair.

:class:`~repro.schedule.schedule.Schedule` rejects invalid inputs with an
exception; this module provides the *diagnostic* counterpart for
user-supplied schedules — a structured report of everything wrong — plus
a repair helper that turns a bare processor assignment into valid
per-processor orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.schedule.schedule import Schedule

__all__ = ["ValidationReport", "validate_orders", "schedule_from_proc_map"]


@dataclass(frozen=True)
class ValidationReport:
    """Everything wrong with a proposed set of processor orders.

    Attributes
    ----------
    missing_tasks:
        Tasks assigned to no processor.
    duplicated_tasks:
        Tasks assigned more than once.
    out_of_range_tasks:
        Ids outside ``0..n-1``.
    wrong_processor_count:
        ``(expected, got)`` when the number of order lists is off, else None.
    precedence_conflicts:
        Same-processor pairs ``(later, earlier)`` where *later* is ordered
        before its (possibly transitive) predecessor *earlier* — each one a
        certain cycle in the disjunctive graph.
    """

    missing_tasks: tuple[int, ...] = ()
    duplicated_tasks: tuple[int, ...] = ()
    out_of_range_tasks: tuple[int, ...] = ()
    wrong_processor_count: tuple[int, int] | None = None
    precedence_conflicts: tuple[tuple[int, int], ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the orders form a valid schedule."""
        return (
            not self.missing_tasks
            and not self.duplicated_tasks
            and not self.out_of_range_tasks
            and self.wrong_processor_count is None
            and not self.precedence_conflicts
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "valid schedule"
        parts = []
        if self.wrong_processor_count:
            exp, got = self.wrong_processor_count
            parts.append(f"expected {exp} processor orders, got {got}")
        if self.out_of_range_tasks:
            parts.append(f"out-of-range tasks: {list(self.out_of_range_tasks)}")
        if self.duplicated_tasks:
            parts.append(f"duplicated tasks: {list(self.duplicated_tasks)}")
        if self.missing_tasks:
            parts.append(f"missing tasks: {list(self.missing_tasks)}")
        if self.precedence_conflicts:
            parts.append(
                "precedence conflicts (task ordered before an ancestor on the "
                f"same processor): {list(self.precedence_conflicts)}"
            )
        return "; ".join(parts)


def validate_orders(
    problem: SchedulingProblem, proc_orders: Sequence[Iterable[int]]
) -> ValidationReport:
    """Diagnose a proposed set of per-processor task orders.

    Unlike :class:`Schedule` construction (which raises on the first
    problem), this gathers *all* problems into one report.
    """
    n, m = problem.n, problem.m
    orders = [list(int(v) for v in o) for o in proc_orders]

    wrong_count = (m, len(orders)) if len(orders) != m else None

    seen: dict[int, int] = {}
    out_of_range: list[int] = []
    duplicated: list[int] = []
    for tasks in orders:
        for v in tasks:
            if not (0 <= v < n):
                out_of_range.append(v)
                continue
            seen[v] = seen.get(v, 0) + 1
            if seen[v] == 2:
                duplicated.append(v)
    missing = [v for v in range(n) if v not in seen]

    # Precedence conflicts: on each processor, a task ordered before one of
    # its ancestors. Uses the transitive closure so indirect conflicts
    # (cross-processor cycles threading back) surface too.
    from repro.graph.topology import ancestors_mask

    conflicts: list[tuple[int, int]] = []
    anc_cache: dict[int, np.ndarray] = {}
    for tasks in orders:
        valid = [v for v in tasks if 0 <= v < n]
        for i, later in enumerate(valid):
            if later not in anc_cache:
                anc_cache[later] = ancestors_mask(problem.graph, later)
            mask = anc_cache[later]
            for earlier in valid[i + 1 :]:
                if 0 <= earlier < n and mask[earlier]:
                    conflicts.append((later, earlier))

    return ValidationReport(
        missing_tasks=tuple(missing),
        duplicated_tasks=tuple(sorted(set(duplicated))),
        out_of_range_tasks=tuple(out_of_range),
        wrong_processor_count=wrong_count,
        precedence_conflicts=tuple(conflicts),
    )


def schedule_from_proc_map(
    problem: SchedulingProblem, proc_of: np.ndarray
) -> Schedule:
    """Build a valid schedule from a bare task→processor map.

    Per-processor execution orders follow the graph's canonical
    topological order, which is always consistent — useful for turning the
    output of assignment-only algorithms (load balancers, partitioners)
    into full schedules.
    """
    proc_of = np.asarray(proc_of, dtype=np.int64)
    if proc_of.shape != (problem.n,):
        raise ValueError(
            f"proc_of must have shape ({problem.n},), got {proc_of.shape}"
        )
    if np.any((proc_of < 0) | (proc_of >= problem.m)):
        raise ValueError("processor index out of range in proc_of")
    return Schedule.from_assignment(problem, problem.graph.topological, proc_of)
