"""Schedule layer: representation, disjunctive graph, evaluation.

* :class:`~repro.schedule.schedule.Schedule` — assignment of tasks to
  processors with per-processor execution orders (paper Sec. 3.1); builds
  the disjunctive graph ``G_s`` (Def. 3.1) at construction.
* :mod:`~repro.schedule.evaluation` — makespan (Claim 3.2), top/bottom
  levels, slack (Def. 3.3), and vectorized batch makespans for Monte-Carlo
  robustness evaluation.
"""

from repro.schedule.evaluation import (
    ScheduleEvaluation,
    batch_makespans,
    evaluate,
    expected_makespan,
)
from repro.schedule.gantt import render_gantt
from repro.schedule.schedule import Schedule
from repro.schedule.validation import (
    ValidationReport,
    schedule_from_proc_map,
    validate_orders,
)

__all__ = [
    "Schedule",
    "ScheduleEvaluation",
    "evaluate",
    "expected_makespan",
    "batch_makespans",
    "render_gantt",
    "ValidationReport",
    "validate_orders",
    "schedule_from_proc_map",
]
