"""ASCII Gantt-chart rendering of schedules.

Terminal-friendly visualization: one row per processor, one bar per task,
time scaled to a fixed width.  Useful for examples, debugging schedules,
and eyeballing where slack lives.
"""

from __future__ import annotations

import numpy as np

from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(
    schedule: Schedule,
    durations: np.ndarray | None = None,
    *,
    width: int = 72,
    labels: dict[int, str] | None = None,
) -> str:
    """Render *schedule* as an ASCII Gantt chart.

    Parameters
    ----------
    schedule:
        The schedule to draw.
    durations:
        Optional realized durations (defaults to expected durations).
    width:
        Character width of the time axis.
    labels:
        Optional task-id -> short-label map; labels are truncated to their
        bar's width (falling back to no label on slivers).

    Returns
    -------
    str
        Multi-line chart, one row per processor plus a time axis.
    """
    if width < 10:
        raise ValueError(f"width must be at least 10, got {width}")
    ev = evaluate(schedule, durations)
    makespan = ev.makespan
    if makespan <= 0:
        makespan = 1.0
    scale = width / makespan
    labels = labels or {}

    lines: list[str] = []
    for p, tasks in enumerate(schedule.proc_orders):
        row = [" "] * width
        for v in tasks:
            v = int(v)
            lo = int(round(ev.start_times[v] * scale))
            hi = int(round(ev.finish_times[v] * scale))
            hi = max(hi, lo + 1)  # every task is at least one cell wide
            hi = min(hi, width)
            lo = min(lo, width - 1)
            span = hi - lo
            text = labels.get(v, str(v))
            if span >= len(text) + 2:
                bar = "[" + text.center(span - 2, "=") + "]"
            elif span >= 3:
                bar = "[" + "=" * (span - 2) + "]"
            else:
                bar = "#" * span
            row[lo:hi] = list(bar)
        lines.append(f"P{p:<2d}|{''.join(row)}|")

    axis = f"   0{' ' * (width - len(f'{makespan:.6g}') - 1)}{makespan:.6g}"
    lines.append(axis)
    return "\n".join(lines)
