"""Schedule representation and disjunctive-graph construction.

A schedule ``s = {s_1, ..., s_m}`` gives, for every processor, the ordered
list of tasks assigned to it (paper Sec. 3.1).  Construction immediately
builds the *disjunctive graph* ``G_s`` (Def. 3.1): the task-graph edges plus
zero-data chain edges between consecutive tasks on the same processor, with
communication on same-processor edges zeroed (Eqn. 1).  A schedule whose
disjunctive graph is cyclic (processor orders contradicting precedence) is
rejected at construction.

Because task durations do not change ``G_s``'s *structure*, the expensive
parts — CSR indexes and a topological order — are computed once here and
reused by every evaluation, including the batched Monte-Carlo passes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.analysis import ArrayDag

__all__ = ["Schedule"]


class Schedule:
    """An assignment of all tasks to processors with per-processor orders.

    Parameters
    ----------
    problem:
        The scheduling problem this schedule solves.
    proc_orders:
        One sequence of task ids per processor (``m`` sequences); together
        they must form a partition of ``0..n-1``.  Empty processors are
        allowed (the paper's Fig. 1 example has one).

    Raises
    ------
    ValueError
        If the orders are not a partition of the tasks, or the induced
        disjunctive graph is cyclic (the processor orders are incompatible
        with the precedence constraints).

    Notes
    -----
    Exposed derived data:

    ``proc_of``
        ``(n,)`` processor index of every task.
    ``rank_on_proc``
        ``(n,)`` position of every task within its processor's order.
    ``disjunctive``
        The :class:`~repro.graph.analysis.ArrayDag` of ``G_s``.
    ``comm_weights``
        Per-disjunctive-edge communication time (expected == realized: the
        paper holds transfer rates deterministic).
    """

    __slots__ = (
        "problem",
        "proc_orders",
        "proc_of",
        "rank_on_proc",
        "disjunctive",
        "comm_weights",
        "_expected_eval",
    )

    def __init__(
        self, problem: SchedulingProblem, proc_orders: Sequence[Iterable[int]]
    ) -> None:
        self.problem = problem
        n, m = problem.n, problem.m
        if len(proc_orders) != m:
            raise ValueError(
                f"expected {m} processor orders, got {len(proc_orders)}"
            )
        orders = [np.asarray(list(o), dtype=np.int64) for o in proc_orders]

        proc_of = np.full(n, -1, dtype=np.int64)
        rank = np.zeros(n, dtype=np.int64)
        for p, tasks in enumerate(orders):
            for k, v in enumerate(tasks):
                v = int(v)
                if not (0 <= v < n):
                    raise ValueError(f"task id {v} out of range on processor {p}")
                if proc_of[v] != -1:
                    raise ValueError(f"task {v} assigned to more than one slot")
                proc_of[v] = p
                rank[v] = k
        if np.any(proc_of < 0):
            missing = np.flatnonzero(proc_of < 0)
            raise ValueError(f"tasks not assigned to any processor: {missing.tolist()}")

        self.proc_orders = tuple(orders)
        self.proc_of = proc_of
        self.rank_on_proc = rank

        graph = problem.graph
        platform = problem.platform

        # Disjunctive edge list: original DAG edges first (comm time per
        # Eqn. 1: zero when both endpoints share a processor), then chain
        # edges between consecutive same-processor tasks not already in E.
        src_parts = [graph.edge_src]
        dst_parts = [graph.edge_dst]
        w_dag = platform.comm_times(
            graph.edge_data, proc_of[graph.edge_src], proc_of[graph.edge_dst]
        )
        w_parts = [w_dag]

        dag_edge_set = set(zip(graph.edge_src.tolist(), graph.edge_dst.tolist()))
        chain_src: list[int] = []
        chain_dst: list[int] = []
        for tasks in orders:
            for a, b in zip(tasks[:-1], tasks[1:]):
                a, b = int(a), int(b)
                if (a, b) not in dag_edge_set:
                    chain_src.append(a)
                    chain_dst.append(b)
        if chain_src:
            src_parts.append(np.asarray(chain_src, dtype=np.int64))
            dst_parts.append(np.asarray(chain_dst, dtype=np.int64))
            w_parts.append(np.zeros(len(chain_src), dtype=np.float64))

        dis_src = np.concatenate(src_parts)
        dis_dst = np.concatenate(dst_parts)
        try:
            self.disjunctive = ArrayDag.build(n, dis_src, dis_dst)
        except ValueError as exc:
            raise ValueError(
                "invalid schedule: processor orders contradict the task-graph "
                "precedence constraints (disjunctive graph is cyclic)"
            ) from exc
        self.comm_weights = np.concatenate(w_parts)
        self.comm_weights.setflags(write=False)
        self.proc_of.setflags(write=False)
        self.rank_on_proc.setflags(write=False)
        self._expected_eval = None  # lazily filled by evaluation.evaluate

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_assignment(
        cls,
        problem: SchedulingProblem,
        order: np.ndarray,
        proc_of: np.ndarray,
    ) -> "Schedule":
        """Build from a global task order plus a processor map.

        This is the GA decode (Sec. 4.2.1): the *scheduling string* ``order``
        (a topological sort of the task graph) is filtered per processor to
        produce the assignment strings, so each processor executes its tasks
        in scheduling-string order.
        """
        order = np.asarray(order, dtype=np.int64)
        proc_of = np.asarray(proc_of, dtype=np.int64)
        n, m = problem.n, problem.m
        if order.shape != (n,):
            raise ValueError(f"order must be a permutation of {n} tasks")
        if proc_of.shape != (n,):
            raise ValueError(f"proc_of must have shape ({n},), got {proc_of.shape}")
        if np.any((proc_of < 0) | (proc_of >= m)):
            raise ValueError("processor index out of range in proc_of")
        assigned = proc_of[order]
        orders = [order[assigned == p] for p in range(m)]
        return cls(problem, orders)

    # ------------------------------------------------------------------ #
    # Duration helpers
    # ------------------------------------------------------------------ #

    def expected_durations(self) -> np.ndarray:
        """Expected duration of each task on its assigned processor."""
        return self.problem.uncertainty.expected_durations(self.proc_of)

    def realize_durations(
        self, n_realizations: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Sample ``(n_realizations, n)`` actual durations for this schedule."""
        return self.problem.uncertainty.realize_durations(
            self.proc_of, n_realizations, rng
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of tasks."""
        return self.problem.n

    @property
    def m(self) -> int:
        """Number of processors."""
        return self.problem.m

    def linear_order(self) -> np.ndarray:
        """A global task order consistent with ``G_s`` (its topo order)."""
        return self.disjunctive.topo

    def as_pairs(self) -> list[list[tuple[int, int]]]:
        """The paper's notation: per-processor consecutive-task pairs.

        The schedule of Fig. 1(c) renders as
        ``[[(0, 1), (1, 3)], [(2, 4), (4, 7)], [(5, 6)], []]`` (0-based).
        """
        return [
            [(int(a), int(b)) for a, b in zip(tasks[:-1], tasks[1:])]
            for tasks in self.proc_orders
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.problem is other.problem and all(
            np.array_equal(a, b)
            for a, b in zip(self.proc_orders, other.proc_orders)
        )

    def __hash__(self) -> int:
        return hash((id(self.problem), tuple(t.tobytes() for t in self.proc_orders)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [len(t) for t in self.proc_orders]
        return f"Schedule(n={self.n}, m={self.m}, tasks_per_proc={sizes})"
