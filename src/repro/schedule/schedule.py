"""Schedule representation and disjunctive-graph construction.

A schedule ``s = {s_1, ..., s_m}`` gives, for every processor, the ordered
list of tasks assigned to it (paper Sec. 3.1).  Construction immediately
builds the *disjunctive graph* ``G_s`` (Def. 3.1): the task-graph edges plus
zero-data chain edges between consecutive tasks on the same processor, with
communication on same-processor edges zeroed (Eqn. 1).  A schedule whose
disjunctive graph is cyclic (processor orders contradicting precedence) is
rejected at construction.

Because task durations do not change ``G_s``'s *structure*, the expensive
parts — CSR indexes and a topological order — are computed once here and
reused by every evaluation, including the batched Monte-Carlo passes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.analysis import ArrayDag

__all__ = ["Schedule"]


class Schedule:
    """An assignment of all tasks to processors with per-processor orders.

    Parameters
    ----------
    problem:
        The scheduling problem this schedule solves.
    proc_orders:
        One sequence of task ids per processor (``m`` sequences); together
        they must form a partition of ``0..n-1``.  Empty processors are
        allowed (the paper's Fig. 1 example has one).

    Raises
    ------
    ValueError
        If the orders are not a partition of the tasks, or the induced
        disjunctive graph is cyclic (the processor orders are incompatible
        with the precedence constraints).

    Notes
    -----
    Exposed derived data:

    ``proc_of``
        ``(n,)`` processor index of every task.
    ``rank_on_proc``
        ``(n,)`` position of every task within its processor's order.
    ``disjunctive``
        The :class:`~repro.graph.analysis.ArrayDag` of ``G_s``.
    ``comm_weights``
        Per-disjunctive-edge communication time (expected == realized: the
        paper holds transfer rates deterministic).
    """

    __slots__ = (
        "problem",
        "proc_orders",
        "proc_of",
        "rank_on_proc",
        "disjunctive",
        "comm_weights",
        "_expected_eval",
        "_mc",
    )

    def __init__(
        self,
        problem: SchedulingProblem,
        proc_orders: Sequence[Iterable[int]],
        *,
        _topo: np.ndarray | None = None,
    ) -> None:
        self.problem = problem
        n, m = problem.n, problem.m
        if len(proc_orders) != m:
            raise ValueError(
                f"expected {m} processor orders, got {len(proc_orders)}"
            )
        orders = [np.asarray(list(o), dtype=np.int64) for o in proc_orders]

        # Vectorized partition validation: the orders must cover 0..n-1
        # exactly once.  The error path falls back to the original
        # per-element scan so messages stay byte-identical.
        sizes = np.array([t.size for t in orders], dtype=np.int64)
        flat = np.concatenate(orders) if orders else np.empty(0, dtype=np.int64)
        total = int(flat.size)
        ok = total == n and (
            total == 0
            or (
                flat.min() >= 0
                and flat.max() < n
                and not np.any(np.bincount(flat, minlength=n) != 1)
            )
        )
        if not ok:
            self._raise_invalid_partition(n, orders)

        proc_id = np.repeat(np.arange(m, dtype=np.int64), sizes)
        proc_of = np.empty(n, dtype=np.int64)
        proc_of[flat] = proc_id
        rank = np.empty(n, dtype=np.int64)
        offsets = np.cumsum(sizes) - sizes
        rank[flat] = np.arange(total, dtype=np.int64) - np.repeat(offsets, sizes)

        self.proc_orders = tuple(orders)
        self.proc_of = proc_of
        self.rank_on_proc = rank

        graph = problem.graph
        platform = problem.platform

        # Disjunctive edge list: original DAG edges first (comm time per
        # Eqn. 1: zero when both endpoints share a processor), then chain
        # edges between consecutive same-processor tasks not already in E.
        src_parts = [graph.edge_src]
        dst_parts = [graph.edge_dst]
        w_dag = platform.comm_times(
            graph.edge_data, proc_of[graph.edge_src], proc_of[graph.edge_dst]
        )
        w_parts = [w_dag]

        # Consecutive same-processor pairs, deduplicated against the DAG
        # edges by searchsorted membership on the graph's sorted edge keys.
        if total >= 2:
            same = proc_id[1:] == proc_id[:-1]
            ca = flat[:-1][same]
            cb = flat[1:][same]
            edge_keys = graph.edge_keys
            if edge_keys.size:
                keys = ca * np.int64(n) + cb
                pos = np.searchsorted(edge_keys, keys)
                pos_clip = np.minimum(pos, edge_keys.size - 1)
                is_dag_edge = edge_keys[pos_clip] == keys
                ca = ca[~is_dag_edge]
                cb = cb[~is_dag_edge]
            if ca.size:
                src_parts.append(ca)
                dst_parts.append(cb)
                w_parts.append(np.zeros(ca.size, dtype=np.float64))

        dis_src = np.concatenate(src_parts)
        dis_dst = np.concatenate(dst_parts)
        if _topo is not None:
            # _topo is a proven topological order of G_s (from_assignment
            # verifies the scheduling string against the task graph; chain
            # edges follow the string by construction), so the build can
            # skip the peel and its cycle check.
            self.disjunctive = ArrayDag(n, dis_src, dis_dst, topo=_topo)
        else:
            try:
                self.disjunctive = ArrayDag.build(n, dis_src, dis_dst)
            except ValueError as exc:
                raise ValueError(
                    "invalid schedule: processor orders contradict the "
                    "task-graph precedence constraints (disjunctive graph "
                    "is cyclic)"
                ) from exc
        self.comm_weights = np.concatenate(w_parts)
        self.comm_weights.setflags(write=False)
        self.proc_of.setflags(write=False)
        self.rank_on_proc.setflags(write=False)
        self._expected_eval = None  # lazily filled by evaluation.evaluate
        self._mc = None  # lazily built by _mc_graph

    def _mc_graph(self) -> tuple[ArrayDag, np.ndarray]:
        """Pruned ``(dag, comm_weights)`` view of ``G_s`` for Monte-Carlo.

        A task-graph edge between two tasks on the *same* processor that
        are not consecutive in its order is dominated for longest-path
        purposes: its communication time is zero (Eqn. 1) and the chain
        path between the two tasks has non-negative length, so the chain
        candidate is always at least as large.  Dropping such edges leaves
        every finish time — and hence every realized makespan — bit-for-bit
        unchanged for non-negative durations, while shrinking the kernel's
        per-level workload (typically ~15 % of ``G_s``'s edges on
        paper-sized instances).  The full graph stays in ``disjunctive``
        for structure-sensitive consumers (Clark moments, slack reports).
        """
        if self._mc is None:
            dag = self.disjunctive
            src, dst = dag.edge_src, dag.edge_dst
            same = self.proc_of[src] == self.proc_of[dst]
            consecutive = self.rank_on_proc[dst] == self.rank_on_proc[src] + 1
            keep = ~same | consecutive
            if keep.all():
                self._mc = (dag, self.comm_weights)
            else:
                self._mc = (
                    ArrayDag.build(self.n, src[keep], dst[keep]),
                    np.ascontiguousarray(self.comm_weights[keep]),
                )
        return self._mc

    @staticmethod
    def _raise_invalid_partition(n: int, orders: list[np.ndarray]) -> None:
        """Slow path: rescan per element to raise the exact original error."""
        seen = np.zeros(n, dtype=bool)
        for p, tasks in enumerate(orders):
            for v in tasks:
                v = int(v)
                if not (0 <= v < n):
                    raise ValueError(f"task id {v} out of range on processor {p}")
                if seen[v]:
                    raise ValueError(f"task {v} assigned to more than one slot")
                seen[v] = True
        missing = np.flatnonzero(~seen)
        raise ValueError(f"tasks not assigned to any processor: {missing.tolist()}")

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_assignment(
        cls,
        problem: SchedulingProblem,
        order: np.ndarray,
        proc_of: np.ndarray,
    ) -> "Schedule":
        """Build from a global task order plus a processor map.

        This is the GA decode (Sec. 4.2.1): the *scheduling string* ``order``
        (a topological sort of the task graph) is filtered per processor to
        produce the assignment strings, so each processor executes its tasks
        in scheduling-string order.
        """
        order = np.asarray(order, dtype=np.int64)
        proc_of = np.asarray(proc_of, dtype=np.int64)
        n, m = problem.n, problem.m
        if order.shape != (n,):
            raise ValueError(f"order must be a permutation of {n} tasks")
        if proc_of.shape != (n,):
            raise ValueError(f"proc_of must have shape ({n},), got {proc_of.shape}")
        if np.any((proc_of < 0) | (proc_of >= m)):
            raise ValueError("processor index out of range in proc_of")

        # When the scheduling string is a genuine topological order of the
        # task graph (the GA chromosome invariant), it is also one of the
        # disjunctive graph: chain edges connect string-consecutive tasks.
        # Handing it to the constructor lets ArrayDag skip its peel/cycle
        # check.  Anything suspect falls back to the validating path so
        # error behaviour is unchanged.
        topo = None
        g = problem.graph
        if (
            order.size == n
            and order.min() >= 0
            and order.max() < n
            and not np.any(np.bincount(order, minlength=n) != 1)
        ):
            pos = np.empty(n, dtype=np.int64)
            pos[order] = np.arange(n, dtype=np.int64)
            if bool(np.all(pos[g.edge_src] < pos[g.edge_dst])):
                topo = order

        assigned = proc_of[order]
        orders = [order[assigned == p] for p in range(m)]
        return cls(problem, orders, _topo=topo)

    # ------------------------------------------------------------------ #
    # Duration helpers
    # ------------------------------------------------------------------ #

    def expected_durations(self) -> np.ndarray:
        """Expected duration of each task on its assigned processor."""
        return self.problem.uncertainty.expected_durations(self.proc_of)

    def realize_durations(
        self, n_realizations: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Sample ``(n_realizations, n)`` actual durations for this schedule."""
        return self.problem.uncertainty.realize_durations(
            self.proc_of, n_realizations, rng
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of tasks."""
        return self.problem.n

    @property
    def m(self) -> int:
        """Number of processors."""
        return self.problem.m

    def linear_order(self) -> np.ndarray:
        """A global task order consistent with ``G_s`` (its topo order)."""
        return self.disjunctive.topo

    def as_pairs(self) -> list[list[tuple[int, int]]]:
        """The paper's notation: per-processor consecutive-task pairs.

        The schedule of Fig. 1(c) renders as
        ``[[(0, 1), (1, 3)], [(2, 4), (4, 7)], [(5, 6)], []]`` (0-based).
        """
        return [
            [(int(a), int(b)) for a, b in zip(tasks[:-1], tasks[1:])]
            for tasks in self.proc_orders
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.problem is other.problem and all(
            np.array_equal(a, b)
            for a, b in zip(self.proc_orders, other.proc_orders)
        )

    def __hash__(self) -> int:
        return hash((id(self.problem), tuple(t.tobytes() for t in self.proc_orders)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [len(t) for t in self.proc_orders]
        return f"Schedule(n={self.n}, m={self.m}, tasks_per_proc={sizes})"
