"""Schedule evaluation: makespan, levels, slack — single and batched.

Implements the paper's evaluation semantics:

* **Makespan** (Claim 3.2): with every task starting as soon as it becomes
  ready, the makespan of a realization is the critical-path length of the
  disjunctive graph ``G_s`` with that realization's durations as node
  weights and (deterministic) communication times as edge weights.
* **Top / bottom levels and slack** (Def. 3.3): computed on ``G_s`` with
  the *expected* durations; ``slack_i = M - Bl(i) - Tl(i)``, and the
  schedule's slack is the task average (Eqn. 3).

:func:`batch_makespans` evaluates many realizations at once: durations of
shape ``(R, n)`` flow through one level-synchronous forward pass with numpy
doing the work across the ``R`` axis — the hot path of the Monte-Carlo
robustness evaluator (Sec. 5 runs 1000 realizations per schedule).  Two
knobs serve that hot path: ``validate=False`` skips the finiteness scan for
internally generated duration arrays, and ``chunk_size`` splits very large
batches so the working set stays cache-resident.

:class:`ScheduleEvaluation` computes its backward-pass quantities
(``bottom_levels``, ``slacks``) lazily: the makespan needs only the forward
pass, so consumers that never read slack — e.g. the GA under a
makespan-only fitness — pay half the kernel work.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import runtime as obs
from repro.schedule.schedule import Schedule

__all__ = [
    "ScheduleEvaluation",
    "evaluate",
    "expected_makespan",
    "batch_makespans",
    "task_slacks",
]


class ScheduleEvaluation:
    """Full static evaluation of a schedule under one duration vector.

    Attributes
    ----------
    makespan:
        Critical-path length of ``G_s`` (Claim 3.2).
    start_times, finish_times:
        Earliest start/finish of every task under as-soon-as-ready starts.
    top_levels, bottom_levels:
        ``Tl`` / ``Bl`` of every task on ``G_s`` (Def. 3.3).
        ``bottom_levels`` runs the backward pass on first access.
    slacks:
        Per-task slack ``M - Bl - Tl`` (Eqn. 2); exit-critical tasks have 0.
        Derived from ``bottom_levels``, so equally lazy.
    """

    __slots__ = (
        "makespan",
        "start_times",
        "finish_times",
        "top_levels",
        "_bottom_levels",
        "_slacks",
        "_deferred",
    )

    def __init__(
        self,
        makespan: float,
        start_times: np.ndarray,
        finish_times: np.ndarray,
        top_levels: np.ndarray,
        bottom_levels: np.ndarray | None = None,
        slacks: np.ndarray | None = None,
        *,
        _deferred: tuple | None = None,
    ) -> None:
        self.makespan = float(makespan)
        self.start_times = start_times
        self.finish_times = finish_times
        self.top_levels = top_levels
        self._bottom_levels = bottom_levels
        self._slacks = slacks
        self._deferred = _deferred

    @property
    def bottom_levels(self) -> np.ndarray:
        """``Bl`` per task; triggers the backward pass on first access."""
        if self._bottom_levels is None:
            dag, node_w, edge_w = self._deferred
            self._bottom_levels = dag.bottom_levels(node_w, edge_w)
        return self._bottom_levels

    @property
    def slacks(self) -> np.ndarray:
        """Per-task slack ``M - Bl - Tl`` (Eqn. 2), clamped at zero."""
        if self._slacks is None:
            slacks = self.makespan - self.bottom_levels - self.top_levels
            # Clamp tiny negative values born of float associativity.
            np.maximum(slacks, 0.0, out=slacks)
            self._slacks = slacks
        return self._slacks

    @property
    def avg_slack(self) -> float:
        """Average slack over all tasks (Eqn. 3) — the robustness surrogate."""
        return float(self.slacks.mean())

    @property
    def critical_tasks(self) -> np.ndarray:
        """Tasks with (numerically) zero slack — the critical components."""
        scale = max(self.makespan, 1.0)
        return np.flatnonzero(self.slacks <= 1e-9 * scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduleEvaluation(makespan={self.makespan:g})"


def _durations_or_expected(schedule: Schedule, durations: np.ndarray | None) -> np.ndarray:
    if durations is None:
        return schedule.expected_durations()
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (schedule.n,):
        raise ValueError(
            f"durations must have shape ({schedule.n},), got {durations.shape}"
        )
    if np.any(durations < 0) or not np.all(np.isfinite(durations)):
        raise ValueError("durations must be finite and non-negative")
    return durations


def evaluate(schedule: Schedule, durations: np.ndarray | None = None) -> ScheduleEvaluation:
    """Evaluate *schedule* under *durations* (default: expected durations).

    Results for the expected durations are cached on the schedule, since the
    GA fitness, the robustness metrics and the reporting layer all ask for
    them repeatedly.  Only the forward (top-level) pass runs here; the
    backward pass is deferred until ``bottom_levels``/``slacks`` is read.
    """
    use_cache = durations is None
    if use_cache and schedule._expected_eval is not None:
        return schedule._expected_eval

    node_w = _durations_or_expected(schedule, durations)
    dag = schedule.disjunctive
    edge_w = schedule.comm_weights

    tl = dag.top_levels(node_w, edge_w)
    finish = tl + node_w
    makespan = float(finish.max())

    result = ScheduleEvaluation(
        makespan=makespan,
        start_times=tl,
        finish_times=finish,
        top_levels=tl,
        _deferred=(dag, node_w, edge_w),
    )
    if use_cache:
        schedule._expected_eval = result
    return result


def expected_makespan(schedule: Schedule) -> float:
    """``M_0(s)``: makespan under expected durations (Defs. 3.6/3.7)."""
    return evaluate(schedule).makespan


def task_slacks(schedule: Schedule) -> np.ndarray:
    """Per-task slack under expected durations (Def. 3.3)."""
    return evaluate(schedule).slacks


def batch_makespans(
    schedule: Schedule,
    durations: np.ndarray,
    *,
    validate: bool = True,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Makespans of many duration realizations in one vectorized pass.

    Parameters
    ----------
    schedule:
        The schedule whose disjunctive graph structure is reused across all
        realizations (durations never change ``G_s``).
    durations:
        ``(R, n)`` array; row ``r`` is one realization of all task
        durations (e.g. from :meth:`Schedule.realize_durations`).
    validate:
        Scan *durations* for negative / non-finite entries (default).
        Internal callers that just sampled the array from an uncertainty
        model pass ``False`` to skip the redundant ``O(R·n)`` scan.
    chunk_size:
        Evaluate at most this many realizations per kernel pass.  For
        10k+ realization batches the per-level candidate arrays outgrow
        the CPU caches; chunking keeps them resident at a tiny cost in
        Python-loop overhead.  ``None`` (default) runs the whole batch in
        one pass.

    Returns
    -------
    numpy.ndarray
        ``(R,)`` realized makespans ``M_1 .. M_R``.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.ndim != 2 or durations.shape[1] != schedule.n:
        raise ValueError(
            f"durations must have shape (R, {schedule.n}), got {durations.shape}"
        )
    if validate and durations.size:
        # min/max reductions instead of boolean masks: NaN poisons min
        # (NaN >= 0 is false) and +inf is caught by max, so two cheap
        # scans replace four mask allocations.
        if not (durations.min() >= 0.0 and durations.max() < np.inf):
            raise ValueError("durations must be finite and non-negative")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")

    # The pruned Monte-Carlo view drops chain-dominated same-processor
    # edges; makespans are bit-identical because durations are known
    # non-negative here (validated above, or vouched for by the caller),
    # which also licenses the sinks-only final reduction.
    dag, edge_w = schedule._mc_graph()
    n_real = durations.shape[0]
    if not obs.enabled():
        return _batch_kernel(dag, edge_w, durations, n_real, chunk_size)
    with obs.trace("eval.batch_makespans", n_realizations=n_real) as span:
        t0 = time.perf_counter()
        out = _batch_kernel(dag, edge_w, durations, n_real, chunk_size)
        obs.observe("eval.batch_makespans_seconds", time.perf_counter() - t0)
        span.set(n_tasks=schedule.n)
        return out


def _batch_kernel(dag, edge_w, durations, n_real, chunk_size):
    """The untraced batched forward pass (shared by both obs modes)."""
    if chunk_size is None or n_real <= chunk_size:
        out = dag.makespan(durations, edge_w, nonnegative=True)
        return np.asarray(out, dtype=np.float64)

    out = np.empty(n_real, dtype=np.float64)
    for lo in range(0, n_real, chunk_size):
        hi = min(lo + chunk_size, n_real)
        out[lo:hi] = dag.makespan(durations[lo:hi], edge_w, nonnegative=True)
    return out
