"""Schedule evaluation: makespan, levels, slack — single and batched.

Implements the paper's evaluation semantics:

* **Makespan** (Claim 3.2): with every task starting as soon as it becomes
  ready, the makespan of a realization is the critical-path length of the
  disjunctive graph ``G_s`` with that realization's durations as node
  weights and (deterministic) communication times as edge weights.
* **Top / bottom levels and slack** (Def. 3.3): computed on ``G_s`` with
  the *expected* durations; ``slack_i = M - Bl(i) - Tl(i)``, and the
  schedule's slack is the task average (Eqn. 3).

:func:`batch_makespans` evaluates many realizations at once: durations of
shape ``(R, n)`` flow through one topological forward pass with numpy doing
the work across the ``R`` axis — the hot path of the Monte-Carlo robustness
evaluator (Sec. 5 runs 1000 realizations per schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schedule.schedule import Schedule

__all__ = [
    "ScheduleEvaluation",
    "evaluate",
    "expected_makespan",
    "batch_makespans",
    "task_slacks",
]


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Full static evaluation of a schedule under one duration vector.

    Attributes
    ----------
    makespan:
        Critical-path length of ``G_s`` (Claim 3.2).
    start_times, finish_times:
        Earliest start/finish of every task under as-soon-as-ready starts.
    top_levels, bottom_levels:
        ``Tl`` / ``Bl`` of every task on ``G_s`` (Def. 3.3).
    slacks:
        Per-task slack ``M - Bl - Tl`` (Eqn. 2); exit-critical tasks have 0.
    """

    makespan: float
    start_times: np.ndarray
    finish_times: np.ndarray
    top_levels: np.ndarray
    bottom_levels: np.ndarray
    slacks: np.ndarray

    @property
    def avg_slack(self) -> float:
        """Average slack over all tasks (Eqn. 3) — the robustness surrogate."""
        return float(self.slacks.mean())

    @property
    def critical_tasks(self) -> np.ndarray:
        """Tasks with (numerically) zero slack — the critical components."""
        scale = max(self.makespan, 1.0)
        return np.flatnonzero(self.slacks <= 1e-9 * scale)


def _durations_or_expected(schedule: Schedule, durations: np.ndarray | None) -> np.ndarray:
    if durations is None:
        return schedule.expected_durations()
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (schedule.n,):
        raise ValueError(
            f"durations must have shape ({schedule.n},), got {durations.shape}"
        )
    if np.any(durations < 0) or not np.all(np.isfinite(durations)):
        raise ValueError("durations must be finite and non-negative")
    return durations


def evaluate(schedule: Schedule, durations: np.ndarray | None = None) -> ScheduleEvaluation:
    """Evaluate *schedule* under *durations* (default: expected durations).

    Results for the expected durations are cached on the schedule, since the
    GA fitness, the robustness metrics and the reporting layer all ask for
    them repeatedly.
    """
    use_cache = durations is None
    if use_cache and schedule._expected_eval is not None:
        return schedule._expected_eval

    node_w = _durations_or_expected(schedule, durations)
    dag = schedule.disjunctive
    edge_w = schedule.comm_weights

    tl = dag.top_levels(node_w, edge_w)
    bl = dag.bottom_levels(node_w, edge_w)
    finish = tl + node_w
    makespan = float(finish.max())
    slacks = makespan - bl - tl
    # Clamp tiny negative values born of float associativity.
    np.maximum(slacks, 0.0, out=slacks)

    result = ScheduleEvaluation(
        makespan=makespan,
        start_times=tl,
        finish_times=finish,
        top_levels=tl,
        bottom_levels=bl,
        slacks=slacks,
    )
    if use_cache:
        schedule._expected_eval = result
    return result


def expected_makespan(schedule: Schedule) -> float:
    """``M_0(s)``: makespan under expected durations (Defs. 3.6/3.7)."""
    return evaluate(schedule).makespan


def task_slacks(schedule: Schedule) -> np.ndarray:
    """Per-task slack under expected durations (Def. 3.3)."""
    return evaluate(schedule).slacks


def batch_makespans(schedule: Schedule, durations: np.ndarray) -> np.ndarray:
    """Makespans of many duration realizations in one vectorized pass.

    Parameters
    ----------
    schedule:
        The schedule whose disjunctive graph structure is reused across all
        realizations (durations never change ``G_s``).
    durations:
        ``(R, n)`` array; row ``r`` is one realization of all task
        durations (e.g. from :meth:`Schedule.realize_durations`).

    Returns
    -------
    numpy.ndarray
        ``(R,)`` realized makespans ``M_1 .. M_R``.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.ndim != 2 or durations.shape[1] != schedule.n:
        raise ValueError(
            f"durations must have shape (R, {schedule.n}), got {durations.shape}"
        )
    if durations.size and (np.any(durations < 0) or not np.all(np.isfinite(durations))):
        raise ValueError("durations must be finite and non-negative")
    out = schedule.disjunctive.makespan(durations, schedule.comm_weights)
    return np.asarray(out, dtype=np.float64)
