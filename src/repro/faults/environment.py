"""Realized fault state: piecewise-constant processor speeds + link factors.

A :class:`FaultEnvironment` compiles a scenario's time-dependent faults
into one queryable object the event simulators consume:

* per processor, a piecewise-constant **speed function** — 1.0 by
  default, divided by every active slowdown factor, 0.0 during outages
  (outages dominate);
* per directed link, a **communication factor** looked up at the
  transfer's start time.

Execution semantics follow from integrating the speed function: a task
holding ``work`` nominal duration units started at ``t`` on processor
``p`` finishes when the integral of ``speed_p`` from ``t`` reaches
``work``.  An outage inside that span suspends the task (progress kept);
a permanent outage (speed 0 forever) yields an infinite finish time,
which propagates through the event loop as an infinite makespan instead
of a deadlock.
"""

from __future__ import annotations

import math

import numpy as np

from repro.faults.scenario import LinkFault, OutageFault, SlowdownFault

__all__ = ["FaultEnvironment"]

_INF = float("inf")


class FaultEnvironment:
    """Per-processor speed timelines plus link-degradation lookup.

    Parameters
    ----------
    m:
        Processor count of the platform.
    proc_faults:
        :class:`SlowdownFault` / :class:`OutageFault` instances.
    link_faults:
        :class:`LinkFault` instances.
    time_scale:
        Multiplier applied to every window bound (used by scenarios with
        ``relative_times``: the bounds are fractions of ``M_0``).
    """

    __slots__ = ("m", "_breaks", "_speeds", "_dead_from", "_links", "n_windows")

    def __init__(
        self,
        m: int,
        proc_faults=(),
        link_faults=(),
        *,
        time_scale: float = 1.0,
    ) -> None:
        if m < 1:
            raise ValueError(f"need at least one processor, got m={m}")
        self.m = int(m)
        scale = float(time_scale)

        per_proc: list[list] = [[] for _ in range(m)]
        n_windows = 0
        for f in proc_faults:
            if not isinstance(f, (SlowdownFault, OutageFault)):
                raise TypeError(f"not a processor fault: {f!r}")
            targets = range(m) if f.processor is None else (f.processor,)
            for p in targets:
                if p >= m:
                    raise ValueError(
                        f"{type(f).__name__} targets processor {p} but m={m}"
                    )
                per_proc[p].append(f)
                n_windows += 1
        self.n_windows = n_windows

        # Compile each processor's faults into sorted breakpoints with a
        # constant speed per segment [breaks[i], breaks[i+1]); the last
        # segment extends to infinity.
        self._breaks: list[np.ndarray] = []
        self._speeds: list[np.ndarray] = []
        self._dead_from: list[float] = []
        for p in range(m):
            points = {0.0}
            for f in per_proc[p]:
                points.add(f.start * scale)
                if math.isfinite(f.end):
                    points.add(f.end * scale)
            breaks = np.array(sorted(points), dtype=np.float64)
            speeds = np.empty(breaks.size, dtype=np.float64)
            for i, t in enumerate(breaks):
                speed = 1.0
                for f in per_proc[p]:
                    lo, hi = f.start * scale, f.end * scale
                    if lo <= t and t < hi:
                        if isinstance(f, OutageFault):
                            speed = 0.0
                            break
                        speed /= f.factor
                speeds[i] = speed
            self._breaks.append(breaks)
            self._speeds.append(speeds)
            # Earliest time after which the processor never runs again.
            if speeds[-1] > 0.0:
                self._dead_from.append(_INF)
            else:
                j = speeds.size - 1
                while j > 0 and speeds[j - 1] == 0.0:
                    j -= 1
                self._dead_from.append(float(breaks[j]))

        self._links: list[tuple[LinkFault, float, float]] = []
        for f in link_faults:
            if not isinstance(f, LinkFault):
                raise TypeError(f"not a link fault: {f!r}")
            for side in (f.src, f.dst):
                if side is not None and side >= m:
                    raise ValueError(f"LinkFault endpoint {side} out of range for m={m}")
            self._links.append((f, f.start * scale, f.end * scale))

    # ------------------------------------------------------------------ #
    # Queries (the simulator contract)
    # ------------------------------------------------------------------ #

    def speed_at(self, p: int, t: float) -> float:
        """Instantaneous speed of processor *p* at time *t* (0 = outage)."""
        if math.isinf(t):
            return float(self._speeds[p][-1])
        breaks = self._breaks[p]
        i = int(np.searchsorted(breaks, t, side="right")) - 1
        return float(self._speeds[p][max(i, 0)])

    def earliest_start(self, p: int, t: float) -> float:
        """Earliest time ``>= t`` at which processor *p* can run work.

        Returns ``inf`` when the processor never recovers after *t*.
        """
        if math.isinf(t) or math.isnan(t):
            return _INF if not math.isnan(t) else t
        breaks, speeds = self._breaks[p], self._speeds[p]
        i = max(int(np.searchsorted(breaks, t, side="right")) - 1, 0)
        if speeds[i] > 0.0:
            return float(t)
        for j in range(i + 1, breaks.size):
            if speeds[j] > 0.0:
                return float(breaks[j])
        return _INF

    def finish_time(self, p: int, start: float, work: float) -> float:
        """Completion time of *work* nominal units started at *start* on *p*.

        Integrates the piecewise speed function; outages suspend progress
        and permanent failures yield ``inf``.  Zero work finishes
        immediately at *start*.
        """
        if work < 0.0 or math.isnan(work):
            raise ValueError(f"work must be >= 0, got {work}")
        if math.isinf(start) or math.isnan(start):
            return _INF
        if work == 0.0:
            return float(start)
        breaks, speeds = self._breaks[p], self._speeds[p]
        i = max(int(np.searchsorted(breaks, start, side="right")) - 1, 0)
        t = float(start)
        remaining = float(work)
        while i < breaks.size - 1:
            seg_end = float(breaks[i + 1])
            speed = float(speeds[i])
            if speed > 0.0:
                capacity = (seg_end - t) * speed
                if remaining <= capacity:
                    return t + remaining / speed
                remaining -= capacity
            t = seg_end
            i += 1
        speed = float(speeds[-1])
        if speed <= 0.0:
            return _INF
        return t + remaining / speed

    def comm_factor(self, src: int, dst: int, t: float) -> float:
        """Communication-time multiplier for a ``src → dst`` transfer
        starting at time *t* (product of active matching link faults)."""
        if src == dst or not self._links:
            return 1.0
        factor = 1.0
        for f, lo, hi in self._links:
            if lo <= t < hi and f.matches(src, dst):
                factor *= f.factor
        return factor

    def dead_from(self, p: int) -> float:
        """Time after which processor *p* never runs again (``inf`` = never)."""
        return self._dead_from[p]

    @property
    def has_permanent_failures(self) -> bool:
        """Whether any processor is permanently lost."""
        return any(math.isfinite(t) for t in self._dead_from)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dead = sum(1 for t in self._dead_from if math.isfinite(t))
        return (
            f"FaultEnvironment(m={self.m}, windows={self.n_windows}, "
            f"links={len(self._links)}, permanent_failures={dead})"
        )
