"""Fault-injection & perturbation subsystem.

Stress-tests the paper's robustness claims beyond its stochastic-duration
model: composable fault scenarios (processor slowdowns, outage windows,
permanent failures, link degradation, heavy-tailed duration outliers)
realized through reactive policies (keep the schedule, repair it, or go
fully dynamic), assessed with the same Monte-Carlo R1/R2/miss-rate
machinery as :mod:`repro.robustness` — bit-identical to it when the
scenario is empty.

See ``docs/faults.md`` for the guided tour.
"""

from repro.faults.assess import POLICIES, FaultAssessment, assess_robustness_faulty
from repro.faults.environment import FaultEnvironment
from repro.faults.perturb import (
    PerturbedRealization,
    apply_tail_faults,
    realize_perturbed,
)
from repro.faults.policies import (
    luck_fractions,
    simulate_dynamic_faulty,
    simulate_repair,
)
from repro.faults.scenario import (
    FaultScenario,
    LinkFault,
    OutageFault,
    SlowdownFault,
    TailFault,
)
from repro.faults.spec import (
    BUILTIN_SCENARIOS,
    load_scenario,
    resolve_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "POLICIES",
    "FaultAssessment",
    "assess_robustness_faulty",
    "FaultEnvironment",
    "PerturbedRealization",
    "apply_tail_faults",
    "realize_perturbed",
    "luck_fractions",
    "simulate_dynamic_faulty",
    "simulate_repair",
    "FaultScenario",
    "SlowdownFault",
    "OutageFault",
    "LinkFault",
    "TailFault",
    "BUILTIN_SCENARIOS",
    "load_scenario",
    "resolve_scenario",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]
