"""The ``FaultScenario → PerturbedRealization`` pipeline.

Splits a scenario into its two halves:

* **duration-level** faults (heavy tails) are applied directly to the
  sampled duration matrix — a pure array transform, so scenarios without
  time-dependent faults keep the vectorized ``batch_makespans`` path;
* **time-dependent** faults are compiled into a
  :class:`~repro.faults.environment.FaultEnvironment` consumed by the
  outage-aware event loop.

Determinism contract: the base durations are drawn *first*, with exactly
the same generator calls as the plain Monte-Carlo path, and the tail
draws consume the stream only *afterwards*.  A zero-fault scenario
therefore reproduces the plain path's samples bit-for-bit — the
invariant the property suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.scenario import FaultScenario

__all__ = ["PerturbedRealization", "apply_tail_faults", "realize_perturbed"]


def _tail_excess(fault, gen: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Nonnegative heavy-tail excess draws for one :class:`TailFault`."""
    if fault.family == "pareto":
        return gen.pareto(fault.shape, size=shape)
    return gen.lognormal(mean=0.0, sigma=fault.shape, size=shape)


def apply_tail_faults(
    durations: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    scenario: FaultScenario,
    gen: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Replace duration draws with heavy-tail outliers per the scenario.

    Parameters
    ----------
    durations:
        ``(R, n)`` base draws (mutated copy returned; the input array is
        returned unchanged — same object — when the scenario has no tail
        faults, so the zero-fault path stays allocation- and RNG-free).
    low, high:
        ``(n,)`` per-task support bounds under the assignment.
    scenario:
        The fault scenario; only its :class:`TailFault` entries apply.
    gen:
        Generator; consumed only when tail faults exist.

    Returns
    -------
    (durations, n_outliers):
        The (possibly new) duration array and how many draws were
        replaced.
    """
    tails = scenario.tail_faults
    if not tails:
        return durations, 0

    out = np.array(durations, dtype=np.float64, copy=True)
    n_real, n = out.shape
    spread = np.where(high > low, high - low, high)
    n_outliers = 0
    for fault in tails:
        if fault.tasks is None:
            idx = np.arange(n)
        else:
            idx = np.asarray(fault.tasks, dtype=np.int64)
        shape = (n_real, idx.size)
        # Full-size draws regardless of the mask keep the stream layout
        # independent of which draws happen to be outliers.
        mask = gen.random(shape) < fault.probability
        excess = _tail_excess(fault, gen, shape)
        outlier = high[idx] + excess * spread[idx]
        block = out[:, idx]
        out[:, idx] = np.where(mask, outlier, block)
        n_outliers += int(mask.sum())
    return out, n_outliers


@dataclass(frozen=True)
class PerturbedRealization:
    """One batch of fault-perturbed realizations, ready to evaluate.

    Attributes
    ----------
    durations:
        ``(R, n)`` per-task durations on the assigned processors, tail
        faults applied.
    env:
        The compiled time-dependent fault state, or ``None`` when the
        scenario is duration-only (vectorized evaluation stays valid).
    n_tail_outliers:
        How many draws were replaced by heavy-tail outliers.
    """

    durations: np.ndarray
    env: object | None
    n_tail_outliers: int

    @property
    def vectorizable(self) -> bool:
        """True when the batch can go through ``batch_makespans``."""
        return self.env is None


def realize_perturbed(
    schedule,
    scenario: FaultScenario,
    n_realizations: int,
    gen: np.random.Generator,
    *,
    family: str = "uniform",
    time_scale: float = 1.0,
) -> PerturbedRealization:
    """Sample ``n_realizations`` fault-perturbed duration realizations.

    Draws the base durations exactly as the plain Monte-Carlo path does
    (same generator calls, same order), then applies tail faults and
    compiles the time-dependent ones.  With ``scenario.relative_times``,
    pass the schedule's expected makespan as *time_scale*.
    """
    unc = schedule.problem.uncertainty
    durations = unc.realize_durations(
        schedule.proc_of, n_realizations, gen, family=family
    )
    low, high = unc.duration_bounds(schedule.proc_of)
    durations, n_outliers = apply_tail_faults(durations, low, high, scenario, gen)
    env = scenario.environment(schedule.m, time_scale=time_scale)
    return PerturbedRealization(
        durations=durations, env=env, n_tail_outliers=n_outliers
    )
