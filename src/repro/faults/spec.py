"""Scenario specs: dict/JSON/YAML round-trip + the built-in library.

A scenario file is a mapping with ``name``, optional ``relative_times``
and a ``faults`` list, each entry tagged by ``type``::

    name: slow-proc
    relative_times: true
    faults:
      - {type: slowdown, factor: 2.0, processor: 0, start: 0.0, end: 0.5}
      - {type: tail, probability: 0.02, family: pareto, shape: 1.5}

JSON files use the same shape.  YAML support is gated on PyYAML being
importable — JSON always works.  Window bounds may be the string
``"inf"`` (JSON has no infinity literal).

:data:`BUILTIN_SCENARIOS` names a small library covering each fault class
(usable directly from the CLI: ``repro faults --scenario outage-mid``).
All builtins use ``relative_times`` so they are meaningful on instances
of any size.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping

from repro.faults.scenario import (
    FaultScenario,
    LinkFault,
    OutageFault,
    SlowdownFault,
    TailFault,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "scenario_from_dict",
    "scenario_to_dict",
    "load_scenario",
    "save_scenario",
    "resolve_scenario",
]

_INF = float("inf")

_FAULT_TYPES = {
    "slowdown": SlowdownFault,
    "outage": OutageFault,
    "link": LinkFault,
    "tail": TailFault,
}
_TYPE_NAMES = {cls: name for name, cls in _FAULT_TYPES.items()}


def _encode_value(v: Any) -> Any:
    if isinstance(v, float) and math.isinf(v):
        return "inf"
    if isinstance(v, tuple):
        return list(v)
    return v


def _decode_number(v: Any) -> float:
    if isinstance(v, str):
        if v.strip().lower() in ("inf", "infinity", ".inf"):
            return _INF
        return float(v)
    return float(v)


def scenario_to_dict(scenario: FaultScenario) -> dict:
    """Plain-dict (JSON-ready) form of *scenario*; inverse of
    :func:`scenario_from_dict`."""
    faults = []
    for f in scenario.faults:
        entry: dict[str, Any] = {"type": _TYPE_NAMES[type(f)]}
        for name in f.__dataclass_fields__:
            entry[name] = _encode_value(getattr(f, name))
        faults.append(entry)
    return {
        "name": scenario.name,
        "relative_times": scenario.relative_times,
        "faults": faults,
    }


def scenario_from_dict(data: Mapping[str, Any]) -> FaultScenario:
    """Build a :class:`FaultScenario` from its dict form.

    Raises :class:`ValueError` on unknown fault types or field values the
    fault constructors reject.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"scenario spec must be a mapping, got {type(data).__name__}")
    faults = []
    for entry in data.get("faults", ()):
        if not isinstance(entry, Mapping):
            raise ValueError(f"fault entry must be a mapping, got {entry!r}")
        kind = entry.get("type")
        cls = _FAULT_TYPES.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown fault type {kind!r}; choose one of {sorted(_FAULT_TYPES)}"
            )
        kwargs = {k: v for k, v in entry.items() if k != "type"}
        unknown = set(kwargs) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)} for fault type {kind!r}"
            )
        for key in ("factor", "start", "end", "probability", "shape"):
            if key in kwargs:
                kwargs[key] = _decode_number(kwargs[key])
        if kwargs.get("tasks") is not None:
            kwargs["tasks"] = tuple(int(t) for t in kwargs["tasks"])
        faults.append(cls(**kwargs))
    return FaultScenario(
        name=str(data.get("name", "scenario")),
        faults=tuple(faults),
        relative_times=bool(data.get("relative_times", False)),
    )


def load_scenario(path: str | Path) -> FaultScenario:
    """Load a scenario spec from a ``.json``/``.yaml``/``.yml`` file.

    YAML requires PyYAML; without it, a YAML path raises a
    :class:`RuntimeError` pointing at the JSON alternative.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise RuntimeError(
                f"reading {path.name} needs PyYAML, which is not installed; "
                "use a .json spec instead"
            ) from exc
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    return scenario_from_dict(data)


def save_scenario(scenario: FaultScenario, path: str | Path) -> Path:
    """Write *scenario* as a spec file (format chosen by extension)."""
    path = Path(path)
    data = scenario_to_dict(scenario)
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise RuntimeError(
                f"writing {path.name} needs PyYAML, which is not installed; "
                "use a .json spec instead"
            ) from exc
        path.write_text(yaml.safe_dump(data, sort_keys=False))
    else:
        path.write_text(json.dumps(data, indent=2) + "\n")
    return path


# --------------------------------------------------------------------- #
# Built-in scenario library
# --------------------------------------------------------------------- #

BUILTIN_SCENARIOS: dict[str, FaultScenario] = {
    "none": FaultScenario.none(),
    "slow-proc": FaultScenario(
        name="slow-proc",
        faults=(SlowdownFault(factor=2.0, processor=0, start=0.0, end=0.5),),
        relative_times=True,
    ),
    "outage-mid": FaultScenario(
        name="outage-mid",
        faults=(OutageFault(processor=0, start=0.3, end=0.6),),
        relative_times=True,
    ),
    "proc-failure": FaultScenario(
        name="proc-failure",
        faults=(OutageFault(processor=0, start=0.4),),
        relative_times=True,
    ),
    "heavy-tail": FaultScenario(
        name="heavy-tail",
        faults=(TailFault(probability=0.02, family="pareto", shape=1.5),),
    ),
    "degraded-net": FaultScenario(
        name="degraded-net",
        faults=(LinkFault(factor=3.0, start=0.0, end=0.7),),
        relative_times=True,
    ),
    "mixed": FaultScenario(
        name="mixed",
        faults=(
            SlowdownFault(factor=1.5, processor=1, start=0.0, end=0.8),
            OutageFault(processor=0, start=0.3, end=0.5),
            TailFault(probability=0.01, family="lognormal", shape=1.0),
        ),
        relative_times=True,
    ),
}


def resolve_scenario(spec: str) -> FaultScenario:
    """Resolve a CLI ``--scenario`` value: a builtin name or a file path."""
    builtin = BUILTIN_SCENARIOS.get(spec)
    if builtin is not None:
        return builtin
    path = Path(spec)
    if path.exists():
        return load_scenario(path)
    raise ValueError(
        f"unknown scenario {spec!r}: not a builtin "
        f"({', '.join(sorted(BUILTIN_SCENARIOS))}) and no such file"
    )
