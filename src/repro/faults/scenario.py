"""Fault scenarios: composable perturbations beyond the paper's model.

The paper's uncertainty model is purely stochastic-duration
(``c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij)``); its robustness claims are only as
strong as the perturbations tested.  Related work on robust heterogeneous
scheduling (Mokhtari et al., arXiv:2005.11050; Gentry et al.,
arXiv:1901.09312) explicitly models task drops and resource degradation.
This module defines the perturbation vocabulary used to stress-test
whether slack-maximizing schedules stay robust under faults the GA never
saw:

:class:`SlowdownFault`
    A processor runs ``factor``× slower (``factor < 1`` = speedup) inside
    a time window; ``end=inf`` makes the change permanent.
:class:`OutageFault`
    A processor does no work inside a window — tasks scheduled there
    stall until recovery (running work is suspended, not lost);
    ``end=inf`` is a permanent failure.
:class:`LinkFault`
    Communication on matching links is ``factor``× slower for transfers
    *starting* inside the window (the paper's ``TR`` scaled down).
:class:`TailFault`
    With probability ``p`` a task's duration draw is replaced by a
    heavy-tailed outlier (Pareto or lognormal excess beyond the
    worst-case bound) — stragglers the uniform support cannot produce.

A :class:`FaultScenario` composes any number of faults and classifies
itself: *duration-level* faults (tails) keep the vectorized Monte-Carlo
path usable, while *time-dependent* faults (slowdowns, outages, links)
require the outage-aware event loop (see
:class:`~repro.faults.environment.FaultEnvironment`).  Scenario windows
may be expressed in absolute time units or — with ``relative_times`` —
as fractions of the schedule's expected makespan ``M_0``, which makes one
scenario meaningful across instances of any size.

Scenarios round-trip to plain dicts (JSON-ready); see
:mod:`repro.faults.spec` for file I/O and the built-in scenario library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "SlowdownFault",
    "OutageFault",
    "LinkFault",
    "TailFault",
    "FaultScenario",
]

_INF = float("inf")


def _check_window(start: float, end: float) -> None:
    if not (start >= 0.0) or math.isnan(start):
        raise ValueError(f"fault window start must be >= 0, got {start}")
    if not (end > start):
        raise ValueError(f"fault window must satisfy end > start, got [{start}, {end})")


def _check_proc(processor: int | None) -> None:
    if processor is not None and processor < 0:
        raise ValueError(f"processor index must be >= 0, got {processor}")


@dataclass(frozen=True)
class SlowdownFault:
    """Processor ``processor`` (``None`` = every processor) runs
    ``factor``× slower on ``[start, end)``.

    ``factor > 1`` is degradation, ``factor < 1`` a speedup; overlapping
    slowdowns on the same processor multiply.  ``end=inf`` makes the
    change permanent.
    """

    factor: float
    processor: int | None = None
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if not (self.factor > 0.0) or math.isinf(self.factor):
            raise ValueError(
                f"slowdown factor must be finite and > 0, got {self.factor} "
                "(use OutageFault for a dead processor)"
            )
        _check_proc(self.processor)
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class OutageFault:
    """Processor ``processor`` (``None`` = every processor) does no work
    on ``[start, end)``.

    Tasks scheduled there stall until recovery; a task already running
    when the outage begins is suspended and resumes at recovery with its
    progress intact.  ``end=inf`` is a permanent failure: work that has
    not finished by ``start`` never finishes on that processor.
    """

    processor: int | None = None
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        _check_proc(self.processor)
        _check_window(self.start, self.end)

    @property
    def permanent(self) -> bool:
        """True when the processor never recovers."""
        return math.isinf(self.end)


@dataclass(frozen=True)
class LinkFault:
    """Transfers ``src → dst`` starting in ``[start, end)`` take
    ``factor``× their nominal time (the paper's ``TR`` scaled by
    ``1/factor``).

    ``src``/``dst`` of ``None`` match every source / destination;
    overlapping matching faults multiply.  Intra-processor transfers stay
    free (their nominal time is zero).
    """

    factor: float
    src: int | None = None
    dst: int | None = None
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if not (self.factor > 0.0) or math.isinf(self.factor):
            raise ValueError(f"link factor must be finite and > 0, got {self.factor}")
        _check_proc(self.src)
        _check_proc(self.dst)
        _check_window(self.start, self.end)

    def matches(self, src: int, dst: int) -> bool:
        """Whether this fault applies to the ``src → dst`` link."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class TailFault:
    """Heavy-tailed duration outliers.

    Independently per (realization, task), with probability
    ``probability`` the base duration draw is replaced by

    ``high + excess * spread``

    where ``high`` is the worst-case bound ``(2·UL−1)·b``, ``spread`` is
    the support width ``high − low`` (``high`` itself for deterministic
    tasks), and ``excess`` is a Pareto(``shape``) or
    lognormal(0, ``shape``) draw.  Every outlier therefore lands at or
    beyond the worst case the scheduler planned for — the stragglers of
    the fault-tolerance literature.  ``tasks`` restricts the fault to a
    subset of task ids (``None`` = all tasks).
    """

    probability: float
    family: str = "pareto"
    shape: float = 1.5
    tasks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(
                f"tail probability must be in [0, 1], got {self.probability}"
            )
        if self.family not in ("pareto", "lognormal"):
            raise ValueError(
                f"tail family must be 'pareto' or 'lognormal', got {self.family!r}"
            )
        if not (self.shape > 0.0) or math.isinf(self.shape):
            raise ValueError(f"tail shape must be finite and > 0, got {self.shape}")
        if self.tasks is not None:
            tasks = tuple(int(t) for t in self.tasks)
            if any(t < 0 for t in tasks):
                raise ValueError(f"task ids must be >= 0, got {tasks}")
            object.__setattr__(self, "tasks", tasks)


_PROC_FAULTS = (SlowdownFault, OutageFault)


@dataclass(frozen=True)
class FaultScenario:
    """A named, ordered composition of faults.

    Attributes
    ----------
    name:
        Label used in reports and trace attributes.
    faults:
        The individual faults, applied jointly.
    relative_times:
        When true, every window bound is a fraction of the schedule's
        expected makespan ``M_0`` (resolved at assessment time), so the
        scenario scales with the instance.  Tail faults are unaffected
        (they carry no windows).
    """

    name: str = "scenario"
    faults: tuple = ()
    relative_times: bool = False

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for f in faults:
            if not isinstance(f, (SlowdownFault, OutageFault, LinkFault, TailFault)):
                raise TypeError(f"unknown fault type: {f!r}")
        object.__setattr__(self, "faults", faults)

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    @property
    def tail_faults(self) -> tuple[TailFault, ...]:
        """The duration-level faults (vectorized-path compatible)."""
        return tuple(f for f in self.faults if isinstance(f, TailFault))

    @property
    def proc_faults(self) -> tuple:
        """Slowdowns and outages — the processor-timeline faults."""
        return tuple(f for f in self.faults if isinstance(f, _PROC_FAULTS))

    @property
    def link_faults(self) -> tuple[LinkFault, ...]:
        """Communication-degradation faults."""
        return tuple(f for f in self.faults if isinstance(f, LinkFault))

    @property
    def time_dependent(self) -> bool:
        """Whether any fault requires the outage-aware event loop."""
        return bool(self.proc_faults) or bool(self.link_faults)

    @property
    def has_permanent_failures(self) -> bool:
        """Whether any processor is permanently lost."""
        return any(
            isinstance(f, OutageFault) and f.permanent for f in self.faults
        )

    def validate_for(self, n: int, m: int) -> None:
        """Raise if any fault references a task/processor outside ``n``/``m``."""
        for f in self.faults:
            if isinstance(f, _PROC_FAULTS) and f.processor is not None:
                if f.processor >= m:
                    raise ValueError(
                        f"{type(f).__name__} targets processor {f.processor} "
                        f"but the platform has {m}"
                    )
            elif isinstance(f, LinkFault):
                for side in (f.src, f.dst):
                    if side is not None and side >= m:
                        raise ValueError(
                            f"LinkFault endpoint {side} out of range for m={m}"
                        )
            elif isinstance(f, TailFault) and f.tasks is not None:
                bad = [t for t in f.tasks if t >= n]
                if bad:
                    raise ValueError(
                        f"TailFault targets tasks {bad} but the graph has {n}"
                    )

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #

    @classmethod
    def none(cls) -> "FaultScenario":
        """The empty scenario — assessment is bit-identical to the plain path."""
        return cls(name="none", faults=())

    @classmethod
    def processor_failures(
        cls, processors, *, start: float = 0.0
    ) -> "FaultScenario":
        """SIGKILL-grade scenario: the given processors fail permanently.

        Each processor gets a permanent :class:`OutageFault` from
        ``start`` (default 0 — dead on arrival); the replication layer
        (:mod:`repro.energy.replication`) verifies its backup schedules
        against exactly these scenarios.
        """
        procs = tuple(sorted({int(p) for p in processors}))
        if not procs:
            raise ValueError("need at least one failed processor")
        label = ",".join(str(p) for p in procs)
        return cls(
            name=f"fail[{label}]",
            faults=tuple(OutageFault(processor=p, start=start) for p in procs),
        )

    def environment(self, m: int, *, time_scale: float = 1.0):
        """Build the :class:`~repro.faults.environment.FaultEnvironment`
        realizing this scenario on an ``m``-processor platform.

        Returns ``None`` when the scenario has no time-dependent faults —
        the caller can keep the vectorized evaluation path.  With
        ``relative_times``, pass the schedule's ``M_0`` as *time_scale*.
        """
        if not self.time_dependent:
            return None
        from repro.faults.environment import FaultEnvironment

        scale = float(time_scale) if self.relative_times else 1.0
        if not (scale > 0.0) or math.isinf(scale):
            raise ValueError(f"time_scale must be finite and > 0, got {time_scale}")
        return FaultEnvironment(
            m, self.proc_faults, self.link_faults, time_scale=scale
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(type(f).__name__ for f in self.faults) or "no faults"
        return f"FaultScenario({self.name!r}: {kinds})"
