"""Fault-aware Monte-Carlo robustness assessment.

:func:`assess_robustness_faulty` is the fault-injecting variant of
:func:`repro.robustness.montecarlo.assess_robustness`: same protocol
(sample ``N`` duration realizations, realize makespans, derive
tardiness / miss-rate / R1 / R2), but each realization runs through a
:class:`~repro.faults.scenario.FaultScenario` under a reactive policy.

Determinism contract (pinned by the property suite): with the empty
scenario and the default ``rerun-static`` policy, the generator calls,
the realized makespan samples and every derived metric are **bit-identical**
to the plain :func:`assess_robustness` path — fault awareness costs
nothing when there are no faults.

Realizations that never complete (a permanent processor failure strands
work the policy cannot move) have infinite makespans; they drive the
mean makespan and tardiness to infinity (``R1 = 0``) and count as
deadline misses, which is exactly what an unrecoverable fault should do
to a robustness score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.perturb import apply_tail_faults, realize_perturbed
from repro.faults.policies import (
    luck_fractions,
    simulate_dynamic_faulty,
    simulate_repair,
)
from repro.faults.scenario import FaultScenario
from repro.heuristics.heft import upward_ranks
from repro.obs import runtime as obs
from repro.robustness.metrics import (
    mean_relative_tardiness,
    miss_rate,
    robustness_miss_rate,
    robustness_tardiness,
)
from repro.schedule.evaluation import batch_makespans, evaluate
from repro.schedule.schedule import Schedule
from repro.sim.eventsim import simulate
from repro.utils.rng import as_generator

__all__ = ["POLICIES", "FaultAssessment", "assess_robustness_faulty"]

#: The reactive policies a scenario can be assessed under.
POLICIES = ("rerun-static", "repair", "dynamic")


@dataclass(frozen=True)
class FaultAssessment:
    """Per-(schedule, scenario, policy) robustness under injected faults.

    Mirrors :class:`~repro.robustness.montecarlo.RobustnessReport` (same
    metric definitions, so numbers are directly comparable to the
    fault-free assessment) plus the fault bookkeeping.

    Attributes
    ----------
    scenario:
        Name of the assessed fault scenario.
    policy:
        Reactive policy (one of :data:`POLICIES`).
    expected_makespan:
        ``M_0`` — the promise made up front, always computed in the
        *fault-free* world (faults degrade delivery, not the promise).
        For the ``dynamic`` policy this is the makespan of the online run
        fed the expected durations.
    avg_slack:
        Average slack of the static schedule (``nan`` for ``dynamic``,
        which has no static schedule to take slack on).
    realized_makespans:
        The ``N`` per-realization makespans (``inf`` = never completed).
    n_failed:
        Realizations that never completed.
    n_tail_outliers:
        Duration draws replaced by heavy-tail outliers.
    n_redispatches:
        Repair actions taken (``repair`` policy only).
    """

    scenario: str
    policy: str
    expected_makespan: float
    avg_slack: float
    realized_makespans: np.ndarray
    mean_makespan: float
    mean_tardiness: float
    miss_rate: float
    r1: float
    r2: float
    n_failed: int
    n_tail_outliers: int
    n_redispatches: int

    @property
    def n_realizations(self) -> int:
        """Number of Monte-Carlo realizations behind this assessment."""
        return int(self.realized_makespans.size)


def _finalize(
    scenario: FaultScenario,
    policy: str,
    m0: float,
    avg_slack: float,
    realized: np.ndarray,
    n_outliers: int,
    n_redispatches: int,
) -> FaultAssessment:
    realized.setflags(write=False)
    n_failed = int(np.isinf(realized).sum())
    return FaultAssessment(
        scenario=scenario.name,
        policy=policy,
        expected_makespan=m0,
        avg_slack=avg_slack,
        realized_makespans=realized,
        mean_makespan=float(realized.mean()),
        mean_tardiness=mean_relative_tardiness(realized, m0),
        miss_rate=miss_rate(realized, m0),
        r1=robustness_tardiness(realized, m0),
        r2=robustness_miss_rate(realized, m0),
        n_failed=n_failed,
        n_tail_outliers=n_outliers,
        n_redispatches=n_redispatches,
    )


def assess_robustness_faulty(
    schedule: Schedule,
    scenario: FaultScenario | None = None,
    n_realizations: int = 1000,
    rng: np.random.Generator | int | None = None,
    *,
    policy: str = "rerun-static",
    family: str = "uniform",
    chunk_size: int | None = None,
) -> FaultAssessment:
    """Monte-Carlo robustness of *schedule* under *scenario* and *policy*.

    Parameters
    ----------
    schedule:
        The schedule under test (for ``policy="dynamic"`` only its
        problem is used — the online policy builds its own placements).
    scenario:
        The fault scenario; ``None`` means :meth:`FaultScenario.none`
        (then the default policy reproduces :func:`assess_robustness`
        bit-for-bit).
    n_realizations:
        ``N`` (paper default 1000).
    rng:
        Seed or generator for all draws (base durations first, tail
        faults after — the zero-fault stream layout matches the plain
        path exactly).
    policy:
        One of :data:`POLICIES`; see :mod:`repro.faults.policies`.
    family:
        Base duration distribution family (the faults perturb *on top*
        of it).
    chunk_size:
        Realization-axis chunking for the vectorized path (only used
        when the scenario has no time-dependent faults).

    Raises
    ------
    ValueError
        On an unknown policy, a fault referencing a task/processor the
        instance does not have, or invalid ``n_realizations``/``chunk_size``.
    """
    scenario = scenario if scenario is not None else FaultScenario.none()
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose one of {POLICIES}")
    n_realizations = int(n_realizations)
    if n_realizations < 1:
        raise ValueError(f"n_realizations must be >= 1, got {n_realizations}")
    if chunk_size is not None and int(chunk_size) < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    scenario.validate_for(schedule.n, schedule.m)

    gen = as_generator(rng)
    with obs.trace(
        "faults.assess",
        scenario=scenario.name,
        policy=policy,
        n_faults=len(scenario.faults),
        n_realizations=n_realizations,
    ):
        if scenario.faults:
            obs.add("faults.scenarios_assessed")
        if policy == "dynamic":
            return _assess_dynamic(
                schedule, scenario, n_realizations, gen, family
            )

        # Static-assignment policies share the plain path's draw order:
        # evaluate (no RNG), then realize_durations, then tail faults.
        static = evaluate(schedule)
        m0 = static.makespan
        perturbed = realize_perturbed(
            schedule, scenario, n_realizations, gen,
            family=family, time_scale=m0,
        )
        if perturbed.n_tail_outliers:
            obs.add("faults.tail_outliers", perturbed.n_tail_outliers)
        env = perturbed.env
        durations = perturbed.durations

        n_redispatches = 0
        if policy == "rerun-static":
            if env is None:
                # No time-dependent faults: the vectorized kernel stays
                # valid (and bit-identical to the plain path when the
                # tail faults fired nowhere).
                realized = batch_makespans(
                    schedule, durations, validate=False, chunk_size=chunk_size
                ).copy()
            else:
                obs.add("faults.windows_injected", env.n_windows)
                realized = np.empty(n_realizations, dtype=np.float64)
                for r in range(n_realizations):
                    realized[r] = simulate(
                        schedule, durations[r], env=env
                    ).makespan
        else:  # repair
            if env is not None:
                obs.add("faults.windows_injected", env.n_windows)
            priorities = upward_ranks(schedule.problem)
            realized = np.empty(n_realizations, dtype=np.float64)
            for r in range(n_realizations):
                run = simulate_repair(
                    schedule.problem,
                    schedule.proc_of,
                    durations[r],
                    env,
                    priorities,
                )
                realized[r] = run.makespan
                n_redispatches += int(
                    np.sum(run.proc_of != schedule.proc_of)
                )
        return _finalize(
            scenario, policy, m0, static.avg_slack, realized,
            perturbed.n_tail_outliers, n_redispatches,
        )


def _assess_dynamic(
    schedule: Schedule,
    scenario: FaultScenario,
    n_realizations: int,
    gen: np.random.Generator,
    family: str,
) -> FaultAssessment:
    """The ``dynamic`` policy: online MCT runs through the faulty world.

    ``M_0`` is the fault-free online run fed the expected durations —
    the promise an online scheduler would make up front — matching
    :func:`repro.sim.dynamic.assess_dynamic`.  Realizations draw the
    full ``(n, m)`` duration matrix so the placement choice always sees
    a consistent world; tail outliers are drawn per task (one luck per
    task and realization) and mapped to every processor's support so an
    outlier straggles wherever it lands.
    """
    problem = schedule.problem
    if family != "uniform":
        raise ValueError(
            "the dynamic policy supports only the uniform duration family"
        )
    priorities = upward_ranks(problem)
    m0 = simulate_dynamic_faulty(
        problem, problem.expected_times, None, priorities
    ).makespan

    unc = problem.uncertainty
    low_m = unc.bcet
    high_m = (2.0 * unc.ul - 1.0) * low_m
    env = scenario.environment(problem.m, time_scale=m0)
    if env is not None:
        obs.add("faults.windows_injected", env.n_windows)

    realized = np.empty(n_realizations, dtype=np.float64)
    n_outliers = 0
    # Representative per-task support for the shared-luck tail mapping:
    # the per-processor mean bounds.
    low_bar = low_m.mean(axis=1)
    high_bar = high_m.mean(axis=1)
    for r in range(n_realizations):
        durations = gen.uniform(low_m, high_m)
        if scenario.tail_faults:
            # Draw outliers on the mean support, then carry each task's
            # luck fraction to all processors.
            d_bar = durations.mean(axis=1)
            d_bar, k = apply_tail_faults(
                d_bar[None, :], low_bar, high_bar, scenario, gen
            )
            if k:
                n_outliers += k
                u = luck_fractions(d_bar[0], low_bar, high_bar)
                outlier_rows = u > 1.0
                if np.any(outlier_rows):
                    span = high_m - low_m
                    stretched = low_m + u[:, None] * np.where(
                        span > 0.0, span, high_m
                    )
                    durations = np.where(
                        outlier_rows[:, None], stretched, durations
                    )
        realized[r] = simulate_dynamic_faulty(
            problem, durations, env, priorities
        ).makespan
    if n_outliers:
        obs.add("faults.tail_outliers", n_outliers)
    return _finalize(
        scenario, "dynamic", m0, float("nan"), realized, n_outliers, 0
    )
