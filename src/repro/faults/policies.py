"""Reactive execution policies measured against fault scenarios.

Three ways to run a workload through a faulty environment, ordered by how
much runtime freedom they get:

``rerun-static``
    Keep the schedule exactly as planned (assignment *and* order); faults
    stretch, stall or — under permanent failures — strand it.  This is
    the paper's execution model dropped into the faulty world, evaluated
    by the outage-aware event loop (:func:`repro.sim.eventsim.simulate`
    with an environment).

``repair``
    Semi-dynamic re-dispatch: the offline *assignment* is kept, each
    processor reorders its assigned tasks at runtime (the
    :func:`repro.sim.dynamic.simulate_semi_dynamic` machinery made
    fault-aware), and a task whose processor can no longer finish it —
    the processor failed permanently — is re-dispatched MCT-style to the
    live processor minimizing its expected finish time.
    :func:`simulate_repair` implements it.

``dynamic``
    The fully online MCT baseline (:mod:`repro.sim.dynamic`) made
    fault-aware: every ready task goes to the processor minimizing its
    expected finish time given the realized state *and* the machine
    speeds, and dead processors are never chosen.
    :func:`simulate_dynamic_faulty` implements it.

Duration consistency across processors uses the *luck fraction*: a task
realized at ``d`` on its assigned processor carries
``u = (d − low) / (high − low)`` to any other processor ``q`` as
``low_q + u · (high_q − low_q)`` — the same quantile of the local
support, so re-dispatching never resamples the world.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.heuristics.heft import upward_ranks
from repro.obs import runtime as obs
from repro.sim.dynamic import DynamicRun

__all__ = ["luck_fractions", "simulate_repair", "simulate_dynamic_faulty"]

_INF = float("inf")


def luck_fractions(
    durations: np.ndarray, low: np.ndarray, high: np.ndarray
) -> np.ndarray:
    """Per-task quantile of each realized duration within its support.

    Deterministic tasks (``high == low``) get 0; heavy-tail outliers map
    above 1 and stay outliers on every processor.
    """
    span = high - low
    with np.errstate(invalid="ignore", divide="ignore"):
        u = np.where(span > 0.0, (durations - low) / np.where(span > 0, span, 1.0), 0.0)
    return u


def _durations_from_luck(u: np.ndarray, low_m: np.ndarray, high_m: np.ndarray) -> np.ndarray:
    """``(n, m)`` duration matrix realizing luck *u* on every processor."""
    return low_m + u[:, None] * (high_m - low_m)


def simulate_repair(
    problem: SchedulingProblem,
    proc_of: np.ndarray,
    durations: np.ndarray,
    env,
    priorities: np.ndarray | None = None,
) -> DynamicRun:
    """Fault-aware semi-dynamic execution with permanent-failure repair.

    Parameters
    ----------
    problem:
        The instance (expected times drive re-dispatch decisions).
    proc_of:
        ``(n,)`` offline processor assignment.
    durations:
        ``(n,)`` realized duration of each task *on its assigned
        processor*; re-dispatched tasks carry their luck fraction to the
        new processor.
    env:
        A :class:`~repro.faults.environment.FaultEnvironment` (may be
        ``None`` for a fault-free world).
    priorities:
        Tie-breaking priority (larger first); defaults to upward ranks.

    Notes
    -----
    Each processor commits, whenever it frees up, to the assigned
    dependency-satisfied task that can start earliest (ties to the higher
    priority) — the semi-dynamic policy.  Before committing, the policy
    checks the task can actually *finish* there; if the processor has
    failed permanently (finish time infinite) the task is re-dispatched
    to the live processor minimizing its expected finish time.  When no
    processor can finish a task, the run degrades to an infinite
    makespan — matching ``rerun-static`` semantics for a dead world.

    Returns a :class:`~repro.sim.dynamic.DynamicRun` whose ``proc_of``
    reflects re-dispatches; the number of re-dispatches is recorded on
    the observability counter ``faults.redispatches``.
    """
    n, m = problem.n, problem.m
    proc_of = np.asarray(proc_of, dtype=np.int64)
    if proc_of.shape != (n,):
        raise ValueError(f"proc_of must have shape ({n},), got {proc_of.shape}")
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (n,):
        raise ValueError(f"durations must have shape ({n},), got {durations.shape}")

    graph = problem.graph
    platform = problem.platform
    expected = problem.expected_times
    if priorities is None:
        priorities = upward_ranks(problem)

    low_m = problem.uncertainty.bcet
    high_m = (2.0 * problem.uncertainty.ul - 1.0) * low_m
    idx = np.arange(n)
    u = luck_fractions(durations, low_m[idx, proc_of], high_m[idx, proc_of])
    dur_m = _durations_from_luck(u, low_m, high_m)
    # On the assigned processor the realized duration is the input itself,
    # not its luck-fraction round-trip (which can differ by an ulp).
    dur_m[idx, proc_of] = durations

    remaining = graph.in_degree().astype(np.int64).copy()
    start = np.full(n, np.nan, dtype=np.float64)
    finish = np.full(n, np.nan, dtype=np.float64)
    started = np.zeros(n, dtype=bool)
    cur_proc = proc_of.copy()
    proc_free = np.zeros(m, dtype=np.float64)
    pools: list[set[int]] = [set() for _ in range(m)]
    for v in np.flatnonzero(remaining == 0):
        pools[int(proc_of[v])].add(int(v))

    events: list[tuple[float, int]] = []
    n_redispatch = 0

    def _comm(e: int, src: int, dst: int, t: float) -> float:
        c = platform.comm_time(float(graph.edge_data[e]), src, dst)
        if env is not None and c > 0.0:
            c *= env.comm_factor(src, dst, t)
        return c

    def _arrival(v: int, q: int) -> float:
        """Data-arrival bound of *v* on processor *q* (all preds finished)."""
        t = 0.0
        for e in graph.predecessor_edge_indices(v):
            w = int(graph.edge_src[e])
            a = finish[w] + _comm(e, int(cur_proc[w]), q, float(finish[w]))
            if a > t:
                t = a
        return t

    def _start_finish(v: int, q: int, work: float) -> tuple[float, float]:
        t0 = max(float(proc_free[q]), _arrival(v, q))
        if env is None:
            return t0, t0 + work
        t0 = env.earliest_start(q, t0)
        return t0, env.finish_time(q, t0, work)

    def _redispatch(v: int, p: int) -> None:
        """Move *v* off *p* to the best processor that can finish it.

        Candidate processors are those whose realized duration for *v*
        actually completes (finite finish given the failure timeline);
        among them the expected-EFT minimizer wins, mirroring MCT.  When
        no processor can finish *v* the task — and the realization — is
        lost: it completes at infinity so the run ends with an infinite
        makespan instead of deadlocking.  A task never returns to a
        processor it was re-dispatched away from (queues only grow), so
        each task moves at most ``m`` times.
        """
        nonlocal n_redispatch
        best_q, best_eft = -1, _INF
        for q in range(m):
            if q == p:
                continue
            _, f_real = _start_finish(v, q, float(dur_m[v, q]))
            if math.isinf(f_real):
                continue
            _, eft = _start_finish(v, q, float(expected[v, q]))
            if eft < best_eft:
                best_q, best_eft = q, eft
        pools[p].discard(v)
        if best_q < 0:
            start[v] = _INF
            finish[v] = _INF
            started[v] = True
            heapq.heappush(events, (_INF, v))
            return
        pools[best_q].add(v)
        cur_proc[v] = best_q
        n_redispatch += 1
        obs.event("faults.redispatch", task=v, src=p, dst=best_q)

    def try_start(p: int) -> bool:
        """Commit the best startable task of *p*; repair unfinishable ones.

        Starts at most one task (exactly the semi-dynamic commit rule, so
        the fault-free run is bit-identical to
        :func:`repro.sim.dynamic.simulate_semi_dynamic`).  Returns True
        only when it *re-dispatched* something — then the sweep iterates
        to a fixed point so a repaired task gets a start opportunity on
        its new processor before the loop blocks on the next event.
        """
        candidates = [v for v in pools[p] if not started[v]]
        if not candidates:
            return False
        best_v, best_t, best_f = -1, _INF, _INF
        for v in sorted(candidates, key=lambda v: -priorities[v]):
            t0, f = _start_finish(v, p, float(dur_m[v, p]))
            if t0 < best_t - 1e-15:
                best_v, best_t, best_f = v, t0, f
        if best_v < 0 or math.isinf(best_t):
            # The processor never runs again: everything still pooled
            # here needs a new home (or is lost, with infinite times).
            for v in list(pools[p]):
                if not started[v]:
                    _redispatch(v, p)
            return True
        if math.isinf(best_f):
            # Startable but not finishable (permanent failure mid-task):
            # repair just this task; the rest may still fit before death.
            _redispatch(best_v, p)
            return True
        start[best_v] = best_t
        finish[best_v] = best_f
        started[best_v] = True
        pools[p].discard(best_v)
        proc_free[p] = best_f
        heapq.heappush(events, (best_f, best_v))
        return False

    def sweep() -> None:
        changed = True
        while changed:
            changed = False
            for p in range(m):
                changed |= try_start(p)

    sweep()
    completed = 0
    while events:
        t, v = heapq.heappop(events)
        completed += 1
        for w in graph.successors(v):
            w = int(w)
            remaining[w] -= 1
            if remaining[w] == 0:
                pools[int(cur_proc[w])].add(w)
        sweep()

    if completed != n:  # pragma: no cover - graph validated acyclic
        raise RuntimeError("repair simulation deadlocked")
    if n_redispatch:
        obs.add("faults.redispatches", n_redispatch)
    start.setflags(write=False)
    finish.setflags(write=False)
    cur_proc.setflags(write=False)
    return DynamicRun(
        makespan=float(finish.max()) if n else 0.0,
        proc_of=cur_proc,
        start_times=start,
        finish_times=finish,
    )


def simulate_dynamic_faulty(
    problem: SchedulingProblem,
    durations: np.ndarray,
    env,
    priorities: np.ndarray | None = None,
) -> DynamicRun:
    """Online MCT execution in a faulty environment.

    The eager just-in-time list policy of
    :func:`repro.sim.dynamic.simulate_dynamic`, made fault-aware: the
    per-task placement minimizes the *expected* finish time computed
    through the environment's speed timelines (so a processor mid-outage
    or slowed down is priced accordingly), and a processor that can never
    finish the task (permanent failure) is never chosen while an
    alternative exists.

    Parameters
    ----------
    problem:
        The instance; expected times drive placement.
    durations:
        ``(n, m)`` realized execution times (the chosen processor's entry
        is consumed per task).
    env:
        A :class:`~repro.faults.environment.FaultEnvironment` or ``None``.
    priorities:
        Ready-queue priority (larger first); defaults to upward ranks.
    """
    n, m = problem.n, problem.m
    durations = np.asarray(durations, dtype=np.float64)
    if durations.shape != (n, m):
        raise ValueError(f"durations must be (n={n}, m={m}), got {durations.shape}")

    graph = problem.graph
    platform = problem.platform
    expected = problem.expected_times
    if priorities is None:
        priorities = upward_ranks(problem)

    remaining = graph.in_degree().astype(np.int64).copy()
    finish = np.full(n, np.nan, dtype=np.float64)
    start = np.full(n, np.nan, dtype=np.float64)
    proc_of = np.full(n, -1, dtype=np.int64)
    proc_free = np.zeros(m, dtype=np.float64)
    events: list[tuple[float, int]] = []

    def dispatch(v: int, now: float) -> None:
        best_p, best_est, best_eft = -1, _INF, _INF
        for p in range(m):
            arrival = now
            for e in graph.predecessor_edge_indices(v):
                w = int(graph.edge_src[e])
                c = platform.comm_time(float(graph.edge_data[e]), int(proc_of[w]), p)
                if env is not None and c > 0.0:
                    c *= env.comm_factor(int(proc_of[w]), p, float(finish[w]))
                a = finish[w] + c
                if a > arrival:
                    arrival = a
            est = max(float(proc_free[p]), arrival)
            if env is None:
                eft = est + float(expected[v, p])
            else:
                est = env.earliest_start(p, est)
                eft = env.finish_time(p, est, float(expected[v, p]))
            if eft < best_eft:
                best_p, best_est, best_eft = p, est, eft
        if best_p < 0:
            # Every processor is permanently dead: the task (and the
            # realization) is lost — record it with infinite times on
            # processor 0 so the run completes with an infinite makespan.
            best_p, best_est = 0, _INF
        if env is None:
            f = best_est + float(durations[v, best_p])
        else:
            f = env.finish_time(best_p, best_est, float(durations[v, best_p]))
        start[v] = best_est
        finish[v] = f
        proc_of[v] = best_p
        proc_free[best_p] = max(float(proc_free[best_p]), f)
        heapq.heappush(events, (f, v))

    for v in sorted((int(v) for v in graph.entry_nodes), key=lambda v: -priorities[v]):
        dispatch(v, 0.0)

    completed = 0
    while events:
        t, v = heapq.heappop(events)
        completed += 1
        newly_ready = []
        for w in graph.successors(v):
            w = int(w)
            remaining[w] -= 1
            if remaining[w] == 0:
                newly_ready.append(w)
        for w in sorted(newly_ready, key=lambda w: -priorities[w]):
            dispatch(w, t)

    if completed != n:  # pragma: no cover - graph validated acyclic
        raise RuntimeError("faulty dynamic simulation failed to complete all tasks")
    start.setflags(write=False)
    finish.setflags(write=False)
    proc_of.setflags(write=False)
    return DynamicRun(
        makespan=float(finish.max()) if n else 0.0,
        proc_of=proc_of,
        start_times=start,
        finish_times=finish,
    )
