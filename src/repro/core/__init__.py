"""Core layer: the scheduling problem instance and the paper's headline API.

* :class:`~repro.core.problem.SchedulingProblem` — a task graph + platform +
  uncertainty model bundle, the input of every scheduler in the library.
* :class:`~repro.core.robust.RobustScheduler` — the paper's contribution:
  the ε-constraint bi-objective GA that maximizes average slack subject to
  ``M_0(s) <= eps * M_HEFT`` (Eqn. 7), plus helpers to evaluate robustness
  and overall performance of the result.
"""

from repro.core.problem import SchedulingProblem
from repro.core.robust import RobustResult, RobustScheduler

__all__ = ["SchedulingProblem", "RobustScheduler", "RobustResult"]
