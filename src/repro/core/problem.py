"""The robust-scheduling problem instance (paper Sec. 3.1 + Sec. 5 setup).

A :class:`SchedulingProblem` bundles everything a scheduler needs:

* the task graph ``G`` with per-edge data sizes;
* the platform (processors + transfer rates);
* the uncertainty model (best-case times ``B``, levels ``UL``), from which
  the *expected* execution-time matrix ``E = UL ∘ B`` — the only timing
  information any scheduler in this library is allowed to see — derives.

:meth:`SchedulingProblem.random` reproduces the paper's experimental
instance generator: a layered random DAG (``n``, ``alpha``, ``cc``, ``CCR``),
a COV-based BCET matrix (``V_task = V_mach = 0.5``) and a two-stage-gamma
``UL`` matrix (``V1 = V2 = 0.5``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.generator import DagParams, random_dag
from repro.graph.taskgraph import TaskGraph
from repro.platform.etc import EtcParams, generate_etc
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, UncertaintyParams
from repro.utils.rng import as_generator

__all__ = ["SchedulingProblem"]


@dataclass(frozen=True)
class SchedulingProblem:
    """A task graph, a platform, and an uncertainty model.

    Attributes
    ----------
    graph:
        The application DAG.
    platform:
        The heterogeneous platform.
    uncertainty:
        Best-case times and uncertainty levels; ``uncertainty.expected_times``
        is the scheduler-visible ``n x m`` expected execution-time matrix.
    name:
        Label used in reports.
    """

    graph: TaskGraph
    platform: Platform
    uncertainty: UncertaintyModel
    name: str = field(default="problem")

    def __post_init__(self) -> None:
        if self.uncertainty.n != self.graph.n:
            raise ValueError(
                f"uncertainty model covers {self.uncertainty.n} tasks but the "
                f"graph has {self.graph.n}"
            )
        if self.uncertainty.m != self.platform.m:
            raise ValueError(
                f"uncertainty model covers {self.uncertainty.m} processors but "
                f"the platform has {self.platform.m}"
            )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of tasks."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of processors."""
        return self.platform.m

    @property
    def expected_times(self) -> np.ndarray:
        """Scheduler-visible expected execution-time matrix ``E = UL ∘ B``."""
        return self.uncertainty.expected_times

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #

    @classmethod
    def random(
        cls,
        m: int = 4,
        dag_params: DagParams | None = None,
        etc_params: EtcParams | None = None,
        uncertainty_params: UncertaintyParams | None = None,
        rng: np.random.Generator | int | None = None,
        *,
        name: str | None = None,
    ) -> "SchedulingProblem":
        """Generate a random instance with the paper's methodology.

        Parameters
        ----------
        m:
            Processor count.  The paper never states it outside the 4-processor
            worked example (Fig. 1); 4 is therefore the default.
        dag_params:
            Graph-generator inputs; defaults to the paper's
            ``n=100, alpha=1, cc=20, CCR=0.1``.
        etc_params:
            BCET generator inputs; ``mu_task`` defaults to ``dag_params.cc``
            so the two stay consistent, with ``V_task = V_mach = 0.5``.
        uncertainty_params:
            UL generator inputs; defaults to ``mean UL = 2, V1 = V2 = 0.5``.
        rng:
            Seed or generator; three child streams are derived for the
            graph, the BCET matrix and the UL matrix.
        """
        gen = as_generator(rng)
        g_rng, b_rng, u_rng = gen.spawn(3)
        dag_params = dag_params or DagParams()
        etc_params = etc_params or EtcParams(mu_task=dag_params.cc)
        uncertainty_params = uncertainty_params or UncertaintyParams()

        graph = random_dag(dag_params, g_rng)
        platform = Platform(m)
        bcet = generate_etc(graph.n, m, etc_params, b_rng)
        uncertainty = UncertaintyModel.generate(bcet, uncertainty_params, u_rng)
        label = name or f"random(n={graph.n},m={m},UL={uncertainty_params.mean_ul})"
        return cls(graph=graph, platform=platform, uncertainty=uncertainty, name=label)

    @classmethod
    def deterministic(
        cls,
        graph: TaskGraph,
        times: np.ndarray,
        platform: Platform | None = None,
        *,
        name: str = "deterministic",
    ) -> "SchedulingProblem":
        """Wrap a classic deterministic instance (``UL = 1`` everywhere).

        Useful for unit tests against hand-worked schedules and for running
        the library as a plain HEFT-style scheduler.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.ndim != 2 or times.shape[0] != graph.n:
            raise ValueError(
                f"times must be (n={graph.n}, m) execution times, got {times.shape}"
            )
        platform = platform or Platform(times.shape[1])
        return cls(
            graph=graph,
            platform=platform,
            uncertainty=UncertaintyModel.deterministic(times),
            name=name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SchedulingProblem(name={self.name!r}, n={self.n}, m={self.m}, "
            f"edges={self.graph.num_edges})"
        )
