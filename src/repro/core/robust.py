"""The paper's headline algorithm as a one-call API.

:class:`RobustScheduler` wires together everything Sec. 4 describes:

1. run HEFT to obtain the reference makespan ``M_HEFT``;
2. build the ε-constraint fitness (Eqn. 8) with the user's ``ε``;
3. evolve with the GA (Sec. 4.2), seeding the initial population with the
   HEFT chromosome;
4. return the slack-maximal schedule satisfying
   ``M_0(s) <= ε · M_HEFT`` (Eqn. 7), along with the HEFT baseline for
   comparison.

Typical use::

    problem = SchedulingProblem.random(m=4, rng=0)
    result = RobustScheduler(epsilon=1.3, rng=1).solve(problem)
    report = assess_robustness(result.schedule, n_realizations=1000, rng=2)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.ga.engine import GAParams, GAResult, GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness
from repro.heuristics.heft import HeftScheduler
from repro.schedule.evaluation import evaluate, expected_makespan
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["RobustScheduler", "RobustResult"]


@dataclass(frozen=True)
class RobustResult:
    """Everything produced by one ε-constraint solve.

    Attributes
    ----------
    schedule:
        The best schedule found by the GA.
    heft_schedule:
        The HEFT baseline schedule of the same problem.
    m_heft:
        ``M_HEFT`` — expected makespan of the baseline.
    epsilon:
        The constraint multiplier used.
    ga_result:
        Full GA outcome (history, stop reason, ...).
    """

    schedule: Schedule
    heft_schedule: Schedule
    m_heft: float
    epsilon: float
    ga_result: GAResult

    @property
    def expected_makespan(self) -> float:
        """``M_0`` of the returned schedule."""
        return evaluate(self.schedule).makespan

    @property
    def avg_slack(self) -> float:
        """Average slack of the returned schedule."""
        return evaluate(self.schedule).avg_slack

    @property
    def feasible(self) -> bool:
        """Whether the returned schedule satisfies the ε-constraint."""
        return self.expected_makespan <= self.epsilon * self.m_heft * (1 + 1e-12)


class RobustScheduler:
    """ε-constraint robust scheduler (Eqn. 7): max slack s.t. bounded makespan.

    Parameters
    ----------
    epsilon:
        Makespan budget as a multiple of ``M_HEFT`` (paper sweeps 1.0–2.0).
    params:
        GA hyper-parameters; defaults to the paper's
        (``Np=20, pc=0.9, pm=0.1``, 1000 iterations / 100 stagnation).
    rng:
        Seed or generator driving the GA.
    warm_start:
        Optional chromosomes seeding the GA's initial population (see
        :class:`~repro.ga.engine.GeneticScheduler`); the solve stays
        deterministic in ``(problem, params, rng, warm_start)``.
    """

    name = "robust-ga"

    def __init__(
        self,
        epsilon: float = 1.0,
        params: GAParams | None = None,
        rng: np.random.Generator | int | None = None,
        *,
        warm_start=None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)
        self.params = params or GAParams()
        self._rng = as_generator(rng)
        self.warm_start = warm_start

    def solve(self, problem: SchedulingProblem) -> RobustResult:
        """Run the full pipeline on *problem*."""
        heft_schedule = HeftScheduler().schedule(problem)
        m_heft = expected_makespan(heft_schedule)
        fitness = EpsilonConstraintFitness(self.epsilon, m_heft)
        engine = GeneticScheduler(
            fitness, self.params, self._rng, warm_start=self.warm_start
        )
        ga_result = engine.run(problem)
        return RobustResult(
            schedule=ga_result.schedule,
            heft_schedule=heft_schedule,
            m_heft=m_heft,
            epsilon=self.epsilon,
            ga_result=ga_result,
        )

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Scheduler-protocol facade returning only the best schedule."""
        return self.solve(problem).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RobustScheduler(epsilon={self.epsilon})"
