"""Task-graph layer: DAG data structure, random generation, analysis.

This layer is platform-agnostic: a :class:`~repro.graph.taskgraph.TaskGraph`
only knows tasks, precedence edges, and per-edge data sizes.  Execution
times live in :mod:`repro.platform`.
"""

from repro.graph.analysis import (
    critical_path,
    critical_path_length,
    dag_levels,
)
from repro.graph.generator import DagParams, random_dag
from repro.graph.taskgraph import TaskGraph
from repro.graph.topology import (
    ancestors_mask,
    descendants_mask,
    is_topological_order,
    random_topological_order,
    topological_order,
)

__all__ = [
    "TaskGraph",
    "DagParams",
    "random_dag",
    "topological_order",
    "random_topological_order",
    "is_topological_order",
    "ancestors_mask",
    "descendants_mask",
    "critical_path",
    "critical_path_length",
    "dag_levels",
]
