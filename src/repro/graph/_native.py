"""Optional C acceleration for the batched longest-path kernel.

The Monte-Carlo hot loop reduces to one forward pass over the disjunctive
graph with a wide realization axis.  The numpy level-synchronous kernel is
memory-bandwidth bound: every level pays a full-width gather, an edge-weight
add and a segment reduction over padded candidate rows — roughly three
streamed passes over the edge rectangle per level.  The C kernel below walks
the nodes once in topological order and keeps each node's realization row in
L1 while folding gather, add, max and the node-weight add into a single
edge-driven loop, cutting memory traffic several-fold.

The extension is strictly optional and self-contained:

* compiled lazily, at most once per process, with whatever ``cc`` the host
  provides (no build-time or install-time dependency);
* cached in the system temp directory keyed by a hash of the source, so
  repeated runs pay nothing;
* disabled by setting ``REPRO_NATIVE=0`` in the environment;
* any failure — no compiler, sandboxed temp dir, dlopen error — silently
  falls back to the pure-numpy kernels, which remain the reference-tested
  implementation.

Bit-exactness: the C recurrence ``ft[v] = w[v] + max_u(ft[u] + c)`` (first
in-edge candidate overwrites, no zero floor — entry nodes start at ``w[v]``)
performs the same float64 additions and comparisons in the same per-edge
candidate form as the reference per-node pass, so results are bit-identical
(``max`` over an identical candidate set is order-independent).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

__all__ = ["get_lib"]

_C_SOURCE = r"""
#include <stdint.h>

/* Forward finish-time pass, node-major state.
 *
 * topo   : (n,)   topological order of the nodes
 * indptr : (n+1,) CSR row pointer grouping edge ids by destination
 * eidx   : (m,)   edge ids grouped by destination
 * esrc   : (m,)   source node of every edge
 * ew     : (m,)   edge weights
 * nw     : (n*r,) node weights, node-major (row v = realizations of v)
 * ft     : (n*r,) output finish times, node-major
 *
 * ft[v] = nw[v] + max over in-edges e of (ft[src(e)] + ew[e]); entry
 * nodes (no in-edges) get ft[v] = nw[v].  The first in-edge overwrites
 * rather than maxing against an initial value, matching the reference
 * pass (which scatters the plain candidate max with no zero floor).
 */
void ft_forward(int64_t n, int64_t r,
                const int64_t *topo,
                const int64_t *indptr,
                const int64_t *eidx,
                const int64_t *esrc,
                const double *ew,
                const double *nw,
                double *ft)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t v = topo[i];
        double *row = ft + v * r;
        const double *w = nw + v * r;
        int64_t p = indptr[v];
        int64_t p_end = indptr[v + 1];
        if (p == p_end) {
            for (int64_t j = 0; j < r; j++)
                row[j] = 0.0;
        } else {
            int64_t e = eidx[p];
            const double *fu = ft + esrc[e] * r;
            double c = ew[e];
            for (int64_t j = 0; j < r; j++)
                row[j] = fu[j] + c;
            p++;
        }
        for (; p < p_end; p++) {
            int64_t e = eidx[p];
            const double *fu = ft + esrc[e] * r;
            double c = ew[e];
            for (int64_t j = 0; j < r; j++) {
                double cand = fu[j] + c;
                if (cand > row[j])
                    row[j] = cand;
            }
        }
        for (int64_t j = 0; j < r; j++)
            row[j] += w[j];
    }
}
"""

_lib: ctypes.CDLL | None = None
_tried = False


def _compile(so_path: str, c_path: str) -> bool:
    """Try progressively more conservative flag sets; True on success."""
    tmp = so_path + ".tmp"
    for flags in (["-O3", "-march=native"], ["-O3"], ["-O2"]):
        result = subprocess.run(
            ["cc", *flags, "-shared", "-fPIC", "-o", tmp, c_path],
            capture_output=True,
        )
        if result.returncode == 0:
            os.replace(tmp, so_path)
            return True
    return False


def get_lib() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable.

    Compilation is attempted at most once per process; every failure mode
    degrades to ``None`` so callers can fall back to the numpy kernels.
    """
    global _lib, _tried
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    try:
        digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
        cache = os.path.join(tempfile.gettempdir(), f"repro-native-{digest}")
        os.makedirs(cache, exist_ok=True)
        so_path = os.path.join(cache, "kernels.so")
        if not os.path.exists(so_path):
            c_path = os.path.join(cache, "kernels.c")
            with open(c_path, "w", encoding="utf-8") as fh:
                fh.write(_C_SOURCE)
            if not _compile(so_path, c_path):
                return None
        lib = ctypes.CDLL(so_path)
        lib.ft_forward.restype = None
        lib.ft_forward.argtypes = [ctypes.c_int64, ctypes.c_int64] + [
            ctypes.c_void_p
        ] * 7
        _lib = lib
    except Exception:
        _lib = None
    return _lib
