"""Optional C acceleration for the batched longest-path and GA kernels.

Two hot loops live here:

* **Batched makespans** (``ft_forward``): the Monte-Carlo hot loop reduces
  to one forward pass over the disjunctive graph with a wide realization
  axis.  The numpy level-synchronous kernel is memory-bandwidth bound:
  every level pays a full-width gather, an edge-weight add and a segment
  reduction over padded candidate rows — roughly three streamed passes
  over the edge rectangle per level.  The C kernel walks the nodes once in
  topological order and keeps each node's realization row in L1 while
  folding gather, add, max and the node-weight add into a single
  edge-driven loop, cutting memory traffic several-fold.

* **Population GA evaluation** (``ga_population_eval``): the GA hot loop
  is the opposite shape — many *small* problems (one per chromosome)
  rather than one wide one.  Per-individual Python/numpy dispatch (decode
  a ``Schedule``, run the scalar forward/backward passes) dominates the
  arithmetic by well over an order of magnitude.  The population kernel
  takes the whole population's scheduling strings and processor maps and,
  for each individual, performs the decode (chain edges are implicit in
  the string), the disjunctive forward pass, the optional backward pass
  and the slack computation entirely in C, parallelised over individuals
  with OpenMP when the toolchain supports ``-fopenmp`` (probed at compile
  time; ``has_openmp`` reports the outcome).

The extension is strictly optional and self-contained:

* compiled lazily, at most once per process, with whatever ``cc`` the host
  provides (no build-time or install-time dependency); compilation and
  loading are guarded by a process-wide lock so concurrent first callers
  (e.g. the service's fast-tier thread pool) race neither the filesystem
  nor the module state;
* cached in the system temp directory keyed by a hash of the source, so
  repeated runs pay nothing;
* disabled by setting ``REPRO_NATIVE=0`` in the environment;
* any failure — no compiler, sandboxed temp dir, dlopen error — silently
  falls back to the pure-numpy kernels, which remain the reference-tested
  implementation.

Bit-exactness: every C recurrence performs the same float64 additions and
comparisons in the same per-edge candidate form as the scalar reference
passes — ``ft[v] = w[v] + max_u(ft[u] + c)`` with first-candidate
overwrite and no zero floor for the forward pass,
``bl[v] = max_t(w[v] + (bl[t] + c))`` for the backward pass, and
``slack = (M - bl) - tl`` clamped at zero with NaN passthrough — so
results are bit-identical (``max`` over an identical candidate set is
order-independent).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading

__all__ = ["get_lib", "has_openmp"]

_C_SOURCE = r"""
#include <stdint.h>

/* Forward finish-time pass, node-major state.
 *
 * topo   : (n,)   topological order of the nodes
 * indptr : (n+1,) CSR row pointer grouping edge ids by destination
 * eidx   : (m,)   edge ids grouped by destination
 * esrc   : (m,)   source node of every edge
 * ew     : (m,)   edge weights
 * nw     : (n*r,) node weights, node-major (row v = realizations of v)
 * ft     : (n*r,) output finish times, node-major
 *
 * ft[v] = nw[v] + max over in-edges e of (ft[src(e)] + ew[e]); entry
 * nodes (no in-edges) get ft[v] = nw[v].  The first in-edge overwrites
 * rather than maxing against an initial value, matching the reference
 * pass (which scatters the plain candidate max with no zero floor).
 */
void ft_forward(int64_t n, int64_t r,
                const int64_t *topo,
                const int64_t *indptr,
                const int64_t *eidx,
                const int64_t *esrc,
                const double *ew,
                const double *nw,
                double *ft)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t v = topo[i];
        double *row = ft + v * r;
        const double *w = nw + v * r;
        int64_t p = indptr[v];
        int64_t p_end = indptr[v + 1];
        if (p == p_end) {
            for (int64_t j = 0; j < r; j++)
                row[j] = 0.0;
        } else {
            int64_t e = eidx[p];
            const double *fu = ft + esrc[e] * r;
            double c = ew[e];
            for (int64_t j = 0; j < r; j++)
                row[j] = fu[j] + c;
            p++;
        }
        for (; p < p_end; p++) {
            int64_t e = eidx[p];
            const double *fu = ft + esrc[e] * r;
            double c = ew[e];
            for (int64_t j = 0; j < r; j++) {
                double cand = fu[j] + c;
                if (cand > row[j])
                    row[j] = cand;
            }
        }
        for (int64_t j = 0; j < r; j++)
            row[j] += w[j];
    }
}

#ifdef _OPENMP
#include <omp.h>
#endif

/* 1 when the library was compiled with OpenMP support. */
int64_t has_openmp(void)
{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* One individual of the population kernel (see ga_population_eval).
 *
 * The disjunctive graph is never materialised: walking the scheduling
 * string keeps a per-processor "last task" cursor, which IS the chain
 * edge of Def. 3.1, and the task-graph edges come from the shared CSR
 * indexes.  A chain pair that is also a task-graph edge yields two
 * equal-valued candidates (same-processor communication is exactly
 * 0.0), which max() absorbs, so the candidate set matches the
 * deduplicated disjunctive graph bit-for-bit.
 *
 * tl/bl/w are per-thread scratch rows of length n; cur is a
 * per-thread scratch row of length m.
 */
static void ga_eval_one(
    int64_t n, int64_t m, int64_t need_slack,
    const int64_t *ord, const int64_t *pr,
    const int64_t *pred_indptr, const int64_t *pred_eidx,
    const int64_t *esrc,
    const int64_t *succ_indptr, const int64_t *succ_eidx,
    const int64_t *edst,
    const double *edata, const double *inv_rates, const double *dur,
    double *tl, double *bl, double *w, int64_t *cur,
    double *makespan_out, double *slack_row)
{
    for (int64_t j = 0; j < m; j++)
        cur[j] = -1;
    for (int64_t v = 0; v < n; v++)
        w[v] = dur[v * m + pr[v]];

    /* Forward pass: tl[v] = max over disjunctive in-edges of
     * (tl[u] + w[u]) + c, first candidate overwriting (entries stay 0),
     * exactly the scalar top_levels recurrence. */
    double mk = 0.0;
    for (int64_t i = 0; i < n; i++) {
        int64_t v = ord[i];
        int64_t pv = pr[v];
        double best = 0.0;
        int first = 1;
        int64_t u = cur[pv];
        if (u >= 0) {
            best = (tl[u] + w[u]) + 0.0;
            first = 0;
        }
        for (int64_t p = pred_indptr[v]; p < pred_indptr[v + 1]; p++) {
            int64_t e = pred_eidx[p];
            int64_t s = esrc[e];
            double c = edata[e] * inv_rates[pr[s] * m + pv];
            double cand = (tl[s] + w[s]) + c;
            if (first || cand > best) {
                best = cand;
                first = 0;
            }
        }
        tl[v] = best;
        double fin = best + w[v];
        if (i == 0 || fin > mk)
            mk = fin;
        cur[pv] = v;
    }
    *makespan_out = mk;

    if (!need_slack)
        return;

    /* Backward pass: bl[v] = max over disjunctive out-edges of
     * w[v] + (bl[t] + c), initialised to w[v] for sinks — the scalar
     * bottom_levels recurrence (max commutes with the monotone w[v]
     * add, so first-overwrite semantics match). */
    for (int64_t j = 0; j < m; j++)
        cur[j] = -1;
    for (int64_t i = n - 1; i >= 0; i--) {
        int64_t v = ord[i];
        int64_t pv = pr[v];
        double best = w[v];
        int first = 1;
        int64_t u = cur[pv];
        if (u >= 0) {
            best = w[v] + (bl[u] + 0.0);
            first = 0;
        }
        for (int64_t p = succ_indptr[v]; p < succ_indptr[v + 1]; p++) {
            int64_t e = succ_eidx[p];
            int64_t t = edst[e];
            double c = edata[e] * inv_rates[pv * m + pr[t]];
            double val = w[v] + (bl[t] + c);
            if (first || val > best) {
                best = val;
                first = 0;
            }
        }
        bl[v] = best;
        cur[pv] = v;
    }

    /* slack = (M - Bl) - Tl clamped at zero; the comparison (not fmax)
     * preserves NaN exactly like numpy.maximum. */
    for (int64_t v = 0; v < n; v++) {
        double s = (mk - bl[v]) - tl[v];
        if (s < 0.0)
            s = 0.0;
        slack_row[v] = s;
    }
}

/* Population-wide GA evaluation: decode + forward + backward + slack
 * for every individual in one call.
 *
 * pop      : number of individuals
 * n, m     : tasks, processors
 * need_slack : 0 = makespans only, 1 = also fill the slack matrix
 * n_threads  : OpenMP width (scratch has this many rows); ignored
 *              without OpenMP
 * orders   : (pop, n) scheduling strings (topological orders)
 * procs    : (pop, n) processor index per task
 * pred_*   : task-graph in-edge CSR (indptr by dst, edge ids, sources)
 * succ_*   : task-graph out-edge CSR (indptr by src, edge ids, dests)
 * edata    : (ne,) per-edge data sizes
 * inv_rates: (m, m) reciprocal transfer rates, zero diagonal
 * dur      : (n, m) duration of task v on processor p
 * ws_f     : (n_threads, 3n) float scratch
 * ws_i     : (n_threads, m) int scratch
 * makespans: (pop,) output
 * slacks   : (pop, n) output (written only when need_slack)
 */
void ga_population_eval(
    int64_t pop, int64_t n, int64_t m,
    int64_t need_slack, int64_t n_threads,
    const int64_t *orders, const int64_t *procs,
    const int64_t *pred_indptr, const int64_t *pred_eidx,
    const int64_t *esrc,
    const int64_t *succ_indptr, const int64_t *succ_eidx,
    const int64_t *edst,
    const double *edata, const double *inv_rates, const double *dur,
    double *ws_f, int64_t *ws_i,
    double *makespans, double *slacks)
{
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads((int)n_threads)
#endif
    for (int64_t p = 0; p < pop; p++) {
        int64_t t = 0;
#ifdef _OPENMP
        t = (int64_t)omp_get_thread_num();
#endif
        double *tl = ws_f + t * 3 * n;
        ga_eval_one(n, m, need_slack,
                    orders + p * n, procs + p * n,
                    pred_indptr, pred_eidx, esrc,
                    succ_indptr, succ_eidx, edst,
                    edata, inv_rates, dur,
                    tl, tl + n, tl + 2 * n, ws_i + t * m,
                    makespans + p, slacks + p * n);
    }
}
"""

_lib: ctypes.CDLL | None = None
_tried = False
_lock = threading.Lock()


def _compile(so_path: str, c_path: str) -> bool:
    """Try progressively more conservative flag sets; True on success.

    OpenMP variants come first so the population kernel parallelises
    over individuals where the toolchain allows; plain builds remain
    fully functional (single-threaded population loop).  The temp object
    is pid-unique and moved into place atomically, so concurrent
    *processes* sharing the cache directory cannot observe a torn file.
    """
    tmp = f"{so_path}.{os.getpid()}.tmp"
    flag_sets = (
        ["-O3", "-march=native", "-fopenmp"],
        ["-O3", "-fopenmp"],
        ["-O3", "-march=native"],
        ["-O3"],
        ["-O2"],
    )
    for flags in flag_sets:
        result = subprocess.run(
            ["cc", *flags, "-shared", "-fPIC", "-o", tmp, c_path],
            capture_output=True,
        )
        if result.returncode == 0:
            os.replace(tmp, so_path)
            return True
    return False


def _load() -> ctypes.CDLL | None:
    """Compile (if needed) and load the kernel library; None on failure."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = os.path.join(tempfile.gettempdir(), f"repro-native-{digest}")
    os.makedirs(cache, exist_ok=True)
    so_path = os.path.join(cache, "kernels.so")
    if not os.path.exists(so_path):
        c_path = os.path.join(cache, f"kernels.{os.getpid()}.c")
        with open(c_path, "w", encoding="utf-8") as fh:
            fh.write(_C_SOURCE)
        try:
            if not _compile(so_path, c_path):
                return None
        finally:
            try:
                os.remove(c_path)
            except OSError:
                pass
    lib = ctypes.CDLL(so_path)
    lib.ft_forward.restype = None
    lib.ft_forward.argtypes = [ctypes.c_int64, ctypes.c_int64] + [
        ctypes.c_void_p
    ] * 7
    lib.has_openmp.restype = ctypes.c_int64
    lib.has_openmp.argtypes = []
    lib.ga_population_eval.restype = None
    lib.ga_population_eval.argtypes = [ctypes.c_int64] * 5 + [
        ctypes.c_void_p
    ] * 15
    return lib


def get_lib() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable.

    Compilation is attempted at most once per process; every failure mode
    degrades to ``None`` so callers can fall back to the numpy kernels.
    Thread-safe: a process-wide lock serialises the first-compile race
    (the service's fast tier evaluates on a thread pool), and the
    double-checked fast path keeps the steady state lock-free.
    """
    global _lib, _tried
    if _tried:
        return _lib
    with _lock:
        if _tried:
            return _lib
        lib: ctypes.CDLL | None = None
        if os.environ.get("REPRO_NATIVE", "1") != "0":
            try:
                lib = _load()
            except Exception:
                lib = None
        # Publish the result only after it is fully initialised; _tried
        # flips last so racing readers of the unlocked fast path never
        # observe a half-built library.
        _lib = lib
        _tried = True
    return _lib


def has_openmp() -> bool:
    """Whether the loaded kernel library was compiled with OpenMP."""
    lib = get_lib()
    return bool(lib is not None and lib.has_openmp())
