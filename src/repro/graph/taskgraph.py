"""Immutable DAG task-graph data structure (paper Sec. 3.1).

A task graph is ``G = (V, E)`` with ``n`` tasks and a data-size attached to
every directed edge (the paper's matrix ``D``; we store it sparsely).  The
structure is numpy-backed and immutable: construction validates acyclicity
and precomputes CSR-style predecessor/successor indexes used by the
schedule evaluator, which is the hot path of the whole library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

__all__ = ["TaskGraph"]


def _build_csr(
    n: int, keys: np.ndarray, order: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group edge indices by *keys* (node ids) into a CSR (indptr, indices) pair.

    ``indices[indptr[v]:indptr[v+1]]`` lists positions into the edge arrays
    of all edges whose *keys* entry equals ``v``, following *order*.
    """
    counts = np.bincount(keys, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, order.astype(np.int64, copy=False)


class TaskGraph:
    """A directed acyclic task graph with per-edge data sizes.

    Parameters
    ----------
    n:
        Number of tasks; tasks are identified by integers ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` precedence pairs (``u`` must complete before
        ``v`` starts).  Duplicate edges are rejected.
    data_sizes:
        Per-edge amount of data transferred from ``u`` to ``v`` (the paper's
        ``d_uv``), aligned with *edges*.  Defaults to zeros (no
        communication).
    name:
        Optional label used in ``repr`` and experiment reports.

    Raises
    ------
    ValueError
        If an edge endpoint is out of range, an edge is duplicated or a
        self-loop, a data size is negative, or the graph contains a cycle.

    Notes
    -----
    The instance is logically immutable: all arrays are set non-writeable.
    Derived quantities (entry/exit nodes, a canonical topological order)
    are computed eagerly because every downstream component needs them.
    """

    __slots__ = (
        "n",
        "name",
        "edge_src",
        "edge_dst",
        "edge_data",
        "_succ_indptr",
        "_succ_eidx",
        "_pred_indptr",
        "_pred_eidx",
        "_topo",
        "_entry",
        "_exit",
        "_dag",
        "_edge_keys",
        "_succ_lists",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        data_sizes: Iterable[float] | None = None,
        *,
        name: str = "taskgraph",
    ) -> None:
        if n <= 0:
            raise ValueError(f"task graph needs at least one task, got n={n}")
        self.n = int(n)
        self.name = str(name)

        edge_list = [(int(u), int(v)) for u, v in edges]
        m = len(edge_list)
        src = np.fromiter((u for u, _ in edge_list), dtype=np.int64, count=m)
        dst = np.fromiter((v for _, v in edge_list), dtype=np.int64, count=m)
        if m and (src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n):
            raise ValueError("edge endpoint out of range")
        if np.any(src == dst):
            raise ValueError("self-loops are not allowed in a task graph")
        if len({*edge_list}) != m:
            raise ValueError("duplicate edges are not allowed")

        if data_sizes is None:
            data = np.zeros(m, dtype=np.float64)
        else:
            data = np.asarray(list(data_sizes), dtype=np.float64)
            if data.shape != (m,):
                raise ValueError(
                    f"data_sizes must have one entry per edge ({m}), got {data.shape}"
                )
            if np.any(~np.isfinite(data)) or np.any(data < 0):
                raise ValueError("data sizes must be finite and non-negative")

        # Canonical edge order: sorted by (src, dst) for reproducibility.
        order = np.lexsort((dst, src))
        self.edge_src = src[order]
        self.edge_dst = dst[order]
        self.edge_data = data[order]

        succ_order = np.argsort(self.edge_src, kind="stable")
        self._succ_indptr, self._succ_eidx = _build_csr(n, self.edge_src, succ_order)
        pred_order = np.argsort(self.edge_dst, kind="stable")
        self._pred_indptr, self._pred_eidx = _build_csr(n, self.edge_dst, pred_order)

        self._topo = self._kahn_topological_order()
        self._dag = None  # lazily filled by ArrayDag.from_taskgraph
        self._edge_keys = None  # lazily filled by edge_keys
        self._succ_lists = None  # lazily filled by successor_lists

        indeg = np.bincount(self.edge_dst, minlength=n)
        outdeg = np.bincount(self.edge_src, minlength=n)
        self._entry = np.flatnonzero(indeg == 0)
        self._exit = np.flatnonzero(outdeg == 0)

        for arr in (
            self.edge_src,
            self.edge_dst,
            self.edge_data,
            self._succ_indptr,
            self._succ_eidx,
            self._pred_indptr,
            self._pred_eidx,
            self._topo,
            self._entry,
            self._exit,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(
        cls,
        succ: Mapping[int, Iterable[int]],
        data: Mapping[tuple[int, int], float] | None = None,
        *,
        n: int | None = None,
        name: str = "taskgraph",
    ) -> "TaskGraph":
        """Build from an adjacency mapping ``{u: [v, ...]}``.

        ``n`` defaults to ``max node id + 1``.  *data* maps ``(u, v)`` to a
        data size; missing edges default to 0.
        """
        edges = [(u, v) for u, vs in succ.items() for v in vs]
        if n is None:
            ids = [u for u, _ in edges] + [v for _, v in edges] + list(succ)
            n = (max(ids) + 1) if ids else 1
        sizes = None
        if data is not None:
            sizes = [float(data.get((u, v), 0.0)) for u, v in edges]
        return cls(n, edges, sizes, name=name)

    @classmethod
    def from_networkx(cls, graph, *, weight: str = "data", name: str | None = None) -> "TaskGraph":
        """Build from a :class:`networkx.DiGraph` with integer nodes ``0..n-1``.

        Edge attribute *weight* (default ``"data"``) supplies data sizes.
        """
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValueError("networkx graph nodes must be exactly 0..n-1")
        edges = list(graph.edges)
        sizes = [float(graph.edges[e].get(weight, 0.0)) for e in edges]
        return cls(len(nodes), edges, sizes, name=name or "from_networkx")

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with a ``data`` edge attribute."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(range(self.n))
        for u, v, d in zip(self.edge_src, self.edge_dst, self.edge_data):
            g.add_edge(int(u), int(v), data=float(d))
        return g

    # ------------------------------------------------------------------ #
    # Topology queries
    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        """Number of precedence edges."""
        return int(self.edge_src.shape[0])

    @property
    def entry_nodes(self) -> np.ndarray:
        """Tasks with no predecessors."""
        return self._entry

    @property
    def exit_nodes(self) -> np.ndarray:
        """Tasks with no successors."""
        return self._exit

    @property
    def topological(self) -> np.ndarray:
        """A canonical (deterministic) topological order of the tasks."""
        return self._topo

    @property
    def edge_keys(self) -> np.ndarray:
        """Sorted ``src * n + dst`` key of every edge (canonical order).

        The canonical edge order is lexicographic in ``(src, dst)``, so the
        keys come out already sorted; :class:`~repro.schedule.schedule.Schedule`
        uses them for vectorized membership tests (chain-edge dedup) via
        :func:`numpy.searchsorted`.  Computed once per graph.
        """
        if self._edge_keys is None:
            keys = self.edge_src * np.int64(self.n) + self.edge_dst
            keys.setflags(write=False)
            self._edge_keys = keys
        return self._edge_keys

    def successor_edge_indices(self, v: int) -> np.ndarray:
        """Indices into the edge arrays of edges leaving *v*."""
        return self._succ_eidx[self._succ_indptr[v] : self._succ_indptr[v + 1]]

    def predecessor_edge_indices(self, v: int) -> np.ndarray:
        """Indices into the edge arrays of edges entering *v*."""
        return self._pred_eidx[self._pred_indptr[v] : self._pred_indptr[v + 1]]

    def successors(self, v: int) -> np.ndarray:
        """Immediate successors of task *v*."""
        return self.edge_dst[self.successor_edge_indices(v)]

    def predecessors(self, v: int) -> np.ndarray:
        """Immediate predecessors of task *v*."""
        return self.edge_src[self.predecessor_edge_indices(v)]

    def successor_lists(self) -> list[list[int]]:
        """Per-task successor ids as plain Python lists (cached).

        ``successor_lists()[v]`` holds the same ids in the same order as
        :meth:`successors`, but as Python ints.  Scalar graph walks (the
        GA's randomized topological sorts run thousands per optimization)
        iterate these lists several times faster than numpy slices.
        Callers must not mutate the returned lists.
        """
        if self._succ_lists is None:
            succ: list[list[int]] = [[] for _ in range(self.n)]
            for u, v in zip(self.edge_src.tolist(), self.edge_dst.tolist()):
                succ[u].append(v)
            self._succ_lists = succ
        return self._succ_lists

    def in_degree(self) -> np.ndarray:
        """In-degree of every task."""
        return np.bincount(self.edge_dst, minlength=self.n)

    def out_degree(self) -> np.ndarray:
        """Out-degree of every task."""
        return np.bincount(self.edge_src, minlength=self.n)

    def data_size(self, u: int, v: int) -> float:
        """Data transferred along edge ``(u, v)``; raises if absent."""
        for e in self.successor_edge_indices(u):
            if self.edge_dst[e] == v:
                return float(self.edge_data[e])
        raise KeyError(f"edge ({u}, {v}) not in task graph")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether precedence edge ``(u, v)`` exists."""
        return bool(np.any(self.edge_dst[self.successor_edge_indices(u)] == v))

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, data_size)`` triples in canonical order."""
        for u, v, d in zip(self.edge_src, self.edge_dst, self.edge_data):
            yield int(u), int(v), float(d)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _kahn_topological_order(self) -> np.ndarray:
        """Deterministic Kahn topological sort; raises on cycles."""
        indeg = np.bincount(self.edge_dst, minlength=self.n).astype(np.int64)
        # Min-heap-free deterministic variant: scan a ready list kept sorted
        # by node id (n is small; clarity over asymptotics here).
        import heapq

        ready = [int(v) for v in np.flatnonzero(indeg == 0)]
        heapq.heapify(ready)
        order = np.empty(self.n, dtype=np.int64)
        k = 0
        while ready:
            v = heapq.heappop(ready)
            order[k] = v
            k += 1
            for e in self.successor_edge_indices(v):
                w = int(self.edge_dst[e])
                indeg[w] -= 1
                if indeg[w] == 0:
                    heapq.heappush(ready, w)
        if k != self.n:
            raise ValueError("task graph contains a cycle")
        return order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph(name={self.name!r}, n={self.n}, edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.edge_src, other.edge_src)
            and np.array_equal(self.edge_dst, other.edge_dst)
            and np.array_equal(self.edge_data, other.edge_data)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.edge_src.tobytes(), self.edge_dst.tobytes()))
