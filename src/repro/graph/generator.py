"""Layered random task-graph generator (paper Sec. 5, method of ref. [22]).

The paper generates random DAGs "using the same method as in [22]"
(Shi & Dongarra, FGCS 2006) with four inputs: task count ``n``, shape
parameter ``alpha``, average computation cost ``cc`` and the
communication-to-computation ratio ``CCR``.  That family of generators
(also used by Topcuoglu et al. for HEFT) is *layered*:

* the graph height (number of levels) is drawn around ``sqrt(n) / alpha``;
* level widths are drawn around ``alpha * sqrt(n)`` and normalised to sum
  to ``n`` — so ``alpha > 1`` yields short/fat (highly parallel) graphs and
  ``alpha < 1`` long/thin (sequential) ones;
* every non-entry task gets at least one parent in the previous level plus
  a random number of extra parents from any earlier level.

Edge data sizes are drawn uniformly with mean ``CCR * cc`` so that, on a
platform with unit transfer rates, the average communication cost over
average computation cost equals ``CCR``.  (Computation costs themselves
come from the platform layer's COV-based ETC generator, which uses ``cc``
as ``mu_task``.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["DagParams", "random_dag", "random_layering"]


@dataclass(frozen=True)
class DagParams:
    """Inputs of the layered random-DAG generator.

    Attributes
    ----------
    n:
        Number of tasks (paper default 100).
    alpha:
        Shape parameter (paper default 1.0).  Height is drawn around
        ``sqrt(n)/alpha``, width around ``alpha*sqrt(n)``.
    cc:
        Average computation cost / ``mu_task`` (paper default 20).  Stored
        here because the paper treats it as a graph-generation input; it is
        consumed by :func:`repro.platform.etc.generate_etc`.
    ccr:
        Communication-to-computation ratio (paper default 0.1).
    extra_in_degree:
        Mean number of *additional* parents per non-entry task beyond the
        one guaranteed previous-level parent.  Controls edge density; the
        default 1.0 gives sparse workflow-like graphs.
    """

    n: int = 100
    alpha: float = 1.0
    cc: float = 20.0
    ccr: float = 0.1
    extra_in_degree: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        check_positive("alpha", self.alpha)
        check_positive("cc", self.cc)
        check_positive("ccr", self.ccr, strict=False)
        check_positive("extra_in_degree", self.extra_in_degree, strict=False)

    @property
    def mean_data_size(self) -> float:
        """Mean edge data size implied by ``ccr`` and ``cc``."""
        return self.ccr * self.cc


def random_layering(
    n: int, alpha: float, rng: np.random.Generator
) -> list[np.ndarray]:
    """Partition tasks ``0..n-1`` into levels per the shape parameter.

    The number of levels is drawn uniformly from
    ``[0.5 * sqrt(n)/alpha, 1.5 * sqrt(n)/alpha]`` (clamped to ``[1, n]``);
    level widths are proportional to uniform draws in ``[0.5, 1.5]`` and
    normalised to sum to ``n`` with every level non-empty.

    Returns
    -------
    list of numpy.ndarray
        ``levels[l]`` holds the task ids of level ``l``; ids are assigned
        consecutively level by level, so every edge will go from a lower to
        a higher id.
    """
    mean_height = math.sqrt(n) / alpha
    lo, hi = 0.5 * mean_height, 1.5 * mean_height
    height = int(round(rng.uniform(lo, hi)))
    height = max(1, min(n, height))

    raw = rng.uniform(0.5, 1.5, size=height)
    widths = np.maximum(1, np.floor(raw / raw.sum() * n).astype(np.int64))
    # Fix rounding drift while keeping every level >= 1.
    diff = int(n - widths.sum())
    while diff != 0:
        idx = int(rng.integers(height))
        if diff > 0:
            widths[idx] += 1
            diff -= 1
        elif widths[idx] > 1:
            widths[idx] -= 1
            diff += 1
    levels: list[np.ndarray] = []
    start = 0
    for w in widths:
        levels.append(np.arange(start, start + int(w), dtype=np.int64))
        start += int(w)
    assert start == n
    return levels


def random_dag(
    params: DagParams,
    rng: np.random.Generator | int | None = None,
    *,
    name: str | None = None,
) -> TaskGraph:
    """Generate a random layered DAG with data sizes.

    Parameters
    ----------
    params:
        Generator inputs; see :class:`DagParams`.
    rng:
        Seed or generator.
    name:
        Optional graph label.

    Returns
    -------
    TaskGraph
        Tasks are numbered level by level; every non-entry task has at
        least one parent in the immediately preceding level (so
        :func:`repro.graph.analysis.dag_levels` recovers the layering).
    """
    gen = as_generator(rng)
    n = params.n
    levels = random_layering(n, params.alpha, gen)

    edges: list[tuple[int, int]] = []
    for l in range(1, len(levels)):
        prev = levels[l - 1]
        earlier = np.arange(levels[l][0], dtype=np.int64)  # all ids before level l
        for v in levels[l]:
            v = int(v)
            parent = int(prev[gen.integers(prev.size)])
            chosen = {parent}
            n_extra = int(gen.poisson(params.extra_in_degree))
            n_extra = min(n_extra, earlier.size - 1)
            if n_extra > 0:
                extra = gen.choice(earlier, size=n_extra, replace=False)
                chosen.update(int(u) for u in extra)
            edges.extend((u, v) for u in sorted(chosen))

    mean_data = params.mean_data_size
    data = gen.uniform(0.0, 2.0 * mean_data, size=len(edges)) if edges else []
    label = name or f"dag(n={n},alpha={params.alpha},ccr={params.ccr})"
    return TaskGraph(n, edges, data, name=label)
