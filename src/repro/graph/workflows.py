"""Structured task-graph generators for classic parallel workloads.

The random layered generator (:mod:`repro.graph.generator`) covers the
paper's evaluation; this module adds the *structured* application graphs
that the surrounding literature — including the HEFT paper the baseline
comes from — evaluates on:

* :func:`gaussian_elimination` — the k-step GE dependency graph;
* :func:`fft` — the recursive/butterfly FFT task graph;
* :func:`fork_join` — parallel stages between a scatter and a gather;
* :func:`pipeline` — a width-w, depth-d systolic pipeline (stencil);
* :func:`laplace` — the diamond-shaped Laplace equation solver graph;
* :func:`in_tree` / :func:`out_tree` — reduction / broadcast trees.

Each returns a :class:`~repro.graph.taskgraph.TaskGraph` with uniform
data sizes (scale with ``data_size``).  Useful for examples, tests and
structure-sensitivity studies.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph

__all__ = [
    "gaussian_elimination",
    "fft",
    "fork_join",
    "pipeline",
    "laplace",
    "in_tree",
    "out_tree",
]


def _build(name: str, n: int, edges: list[tuple[int, int]], data_size: float) -> TaskGraph:
    return TaskGraph(n, edges, [data_size] * len(edges), name=name)


def gaussian_elimination(matrix_size: int, *, data_size: float = 1.0) -> TaskGraph:
    """Gaussian-elimination task graph for an ``m x m`` matrix.

    Step ``k`` (k = 1..m-1) has one pivot task ``T_kk`` followed by
    ``m - k`` update tasks ``T_kj`` (j > k); ``T_kk`` feeds every ``T_kj``
    of its step, and each ``T_kj`` feeds both the next step's pivot
    (j == k+1) and the next step's update in the same column.  Total
    tasks: ``(m^2 + m - 2) / 2``.

    Parameters
    ----------
    matrix_size:
        ``m >= 2``.
    """
    m = matrix_size
    if m < 2:
        raise ValueError(f"matrix_size must be >= 2, got {m}")
    ids: dict[tuple[int, int], int] = {}
    counter = 0
    for k in range(1, m):
        ids[(k, k)] = counter  # pivot T_kk
        counter += 1
        for j in range(k + 1, m + 1):
            ids[(k, j)] = counter  # update T_kj
            counter += 1
    edges: list[tuple[int, int]] = []
    for k in range(1, m):
        for j in range(k + 1, m + 1):
            edges.append((ids[(k, k)], ids[(k, j)]))  # pivot -> update
        if k + 1 < m:
            # T_k,k+1 -> next pivot; T_kj -> T_k+1,j for j >= k+2.
            edges.append((ids[(k, k + 1)], ids[(k + 1, k + 1)]))
            for j in range(k + 2, m + 1):
                edges.append((ids[(k, j)], ids[(k + 1, j)]))
    return _build(f"gauss(m={m})", counter, edges, data_size)


def fft(points: int, *, data_size: float = 1.0) -> TaskGraph:
    """FFT task graph for a power-of-two input size.

    The classic two-part shape: a binary recursive-call tree feeding
    ``log2(points) + 1`` layers of ``points`` butterfly tasks.
    """
    p = points
    if p < 2 or p & (p - 1):
        raise ValueError(f"points must be a power of two >= 2, got {p}")
    import math

    levels = int(math.log2(p))
    edges: list[tuple[int, int]] = []

    # Recursive-call tree: level l has 2^l nodes, l = 0..levels-1.
    tree_ids: list[list[int]] = []
    counter = 0
    for l in range(levels):
        row = list(range(counter, counter + (1 << l)))
        tree_ids.append(row)
        counter += len(row)
    for l in range(levels - 1):
        for i, parent in enumerate(tree_ids[l]):
            edges.append((parent, tree_ids[l + 1][2 * i]))
            edges.append((parent, tree_ids[l + 1][2 * i + 1]))

    # Butterfly part: levels+1 rows of p tasks each; leaves of the call
    # tree feed the first butterfly row.
    rows: list[list[int]] = []
    for _ in range(levels + 1):
        rows.append(list(range(counter, counter + p)))
        counter += p
    leaf_row = tree_ids[-1]
    span = p // len(leaf_row)
    for i, leaf in enumerate(leaf_row):
        for j in range(i * span, (i + 1) * span):
            edges.append((leaf, rows[0][j]))
    for l in range(levels):
        stride = p >> (l + 1)
        for j in range(p):
            partner = j ^ stride
            edges.append((rows[l][j], rows[l + 1][j]))
            edges.append((rows[l][j], rows[l + 1][partner]))
    # Deduplicate (partner pairing adds each edge once, but keep safe).
    edges = sorted(set(edges))
    return _build(f"fft(p={p})", counter, edges, data_size)


def fork_join(
    stages: int, width: int, *, data_size: float = 1.0
) -> TaskGraph:
    """``stages`` fork-join phases of ``width`` parallel tasks each.

    Each phase: one fork task -> ``width`` parallel tasks -> one join
    task; the join feeds the next fork.
    """
    if stages < 1 or width < 1:
        raise ValueError("stages and width must be >= 1")
    edges: list[tuple[int, int]] = []
    counter = 0
    prev_join: int | None = None
    for _ in range(stages):
        fork = counter
        counter += 1
        workers = list(range(counter, counter + width))
        counter += width
        join = counter
        counter += 1
        if prev_join is not None:
            edges.append((prev_join, fork))
        for w in workers:
            edges.append((fork, w))
            edges.append((w, join))
        prev_join = join
    return _build(f"forkjoin(s={stages},w={width})", counter, edges, data_size)


def pipeline(depth: int, width: int, *, data_size: float = 1.0) -> TaskGraph:
    """A ``depth x width`` systolic pipeline (wavefront/stencil).

    Task (i, j) depends on (i-1, j) (same lane, previous stage) and
    (i-1, j-1) (neighbour lane) — the 2-point stencil shape.
    """
    if depth < 1 or width < 1:
        raise ValueError("depth and width must be >= 1")
    def tid(i: int, j: int) -> int:
        return i * width + j

    edges: list[tuple[int, int]] = []
    for i in range(1, depth):
        for j in range(width):
            edges.append((tid(i - 1, j), tid(i, j)))
            if j > 0:
                edges.append((tid(i - 1, j - 1), tid(i, j)))
    return _build(f"pipeline(d={depth},w={width})", depth * width, edges, data_size)


def laplace(size: int, *, data_size: float = 1.0) -> TaskGraph:
    """The diamond-shaped Laplace-solver task graph of side ``size``.

    Width grows 1..size then shrinks back to 1; each task feeds its one
    or two successors in the next row (the classic diamond DAG).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    rows: list[list[int]] = []
    counter = 0
    widths = list(range(1, size + 1)) + list(range(size - 1, 0, -1))
    for w in widths:
        rows.append(list(range(counter, counter + w)))
        counter += w
    edges: list[tuple[int, int]] = []
    for r in range(len(rows) - 1):
        cur, nxt = rows[r], rows[r + 1]
        if len(nxt) > len(cur):  # expanding half
            for j, v in enumerate(cur):
                edges.append((v, nxt[j]))
                edges.append((v, nxt[j + 1]))
        else:  # contracting half
            for j, v in enumerate(nxt):
                edges.append((cur[j], v))
                edges.append((cur[j + 1], v))
    return _build(f"laplace(s={size})", counter, edges, data_size)


def out_tree(depth: int, fanout: int = 2, *, data_size: float = 1.0) -> TaskGraph:
    """Broadcast tree: each node feeds ``fanout`` children, ``depth`` levels."""
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be >= 1")
    edges: list[tuple[int, int]] = []
    counter = 1
    frontier = [0]
    for _ in range(depth - 1):
        nxt: list[int] = []
        for parent in frontier:
            for _ in range(fanout):
                edges.append((parent, counter))
                nxt.append(counter)
                counter += 1
        frontier = nxt
    return _build(f"outtree(d={depth},f={fanout})", counter, edges, data_size)


def in_tree(depth: int, fanin: int = 2, *, data_size: float = 1.0) -> TaskGraph:
    """Reduction tree: the mirror of :func:`out_tree` (leaves to root)."""
    tree = out_tree(depth, fanin, data_size=data_size)
    n = tree.n
    # Reverse every edge and relabel so ids still increase along edges.
    edges = [(n - 1 - v, n - 1 - u) for u, v, _ in tree.edges()]
    return _build(f"intree(d={depth},f={fanin})", n, edges, data_size)
