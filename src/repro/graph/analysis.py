"""Longest-path analysis on weighted DAGs (top/bottom levels, critical path).

The paper's central quantities — makespan (Claim 3.2), top level ``Tl``,
bottom level ``Bl`` and slack (Def. 3.3) — are all longest-path computations
on a node- and edge-weighted DAG.  This module implements them once, over a
compact array representation (:class:`ArrayDag`), so that

* plain task-graph analysis (priorities for HEFT/CPOP, generator stats) and
* disjunctive-graph schedule evaluation (:mod:`repro.schedule.evaluation`)

share a single, well-tested kernel.  All passes accept *batched* node
weights of shape ``(..., n)``: one Python-level loop over tasks, numpy over
the batch axis.  This is what makes 1000-realization Monte-Carlo evaluation
(Sec. 5) cheap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.graph.taskgraph import TaskGraph

__all__ = [
    "ArrayDag",
    "critical_path",
    "critical_path_length",
    "dag_levels",
]


@dataclass(frozen=True)
class ArrayDag:
    """Edge-array DAG with CSR predecessor/successor indexes and a topo order.

    Attributes
    ----------
    n:
        Number of nodes.
    edge_src, edge_dst:
        Edge endpoint arrays of shape ``(m,)``.
    topo:
        A valid topological order (``(n,)`` permutation).
    pred_indptr, pred_eidx / succ_indptr, succ_eidx:
        CSR grouping of edge indices by destination / source node.
    """

    n: int
    edge_src: np.ndarray
    edge_dst: np.ndarray
    topo: np.ndarray
    pred_indptr: np.ndarray = field(repr=False)
    pred_eidx: np.ndarray = field(repr=False)
    succ_indptr: np.ndarray = field(repr=False)
    succ_eidx: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def build(n: int, edge_src: np.ndarray, edge_dst: np.ndarray) -> "ArrayDag":
        """Build CSR indexes and a deterministic topological order.

        Raises
        ------
        ValueError
            If the edge set contains a cycle.
        """
        edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        m = edge_src.shape[0]
        if edge_dst.shape != (m,):
            raise ValueError("edge_src and edge_dst must have the same length")

        def csr(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            order = np.argsort(keys, kind="stable")
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(keys, minlength=n), out=indptr[1:])
            return indptr, order

        pred_indptr, pred_eidx = csr(edge_dst)
        succ_indptr, succ_eidx = csr(edge_src)

        # Kahn with a min-heap for a deterministic order.
        indeg = np.bincount(edge_dst, minlength=n).astype(np.int64)
        ready = [int(v) for v in np.flatnonzero(indeg == 0)]
        heapq.heapify(ready)
        topo = np.empty(n, dtype=np.int64)
        k = 0
        while ready:
            v = heapq.heappop(ready)
            topo[k] = v
            k += 1
            for e in succ_eidx[succ_indptr[v] : succ_indptr[v + 1]]:
                w = int(edge_dst[e])
                indeg[w] -= 1
                if indeg[w] == 0:
                    heapq.heappush(ready, w)
        if k != n:
            raise ValueError("graph contains a cycle")
        return ArrayDag(
            n=n,
            edge_src=edge_src,
            edge_dst=edge_dst,
            topo=topo,
            pred_indptr=pred_indptr,
            pred_eidx=pred_eidx,
            succ_indptr=succ_indptr,
            succ_eidx=succ_eidx,
        )

    @staticmethod
    def from_taskgraph(graph: TaskGraph) -> "ArrayDag":
        """View a :class:`TaskGraph`'s structure as an :class:`ArrayDag`."""
        return ArrayDag.build(graph.n, graph.edge_src, graph.edge_dst)

    def pred_edges(self, v: int) -> np.ndarray:
        """Edge indices entering node *v*."""
        return self.pred_eidx[self.pred_indptr[v] : self.pred_indptr[v + 1]]

    def succ_edges(self, v: int) -> np.ndarray:
        """Edge indices leaving node *v*."""
        return self.succ_eidx[self.succ_indptr[v] : self.succ_indptr[v + 1]]

    # ------------------------------------------------------------------ #
    # Level passes (batched)
    # ------------------------------------------------------------------ #

    def _check_weights(
        self, node_w: np.ndarray, edge_w: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        node_w = np.asarray(node_w, dtype=np.float64)
        if node_w.shape[-1] != self.n:
            raise ValueError(
                f"node weights last axis must be n={self.n}, got {node_w.shape}"
            )
        m = self.edge_src.shape[0]
        if edge_w is None:
            edge_w = np.zeros(m, dtype=np.float64)
        else:
            edge_w = np.asarray(edge_w, dtype=np.float64)
            if edge_w.shape != (m,):
                raise ValueError(f"edge weights must have shape ({m},), got {edge_w.shape}")
        return node_w, edge_w

    def top_levels(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Top level ``Tl(v)``: longest entry→v path length, *excluding* v.

        Path length sums node and edge weights along the path (Def. 3.3).
        ``node_w`` may be ``(n,)`` or batched ``(..., n)``; the result has the
        same shape.
        """
        node_w, edge_w = self._check_weights(node_w, edge_w)
        tl = np.zeros(node_w.shape, dtype=np.float64)
        for v in self.topo:
            v = int(v)
            eidx = self.pred_edges(v)
            if eidx.size == 0:
                continue
            src = self.edge_src[eidx]
            # (..., k) candidate path lengths through each predecessor.
            cand = tl[..., src] + node_w[..., src] + edge_w[eidx]
            tl[..., v] = cand.max(axis=-1)
        return tl

    def bottom_levels(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Bottom level ``Bl(v)``: longest v→exit path length, *including* v."""
        node_w, edge_w = self._check_weights(node_w, edge_w)
        bl = np.array(node_w, dtype=np.float64, copy=True)
        for v in self.topo[::-1]:
            v = int(v)
            eidx = self.succ_edges(v)
            if eidx.size == 0:
                continue
            dst = self.edge_dst[eidx]
            cand = bl[..., dst] + edge_w[eidx]
            bl[..., v] = node_w[..., v] + cand.max(axis=-1)
        return bl

    def finish_times(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Earliest finish time of every node under as-soon-as-ready start.

        Equals ``Tl(v) + w(v)``; returned directly to save an addition in the
        Monte-Carlo hot loop.
        """
        return self.top_levels(node_w, edge_w) + np.asarray(node_w, dtype=np.float64)

    def makespan(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray | float:
        """Critical-path length = max finish time (Claim 3.2).

        Returns a scalar for 1-D node weights, else an array over the batch
        axes.
        """
        fin = self.finish_times(node_w, edge_w)
        out = fin.max(axis=-1)
        if out.ndim == 0:
            return float(out)
        return out

    def critical_path(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> list[int]:
        """One longest entry→exit path (ties broken toward smaller node id).

        Only defined for unbatched ``(n,)`` weights.
        """
        node_w = np.asarray(node_w, dtype=np.float64)
        if node_w.ndim != 1:
            raise ValueError("critical_path requires 1-D node weights")
        node_w, edge_w = self._check_weights(node_w, edge_w)
        tl = self.top_levels(node_w, edge_w)
        fin = tl + node_w
        makespan = fin.max() if self.n else 0.0
        # Start from the smallest-id exit node achieving the makespan.
        v = int(np.flatnonzero(np.isclose(fin, makespan)).min())
        path = [v]
        while True:
            eidx = self.pred_edges(v)
            if eidx.size == 0:
                break
            src = self.edge_src[eidx]
            cand = tl[src] + node_w[src] + edge_w[eidx]
            hits = np.flatnonzero(np.isclose(cand, tl[v]))
            if hits.size == 0:  # pragma: no cover - numeric safety net
                break
            v = int(src[hits].min())
            path.append(v)
        path.reverse()
        return path


# ---------------------------------------------------------------------- #
# TaskGraph-facing convenience API
# ---------------------------------------------------------------------- #


def critical_path_length(
    graph: TaskGraph,
    node_weights: np.ndarray,
    edge_weights: np.ndarray | None = None,
) -> float:
    """Critical-path length of *graph* under the given weights.

    ``edge_weights`` aligns with the graph's canonical edge order and
    defaults to zero (computation-only critical path).
    """
    dag = ArrayDag.from_taskgraph(graph)
    return float(dag.makespan(np.asarray(node_weights, dtype=np.float64), edge_weights))


def critical_path(
    graph: TaskGraph,
    node_weights: np.ndarray,
    edge_weights: np.ndarray | None = None,
) -> list[int]:
    """One critical path of *graph* under the given weights."""
    dag = ArrayDag.from_taskgraph(graph)
    return dag.critical_path(np.asarray(node_weights, dtype=np.float64), edge_weights)


def dag_levels(graph: TaskGraph) -> np.ndarray:
    """Unweighted depth of every node: longest edge-count path from an entry.

    Entries have level 0.  Used by the random-DAG generator's shape
    statistics and by tests.
    """
    dag = ArrayDag.from_taskgraph(graph)
    level = np.zeros(graph.n, dtype=np.int64)
    for v in dag.topo:
        v = int(v)
        eidx = dag.pred_edges(v)
        if eidx.size:
            level[v] = level[dag.edge_src[eidx]].max() + 1
    return level
