"""Longest-path analysis on weighted DAGs (top/bottom levels, critical path).

The paper's central quantities — makespan (Claim 3.2), top level ``Tl``,
bottom level ``Bl`` and slack (Def. 3.3) — are all longest-path computations
on a node- and edge-weighted DAG.  This module implements them once, over a
compact array representation (:class:`ArrayDag`), so that

* plain task-graph analysis (priorities for HEFT/CPOP, generator stats) and
* disjunctive-graph schedule evaluation (:mod:`repro.schedule.evaluation`)

share a single, well-tested kernel.  All passes accept *batched* node
weights of shape ``(..., n)``.

The passes are **level-synchronous**: :meth:`ArrayDag.build` peels the DAG
into topological levels (``level[v]`` = longest edge-count path from an
entry) and the kernels relax edges in level order.  For batched weights all
edges of a level are relaxed *at once*: the level's predecessor rows are
gathered from a node-major ``(n, R)`` layout (contiguous realization rows)
into a rectangular in-degree-padded block and reduced with one
``max(axis=1)``, so the Python-level loop runs ``O(depth(G))`` iterations —
typically 10–30 for paper-sized 100-task DAGs — instead of ``O(n)``, with
the ``(R, n)`` Monte-Carlo batch axis fully inside numpy.  This is what
makes 1000-realization Monte-Carlo evaluation (Sec. 5) cheap.  Unbatched
``(n,)`` weights take a scalar fast path over the same level-ordered edge
list (numpy per-element overhead would dominate at that size).

Everything not needed by the GA decode→evaluate hot loop — CSR indexes,
the canonical topological order, the batched relaxation plans — is built
lazily on first use and cached (the structure is immutable).

The original per-node passes are retained as ``*_reference`` methods; the
equivalence suite checks that all implementations agree bit-for-bit.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph import _native
from repro.graph.taskgraph import TaskGraph
from repro.obs import runtime as _obs

__all__ = [
    "ArrayDag",
    "critical_path",
    "critical_path_length",
    "dag_levels",
]


class ArrayDag:
    """Edge-array DAG with topological levels and level-synchronous kernels.

    Attributes
    ----------
    n:
        Number of nodes.
    edge_src, edge_dst:
        Edge endpoint arrays of shape ``(m,)``.
    level:
        ``(n,)`` topological depth of every node: the longest edge-count
        path from an entry node (entries have level 0).  Computed on
        first access when the DAG was built from a trusted topological
        order (the acyclicity check moves there too).
    depth:
        Number of distinct levels (``level.max() + 1``); lazy like
        ``level``.
    pred_indptr, pred_eidx / succ_indptr, succ_eidx:
        CSR grouping of edge indices by destination / source node
        (built lazily).
    topo:
        A valid deterministic topological order (``(n,)`` permutation),
        computed lazily on first access (the level-synchronous kernels do
        not need it; the reference kernels and ``Schedule.linear_order``
        do).
    """

    __slots__ = (
        "n",
        "edge_src",
        "edge_dst",
        "_level",
        "_depth",
        "_succ_adj",
        "_pred_indptr",
        "_pred_eidx",
        "_succ_indptr",
        "_succ_eidx",
        "_topo",
        "_fwd_edges",
        "_bwd_edges",
        "_fwd_pad",
        "_bwd_pad",
        "_sinks",
        "_entries",
        "_scratch",
    )

    def __init__(
        self,
        n: int,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        *,
        topo: np.ndarray | None = None,
    ) -> None:
        edge_src = np.ascontiguousarray(edge_src, dtype=np.int64)
        edge_dst = np.ascontiguousarray(edge_dst, dtype=np.int64)
        m = edge_src.shape[0]
        if edge_dst.shape != (m,):
            raise ValueError("edge_src and edge_dst must have the same length")
        if m and (
            edge_src.min() < 0
            or edge_dst.min() < 0
            or edge_src.max() >= n
            or edge_dst.max() >= n
        ):
            raise ValueError("edge endpoint out of range")

        self.n = int(n)
        self.edge_src = edge_src
        self.edge_dst = edge_dst

        self._level = None
        self._depth = None
        self._succ_adj = None
        self._pred_indptr = None
        self._pred_eidx = None
        self._succ_indptr = None
        self._succ_eidx = None
        self._topo = None
        self._fwd_edges = None
        self._bwd_edges = None
        self._fwd_pad = None
        self._bwd_pad = None
        self._sinks = None
        self._entries = None
        self._scratch = {}

        if topo is not None:
            # Trusted fast path: the caller vouches that *topo* is a valid
            # topological order of the edge set (the GA decode derives one
            # structurally from the chromosome's scheduling string).  The
            # peel — and with it the acyclicity check — is deferred until
            # something actually needs topological depths.
            self._topo = np.ascontiguousarray(topo, dtype=np.int64)
        else:
            self._peel()

    def _peel(self) -> None:
        """Level peel in plain Python over adjacency lists.

        For the one-shot builds of the GA loop (one ArrayDag per decoded
        schedule) this is several times faster than per-level numpy
        passes, and it doubles as the acyclicity check.  O(n + m).
        Fills ``_level``, ``_depth`` and ``_succ_adj``.
        """
        succ_adj: list[list[int]] = [[] for _ in range(self.n)]
        indeg = [0] * self.n
        for s, d in zip(self.edge_src.tolist(), self.edge_dst.tolist()):
            succ_adj[s].append(d)
            indeg[d] += 1
        level = [0] * self.n
        frontier = [v for v in range(self.n) if indeg[v] == 0]
        removed = 0
        d = 0
        while frontier:
            removed += len(frontier)
            nxt: list[int] = []
            for v in frontier:
                level[v] = d
                for w in succ_adj[v]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        nxt.append(w)
            frontier = nxt
            d += 1
        if removed != self.n:
            raise ValueError("graph contains a cycle")

        self._level = np.asarray(level, dtype=np.int64)
        self._depth = d if self.n else 0
        self._succ_adj = succ_adj

    @property
    def level(self) -> np.ndarray:
        """``(n,)`` topological depth of every node (lazy on trusted builds)."""
        if self._level is None:
            self._peel()
        return self._level

    @property
    def depth(self) -> int:
        """Number of distinct levels (lazy on trusted builds)."""
        if self._depth is None:
            self._peel()
        return self._depth

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def build(n: int, edge_src: np.ndarray, edge_dst: np.ndarray) -> "ArrayDag":
        """Build the DAG representation (levels, acyclicity check).

        Raises
        ------
        ValueError
            If the edge set contains a cycle.
        """
        return ArrayDag(n, edge_src, edge_dst)

    @staticmethod
    def from_taskgraph(graph: TaskGraph) -> "ArrayDag":
        """View a :class:`TaskGraph`'s structure as an :class:`ArrayDag`.

        The result is cached on the graph (task graphs are immutable), so
        repeated calls — ``critical_path_length``, ``critical_path`` and
        ``dag_levels`` on the same graph — build it once.
        """
        dag = graph._dag
        if dag is None:
            dag = ArrayDag(graph.n, graph.edge_src, graph.edge_dst)
            graph._dag = dag
        return dag

    # ------------------------------------------------------------------ #
    # Lazy derived structure
    # ------------------------------------------------------------------ #

    def _build_csr(self) -> None:
        def csr(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            order = np.argsort(keys, kind="stable")
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(np.bincount(keys, minlength=self.n), out=indptr[1:])
            return indptr, order

        self._pred_indptr, self._pred_eidx = csr(self.edge_dst)
        self._succ_indptr, self._succ_eidx = csr(self.edge_src)

    @property
    def pred_indptr(self) -> np.ndarray:
        """CSR row pointer of the by-destination edge grouping (lazy)."""
        if self._pred_indptr is None:
            self._build_csr()
        return self._pred_indptr

    @property
    def pred_eidx(self) -> np.ndarray:
        """Edge indices sorted by destination node (lazy)."""
        if self._pred_eidx is None:
            self._build_csr()
        return self._pred_eidx

    @property
    def succ_indptr(self) -> np.ndarray:
        """CSR row pointer of the by-source edge grouping (lazy)."""
        if self._succ_indptr is None:
            self._build_csr()
        return self._succ_indptr

    @property
    def succ_eidx(self) -> np.ndarray:
        """Edge indices sorted by source node (lazy)."""
        if self._succ_eidx is None:
            self._build_csr()
        return self._succ_eidx

    @property
    def topo(self) -> np.ndarray:
        """Deterministic topological order (lexicographically smallest).

        Computed lazily with heap-based Kahn on first access; the
        level-synchronous kernels never need it, so the evaluation hot
        path skips this cost entirely.
        """
        if self._topo is None:
            indeg = [0] * self.n
            for d in self.edge_dst.tolist():
                indeg[d] += 1
            ready = [v for v in range(self.n) if indeg[v] == 0]
            heapq.heapify(ready)
            topo = []
            succ_adj = self._succ_adj
            while ready:
                v = heapq.heappop(ready)
                topo.append(v)
                for w in succ_adj[v]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        heapq.heappush(ready, w)
            # __init__ already rejected cycles, so every node is listed.
            self._topo = np.asarray(topo, dtype=np.int64)
        return self._topo

    def pred_edges(self, v: int) -> np.ndarray:
        """Edge indices entering node *v*."""
        return self.pred_eidx[self.pred_indptr[v] : self.pred_indptr[v + 1]]

    def succ_edges(self, v: int) -> np.ndarray:
        """Edge indices leaving node *v*."""
        return self.succ_eidx[self.succ_indptr[v] : self.succ_indptr[v + 1]]

    def _relax_key(self) -> np.ndarray:
        """Per-node key that strictly increases along every edge.

        The scalar 1-D passes only need *some* relaxation-compatible edge
        order, so a trusted topological order (whose inverse permutation
        costs two vector ops) serves as well as the peeled levels without
        forcing the peel; results are bit-identical either way because
        ``max`` over the same candidate set is order-independent.
        """
        if self._level is None and self._topo is not None:
            pos = np.empty(self.n, dtype=np.int64)
            pos[self._topo] = np.arange(self.n, dtype=np.int64)
            return pos
        return self.level

    def _edges_levelwise(self, *, forward: bool) -> tuple[list[int], list[int], list[int]]:
        """Edge endpoints/ids as Python lists in relaxation order.

        Forward: ascending key of ``dst`` (ties by ``dst``); backward:
        descending key of ``src`` (ties by ``src``), where the key is the
        topological depth or a trusted topological position
        (:meth:`_relax_key`).  Cached; feeds the scalar 1-D passes.
        """
        if forward:
            if self._fwd_edges is None:
                key = self._relax_key()[self.edge_dst]
                order = np.lexsort((self.edge_dst, key))
                self._fwd_edges = (
                    self.edge_src[order].tolist(),
                    self.edge_dst[order].tolist(),
                    order.tolist(),
                )
            return self._fwd_edges
        if self._bwd_edges is None:
            key = -self._relax_key()[self.edge_src]
            order = np.lexsort((self.edge_src, key))
            self._bwd_edges = (
                self.edge_src[order].tolist(),
                self.edge_dst[order].tolist(),
                order.tolist(),
            )
        return self._bwd_edges

    def _pad_plan(
        self, *, forward: bool
    ) -> tuple[list[tuple[np.ndarray, np.ndarray, int, int, int, int]], np.ndarray, int]:
        """Padded per-level relaxation plan for the batched passes (cached).

        Returns ``(levels, eidx_pad, nodes_cat, max_rows)``.  Each level
        entry is ``(nodes, otherp, nl, k, o0, o1, n0, n1)``: the ``nl``
        grouped endpoints (destinations forward, sources backward), the
        flattened ``(nl * k,)`` padded opposite-endpoint rows (each node's
        edge list right-padded with its own first edge — duplicates are
        harmless under ``max``), the rectangle shape, the level's slice
        ``[o0:o1)`` into the concatenated padded edge-id array
        ``eidx_pad``, and its slice ``[n0:n1)`` into the concatenated
        relaxed-node array ``nodes_cat`` (lets kernels pre-gather all
        per-node weight rows in one shot).  Padding turns the per-level
        segment reduction into one contiguous ``max(axis=1)`` over a
        ``(nl, k, R)`` view — ``np.maximum.reduceat`` scalar-loops over
        the batch axis and is an order of magnitude slower here.
        """
        cached = self._fwd_pad if forward else self._bwd_pad
        if cached is not None:
            return cached

        m = self.edge_src.shape[0]
        levels: list[tuple[np.ndarray, np.ndarray, int, int, int, int, int, int]] = []
        eidx_parts: list[np.ndarray] = []
        node_parts: list[np.ndarray] = []
        max_rows = 0
        offset = 0
        node_offset = 0
        if m:
            grp = self.edge_dst if forward else self.edge_src
            key = self.level[grp] if forward else -self.level[grp]
            order = np.lexsort((grp, key))
            g = grp[order]  # grouped endpoints (dst forward, src backward)
            other = (self.edge_src if forward else self.edge_dst)[order]
            glevel = key[order]  # non-decreasing

            # One segment per distinct grouped node: a node has a single
            # level, so all of its edges are contiguous after the lexsort.
            new_seg = np.empty(m, dtype=bool)
            new_seg[0] = True
            np.not_equal(g[1:], g[:-1], out=new_seg[1:])
            seg_starts = np.flatnonzero(new_seg)
            seg_level = glevel[seg_starts]

            new_blk = np.empty(seg_starts.size, dtype=bool)
            new_blk[0] = True
            np.not_equal(seg_level[1:], seg_level[:-1], out=new_blk[1:])
            blk_bounds = np.append(np.flatnonzero(new_blk), seg_starts.size)
            edge_bounds = np.append(seg_starts, m)
            seg_nodes = g[seg_starts]

            for a, b in zip(blk_bounds[:-1], blk_bounds[1:]):
                e0, e1 = int(edge_bounds[a]), int(edge_bounds[b])
                bounds = edge_bounds[a : b + 1] - e0
                counts = bounds[1:] - bounds[:-1]
                k = int(counts.max())
                # (nl, k) indices into the level's edge block; short
                # segments repeat their first edge.
                rows = bounds[:-1, None] + np.minimum(
                    np.arange(k), (counts - 1)[:, None]
                )
                otherp = other[e0:e1][rows].ravel()
                eidx_parts.append(order[e0:e1][rows].ravel())
                node_parts.append(seg_nodes[a:b])
                nl = b - a
                levels.append(
                    (
                        seg_nodes[a:b],
                        otherp,
                        nl,
                        k,
                        offset,
                        offset + otherp.size,
                        node_offset,
                        node_offset + nl,
                    )
                )
                offset += otherp.size
                node_offset += nl
                max_rows = max(max_rows, otherp.size)

        eidx_pad = (
            np.concatenate(eidx_parts) if eidx_parts else np.empty(0, dtype=np.int64)
        )
        nodes_cat = (
            np.concatenate(node_parts) if node_parts else np.empty(0, dtype=np.int64)
        )
        result = (levels, eidx_pad, nodes_cat, max_rows)
        if forward:
            self._fwd_pad = result
        else:
            self._bwd_pad = result
        return result

    @property
    def entries(self) -> np.ndarray:
        """Nodes with no predecessors (cached)."""
        if self._entries is None:
            indeg = np.bincount(self.edge_dst, minlength=self.n)
            self._entries = np.flatnonzero(indeg == 0)
        return self._entries

    @property
    def sinks(self) -> np.ndarray:
        """Nodes with no successors (cached)."""
        if self._sinks is None:
            outdeg = np.bincount(self.edge_src, minlength=self.n)
            self._sinks = np.flatnonzero(outdeg == 0)
        return self._sinks

    def _get_scratch(
        self, batch: int, rows: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Reusable ``(buf, red, work, nwbuf, nwp)`` buffers for one batch width.

        ``buf`` holds a level's gathered candidate rows, ``red`` its
        reduced maxima, ``work`` the node-major state array, ``nwbuf`` the
        node-major weight transpose and ``nwp`` the weight rows
        pre-gathered in relaxation order.  Cached per batch width so
        repeated Monte-Carlo passes of the same shape pay no allocation or
        page-fault cost.  Kernels must copy anything they return (the
        buffers are invalidated by the next call).
        """
        sc = self._scratch.get(batch)
        if sc is None or sc[0].shape[0] < rows:
            n1 = max(self.n, 1)
            sc = (
                np.empty((max(rows, 1), batch), dtype=np.float64),
                np.empty((n1, batch), dtype=np.float64),
                np.empty((n1, batch), dtype=np.float64),
                np.empty((n1, batch), dtype=np.float64),
                np.empty((n1, batch), dtype=np.float64),
            )
            self._scratch[batch] = sc
        return sc

    # ------------------------------------------------------------------ #
    # Level passes (level-synchronous)
    # ------------------------------------------------------------------ #

    def _check_weights(
        self, node_w: np.ndarray, edge_w: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        node_w = np.asarray(node_w, dtype=np.float64)
        if node_w.shape[-1] != self.n:
            raise ValueError(
                f"node weights last axis must be n={self.n}, got {node_w.shape}"
            )
        m = self.edge_src.shape[0]
        if edge_w is None:
            edge_w = np.zeros(m, dtype=np.float64)
        else:
            edge_w = np.asarray(edge_w, dtype=np.float64)
            if edge_w.shape != (m,):
                raise ValueError(f"edge weights must have shape ({m},), got {edge_w.shape}")
        return node_w, edge_w

    def top_levels(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Top level ``Tl(v)``: longest entry→v path length, *excluding* v.

        Path length sums node and edge weights along the path (Def. 3.3).
        ``node_w`` may be ``(n,)`` or batched ``(..., n)``; the result has
        the same shape.  Batched weights are relaxed one topological level
        per step — all edges into level-``d`` nodes reduced at once with
        ``np.maximum.reduceat`` — so the Python loop is ``O(depth)``, not
        ``O(n)``.
        """
        node_w, edge_w = self._check_weights(node_w, edge_w)
        if node_w.ndim == 1:
            src, dst, eidx = self._edges_levelwise(forward=True)
            tl = [0.0] * self.n
            w = node_w.tolist()
            ew = edge_w.tolist()
            prev = -1
            # First candidate overwrites (the reference scatters the plain
            # candidate max, with no zero floor for non-entry nodes); edges
            # of one destination are contiguous after the lexsort.
            for s, t, e in zip(src, dst, eidx):
                cand = tl[s] + w[s] + ew[e]
                if t != prev:
                    tl[t] = cand
                    prev = t
                elif cand > tl[t]:
                    tl[t] = cand
            return np.asarray(tl, dtype=np.float64)

        # Node-major layout: gathering a level's edges then touches
        # contiguous realization rows instead of strided columns.
        batch_shape = node_w.shape[:-1]
        levels, eidx_pad, nodes_cat, max_rows = self._pad_plan(forward=True)
        buf, red, tl, nw, _ = self._get_scratch(
            int(np.prod(batch_shape)), max_rows
        )
        np.copyto(nw, node_w.reshape(-1, self.n).T)
        tl[:] = 0.0
        ewp = edge_w[eidx_pad][:, None]
        batch = nw.shape[1]
        for nodes, srcp, nl, k, o0, o1, n0, n1 in levels:
            b = buf[: srcp.size]
            np.take(tl, srcp, axis=0, out=b)
            b += nw[srcp]
            b += ewp[o0:o1]
            np.max(b.reshape(nl, k, batch), axis=1, out=red[:nl])
            tl[nodes] = red[:nl]
        return np.ascontiguousarray(tl.T).reshape(*batch_shape, self.n)

    def bottom_levels(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Bottom level ``Bl(v)``: longest v→exit path length, *including* v."""
        node_w, edge_w = self._check_weights(node_w, edge_w)
        if node_w.ndim == 1:
            src, dst, eidx = self._edges_levelwise(forward=False)
            w = node_w.tolist()
            bl = list(w)
            ew = edge_w.tolist()
            prev = -1
            for s, t, e in zip(src, dst, eidx):
                # fp-safe: max commutes with the (monotone) addition of w[s],
                # so this matches the reference's "max, then add" exactly.
                val = w[s] + (bl[t] + ew[e])
                if s != prev:
                    bl[s] = val
                    prev = s
                elif val > bl[s]:
                    bl[s] = val
            return np.asarray(bl, dtype=np.float64)

        batch_shape = node_w.shape[:-1]
        levels, eidx_pad, nodes_cat, max_rows = self._pad_plan(forward=False)
        buf, red, bl, nw, nwp_buf = self._get_scratch(
            int(np.prod(batch_shape)), max_rows
        )
        np.copyto(nw, node_w.reshape(-1, self.n).T)
        # Only sink rows read their initial value; interior rows are
        # overwritten exactly once by their level's scatter.
        sinks = self.sinks
        bl[sinks] = nw[sinks]
        ewp = edge_w[eidx_pad][:, None]
        nwp = nwp_buf[: nodes_cat.size]
        np.take(nw, nodes_cat, axis=0, out=nwp)
        batch = nw.shape[1]
        for nodes, dstp, nl, k, o0, o1, n0, n1 in levels:
            b = buf[: dstp.size]
            np.take(bl, dstp, axis=0, out=b)
            b += ewp[o0:o1]
            r = red[:nl]
            np.max(b.reshape(nl, k, batch), axis=1, out=r)
            r += nwp[n0:n1]
            bl[nodes] = r
        return np.ascontiguousarray(bl.T).reshape(*batch_shape, self.n)

    # ------------------------------------------------------------------ #
    # Reference kernels (per-node passes, kept for equivalence testing)
    # ------------------------------------------------------------------ #

    def top_levels_reference(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-node reference implementation of :meth:`top_levels`."""
        node_w, edge_w = self._check_weights(node_w, edge_w)
        tl = np.zeros(node_w.shape, dtype=np.float64)
        for v in self.topo:
            v = int(v)
            eidx = self.pred_edges(v)
            if eidx.size == 0:
                continue
            src = self.edge_src[eidx]
            # (..., k) candidate path lengths through each predecessor.
            cand = tl[..., src] + node_w[..., src] + edge_w[eidx]
            tl[..., v] = cand.max(axis=-1)
        return tl

    def bottom_levels_reference(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-node reference implementation of :meth:`bottom_levels`."""
        node_w, edge_w = self._check_weights(node_w, edge_w)
        bl = np.array(node_w, dtype=np.float64, copy=True)
        for v in self.topo[::-1]:
            v = int(v)
            eidx = self.succ_edges(v)
            if eidx.size == 0:
                continue
            dst = self.edge_dst[eidx]
            cand = bl[..., dst] + edge_w[eidx]
            bl[..., v] = node_w[..., v] + cand.max(axis=-1)
        return bl

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def _finish_node_major(self, node_w: np.ndarray, edge_w: np.ndarray) -> np.ndarray:
        """Finish times of a flattened batch, in node-major scratch layout.

        ``node_w`` is ``(B, n)``; the returned ``(n, B)`` array is a view
        into scratch (callers must copy what they keep).  Folding the node
        weight into the recurrence (``ft[v] = w[v] + max(ft[u] + c(u,v))``)
        saves one full-width gather+add per level versus computing ``Tl``
        and adding ``w`` afterwards, and is float-exact: adding ``w`` is
        monotone, so it commutes with ``max`` bit-for-bit.

        Dispatches to the optional C kernel (:mod:`repro.graph._native`)
        for wide batches; the numpy level-synchronous pass is the always-
        available fallback and produces bit-identical results.
        """
        lib = _native.get_lib()
        use_native = lib is not None and self.n and node_w.shape[0] >= 8
        if _obs.enabled():
            # Which implementation the wide-batch hot path actually ran —
            # surfaces silent numpy fallbacks (no compiler, REPRO_NATIVE=0).
            _obs.add(
                "kernel.batch_forward.native"
                if use_native
                else "kernel.batch_forward.numpy"
            )
        if use_native:
            return self._finish_node_major_native(lib, node_w, edge_w)
        return self._finish_node_major_numpy(node_w, edge_w)

    def _finish_node_major_native(
        self, lib, node_w: np.ndarray, edge_w: np.ndarray
    ) -> np.ndarray:
        """C edge-driven forward pass (see :mod:`repro.graph._native`)."""
        _, _, ft, nw, _ = self._get_scratch(node_w.shape[0], 1)
        np.copyto(nw, node_w.T)
        topo = self.topo
        indptr = self.pred_indptr
        eidx = self.pred_eidx
        edge_w = np.ascontiguousarray(edge_w)
        lib.ft_forward(
            self.n,
            nw.shape[1],
            topo.ctypes.data,
            indptr.ctypes.data,
            eidx.ctypes.data,
            self.edge_src.ctypes.data,
            edge_w.ctypes.data,
            nw.ctypes.data,
            ft.ctypes.data,
        )
        return ft

    def _finish_node_major_numpy(
        self, node_w: np.ndarray, edge_w: np.ndarray
    ) -> np.ndarray:
        """Numpy level-synchronous forward pass (always available)."""
        levels, eidx_pad, nodes_cat, max_rows = self._pad_plan(forward=True)
        buf, red, ft, nw, nwp_buf = self._get_scratch(node_w.shape[0], max_rows)
        np.copyto(nw, node_w.T)
        # Only entry rows read their initial value (ft = w); interior rows
        # are overwritten exactly once by their level's scatter.
        entries = self.entries
        ft[entries] = nw[entries]
        ewp = edge_w[eidx_pad][:, None]
        # One bulk gather of the relaxed nodes' weight rows; per-level
        # consumption is then a contiguous slice.
        nwp = nwp_buf[: nodes_cat.size]
        np.take(nw, nodes_cat, axis=0, out=nwp)
        batch = nw.shape[1]
        for nodes, srcp, nl, k, o0, o1, n0, n1 in levels:
            b = buf[: srcp.size]
            np.take(ft, srcp, axis=0, out=b)
            b += ewp[o0:o1]
            r = red[:nl]
            np.max(b.reshape(nl, k, batch), axis=1, out=r)
            r += nwp[n0:n1]
            ft[nodes] = r
        return ft

    def finish_times(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> np.ndarray:
        """Earliest finish time of every node under as-soon-as-ready start.

        Equals ``Tl(v) + w(v)``; returned directly to save an addition in the
        Monte-Carlo hot loop.
        """
        node_w, edge_w = self._check_weights(node_w, edge_w)
        if node_w.ndim == 1:
            return self.top_levels(node_w, edge_w) + node_w
        batch_shape = node_w.shape[:-1]
        ft = self._finish_node_major(node_w.reshape(-1, self.n), edge_w)
        return np.ascontiguousarray(ft.T).reshape(*batch_shape, self.n)

    def makespan(
        self,
        node_w: np.ndarray,
        edge_w: np.ndarray | None = None,
        *,
        nonnegative: bool = False,
    ) -> np.ndarray | float:
        """Critical-path length = max finish time (Claim 3.2).

        Returns a scalar for 1-D node weights, else an array over the batch
        axes.  ``nonnegative=True`` declares that all weights are >= 0
        (true for task durations and communication times); finish times
        are then non-decreasing along every path, so the final reduction
        only needs the sink nodes instead of all ``n`` — callers that
        validated their inputs (e.g. the Monte-Carlo driver) use this.
        """
        node_w, edge_w = self._check_weights(node_w, edge_w)
        if node_w.ndim == 1:
            fin = self.top_levels(node_w, edge_w) + node_w
            return float(fin.max()) if self.n else 0.0
        batch_shape = node_w.shape[:-1]
        if self.n == 0:
            return np.zeros(batch_shape, dtype=np.float64)
        ft = self._finish_node_major(node_w.reshape(-1, self.n), edge_w)
        if nonnegative:
            out = ft[self.sinks].max(axis=0)
        else:
            out = ft.max(axis=0)
        return out.reshape(batch_shape)

    def critical_path(
        self, node_w: np.ndarray, edge_w: np.ndarray | None = None
    ) -> list[int]:
        """One longest entry→exit path (ties broken toward smaller node id).

        Only defined for unbatched ``(n,)`` weights.
        """
        node_w = np.asarray(node_w, dtype=np.float64)
        if node_w.ndim != 1:
            raise ValueError("critical_path requires 1-D node weights")
        node_w, edge_w = self._check_weights(node_w, edge_w)
        tl = self.top_levels(node_w, edge_w)
        fin = tl + node_w
        makespan = fin.max() if self.n else 0.0
        # Start from the smallest-id exit node achieving the makespan.
        v = int(np.flatnonzero(np.isclose(fin, makespan)).min())
        path = [v]
        while True:
            eidx = self.pred_edges(v)
            if eidx.size == 0:
                break
            src = self.edge_src[eidx]
            cand = tl[src] + node_w[src] + edge_w[eidx]
            hits = np.flatnonzero(np.isclose(cand, tl[v]))
            if hits.size == 0:  # pragma: no cover - numeric safety net
                break
            v = int(src[hits].min())
            path.append(v)
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayDag(n={self.n}, edges={self.edge_src.shape[0]}, "
            f"depth={self.depth})"
        )


# ---------------------------------------------------------------------- #
# TaskGraph-facing convenience API
# ---------------------------------------------------------------------- #


def critical_path_length(
    graph: TaskGraph,
    node_weights: np.ndarray,
    edge_weights: np.ndarray | None = None,
) -> float:
    """Critical-path length of *graph* under the given weights.

    ``edge_weights`` aligns with the graph's canonical edge order and
    defaults to zero (computation-only critical path).
    """
    dag = ArrayDag.from_taskgraph(graph)
    return float(dag.makespan(np.asarray(node_weights, dtype=np.float64), edge_weights))


def critical_path(
    graph: TaskGraph,
    node_weights: np.ndarray,
    edge_weights: np.ndarray | None = None,
) -> list[int]:
    """One critical path of *graph* under the given weights."""
    dag = ArrayDag.from_taskgraph(graph)
    return dag.critical_path(np.asarray(node_weights, dtype=np.float64), edge_weights)


def dag_levels(graph: TaskGraph) -> np.ndarray:
    """Unweighted depth of every node: longest edge-count path from an entry.

    Entries have level 0.  Used by the random-DAG generator's shape
    statistics and by tests.  This is exactly :attr:`ArrayDag.level`,
    which :meth:`ArrayDag.build` precomputes for its level-synchronous
    kernels.
    """
    return ArrayDag.from_taskgraph(graph).level.copy()
