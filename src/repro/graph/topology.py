"""Topological-order utilities.

The GA chromosome (Sec. 4.2.1) carries a *scheduling string* — a topological
order of the task graph.  This module provides uniform-ish random
topological sorts (for initial-population generation, Sec. 4.2.2), validity
checks (used by operators and property tests), and ancestor/descendant
closures (used by the mutation operator's legal-window computation,
Sec. 4.2.6).
"""

from __future__ import annotations

import numpy as np

from repro.graph.taskgraph import TaskGraph
from repro.utils.rng import as_generator

__all__ = [
    "topological_order",
    "random_topological_order",
    "is_topological_order",
    "ancestors_mask",
    "descendants_mask",
]


def topological_order(graph: TaskGraph) -> np.ndarray:
    """The graph's canonical deterministic topological order."""
    return graph.topological


def random_topological_order(
    graph: TaskGraph, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Sample a random topological order via randomized Kahn's algorithm.

    At each step one task is drawn uniformly from the current ready set.
    This does not sample uniformly over all linear extensions (that is
    #P-hard), but it reaches every linear extension with positive
    probability, which is all the GA requires for population diversity.

    Parameters
    ----------
    graph:
        The task graph.
    rng:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        Permutation of ``0..n-1`` respecting all precedence constraints.
    """
    gen = as_generator(rng)
    n = graph.n
    # Scalar bookkeeping stays in plain Python containers: the cached
    # successor lists and a list-typed in-degree counter avoid a numpy
    # scalar round-trip per visited edge.  The ready list evolves exactly
    # as it did with numpy slices (same contents, same order), so seeded
    # draw sequences — and therefore GA trajectories — are unchanged.
    succ = graph.successor_lists()
    indeg = graph.in_degree().tolist()
    ready = [v for v in range(n) if not indeg[v]]
    order: list[int] = []
    integers = gen.integers
    for _ in range(n):
        if not ready:
            raise ValueError("task graph contains a cycle")
        pick = int(integers(len(ready)))
        # Swap-pop keeps the draw O(1).
        ready[pick], ready[-1] = ready[-1], ready[pick]
        v = ready.pop()
        order.append(v)
        for w in succ[v]:
            d = indeg[w] - 1
            indeg[w] = d
            if not d:
                ready.append(w)
    return np.array(order, dtype=np.int64)


def is_topological_order(graph: TaskGraph, order: np.ndarray) -> bool:
    """Check that *order* is a permutation of tasks respecting all edges.

    Fully vectorized: bounds and bijectivity via :func:`numpy.bincount`,
    the precedence check by comparing inverse-permutation positions across
    the edge arrays — no Python-level loop over positions.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.n
    if order.shape != (n,):
        return False
    if order.min() < 0 or order.max() >= n:
        return False
    if np.any(np.bincount(order, minlength=n) != 1):
        return False
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n, dtype=np.int64)
    return bool(np.all(position[graph.edge_src] < position[graph.edge_dst]))


def _closure_mask(graph: TaskGraph, start: int, *, forward: bool) -> np.ndarray:
    """Reachability mask from *start* following edges forward or backward.

    Single pass over the canonical topological order — O(n + |E|).
    """
    mask = np.zeros(graph.n, dtype=bool)
    mask[start] = True
    topo = graph.topological if forward else graph.topological[::-1]
    for v in topo:
        v = int(v)
        if not mask[v]:
            continue
        nbrs = graph.successors(v) if forward else graph.predecessors(v)
        mask[nbrs] = True
    mask[start] = False
    return mask


def descendants_mask(graph: TaskGraph, v: int) -> np.ndarray:
    """Boolean mask of all strict descendants of task *v*."""
    if not (0 <= v < graph.n):
        raise ValueError(f"task id {v} out of range")
    return _closure_mask(graph, v, forward=True)


def ancestors_mask(graph: TaskGraph, v: int) -> np.ndarray:
    """Boolean mask of all strict ancestors of task *v*."""
    if not (0 <= v < graph.n):
        raise ValueError(f"task id {v} out of range")
    return _closure_mask(graph, v, forward=False)
