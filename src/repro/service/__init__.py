"""repro.service — the scheduler as a long-lived daemon.

The one-shot CLI and the Python API recompute everything per
invocation; this package turns the solvers into a **service**: a
JSON-lines-over-TCP daemon (``repro serve`` / ``repro submit``) that
amortizes solver cost across clients and degrades gracefully under
load.  Its moving parts:

* :mod:`repro.service.protocol` — the wire format and
  :data:`~repro.service.protocol.PROTOCOL_VERSION`;
* :mod:`repro.service.cache` — content-addressed LRU result cache
  keyed on problem fingerprint + solver parameters;
* :mod:`repro.service.admission` — tiered admission control: the
  heuristic tier is always served, the GA tier is bounded and excess
  load is shed to degraded-but-valid heuristic schedules;
* :mod:`repro.service.solvers` — the deterministic execution layer
  (service responses are bit-identical to direct API calls);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio daemon and its blocking client;
* :mod:`repro.service.comm` — the pluggable transport layer
  (``tcp://`` and ``inproc://``) every endpoint speaks through;
* :mod:`repro.service.coordinator` / :mod:`repro.service.shard` /
  :mod:`repro.service.sharding` — the sharded multi-node deployment:
  a coordinator consistent-hashes requests across N scheduler-worker
  shards with work stealing, a replicated cache tier and shard
  supervision (``repro serve --shards N``).

See ``docs/service.md`` for the protocol specification, the overload
semantics and an example session.
"""

from repro.service.admission import (
    ADMISSION_MODES,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.cache import ResultCache, cache_key
from repro.service.client import ServiceClient, ServiceError
from repro.service.coordinator import Coordinator, CoordinatorConfig
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SOLVERS,
    ProtocolError,
)
from repro.service.server import SchedulerService, ServiceConfig
from repro.service.shard import ShardServer
from repro.service.solvers import execute_payload

__all__ = [
    "PROTOCOL_VERSION",
    "SOLVERS",
    "ProtocolError",
    "ResultCache",
    "cache_key",
    "ADMISSION_MODES",
    "AdmissionController",
    "AdmissionDecision",
    "SchedulerService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "Coordinator",
    "CoordinatorConfig",
    "ShardServer",
    "execute_payload",
]
