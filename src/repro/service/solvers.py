"""Deterministic solver execution shared by the server and its clients.

This module **is** the service's bit-identical contract with the direct
Python API: :func:`execute_payload` derives everything from the request
payload alone — never from worker identity, queue position or wall
clock — so a response is reproducible by calling the library directly
with the same inputs:

* heuristics (``heft``/``cpop``/``peft``/``minmin``):
  ``Scheduler().schedule(problem)``;
* ``ga``: ``RobustScheduler(epsilon, params, rng=seed).solve(problem)``;
* robustness assessment (always):
  ``assess_robustness(schedule, n_realizations, rng=seed + 1)``.

The ``seed + 1`` derivation keeps the GA's stream (rooted at ``seed``)
and the Monte-Carlo stream independent, mirroring the CLI's convention.
Because the function is module-level and its argument is a plain JSON
dict, it is also a valid :class:`repro.cluster.task.TaskSpec` target —
the server runs GA work through the cluster pool with ``--workers > 1``
and results stay identical to the inline path.
"""

from __future__ import annotations

from typing import Any

from repro.ga.engine import GAParams
from repro.io.json_io import (
    problem_from_dict,
    report_to_dict,
    schedule_to_dict,
)
from repro.service.protocol import FAST_SOLVERS

__all__ = ["heuristic_for", "build_ga_params", "solve_params", "execute_payload"]


def heuristic_for(solver: str):
    """The scheduler instance behind one fast-tier solver name."""
    from repro.heuristics import (
        CpopScheduler,
        HeftScheduler,
        MinMinScheduler,
        PeftScheduler,
    )

    classes = {
        "heft": HeftScheduler,
        "cpop": CpopScheduler,
        "peft": PeftScheduler,
        "minmin": MinMinScheduler,
    }
    return classes[solver]()


def build_ga_params(overrides: dict[str, int] | None) -> GAParams:
    """Paper-default :class:`GAParams` with the wire overrides applied."""
    return GAParams(**(overrides or {}))


def solve_params(request: dict[str, Any]) -> dict[str, Any]:
    """The solver parameters that determine a solve's result.

    This is exactly what the result cache keys on (together with the
    problem fingerprint): two requests whose :func:`solve_params` and
    fingerprints agree are guaranteed the same response payload.
    Heuristics ignore ``epsilon`` and the GA overrides, so those fields
    are excluded from their key — a shed GA request therefore lands on
    the same entry as an explicit HEFT request for the instance.
    """
    solver = request["solver"]
    params: dict[str, Any] = {
        "seed": request["seed"],
        "n_realizations": request["n_realizations"],
    }
    if solver not in FAST_SOLVERS:
        params["epsilon"] = request["epsilon"]
        params["ga"] = request.get("ga") or {}
    return params


def execute_payload(request: dict[str, Any]) -> dict[str, Any]:
    """Solve one normalized request; returns the cacheable response core.

    The returned dict contains only content derived from the request
    (schedule, robustness report, solver identification) — no timings or
    server state — so it can be cached, shipped across the cluster pool
    and compared bit-for-bit against a direct API run.
    """
    from repro.robustness.montecarlo import assess_robustness

    problem = problem_from_dict(request["problem"])
    solver = request["solver"]
    seed = request["seed"]
    result: dict[str, Any] = {
        "solver": solver,
        "seed": seed,
        "n_realizations": request["n_realizations"],
    }
    if solver in FAST_SOLVERS:
        schedule = heuristic_for(solver).schedule(problem)
    else:
        from repro.core.robust import RobustScheduler

        robust = RobustScheduler(
            epsilon=request["epsilon"],
            params=build_ga_params(request.get("ga")),
            rng=seed,
        ).solve(problem)
        schedule = robust.schedule
        result["epsilon"] = request["epsilon"]
        result["m_heft"] = robust.m_heft
        result["ga_generations"] = robust.ga_result.generations
    report = assess_robustness(schedule, request["n_realizations"], rng=seed + 1)
    result["schedule"] = schedule_to_dict(schedule)
    result["report"] = report_to_dict(report)
    return result
