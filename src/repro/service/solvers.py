"""Deterministic solver execution shared by the server and its clients.

This module **is** the service's bit-identical contract with the direct
Python API: :func:`execute_payload` derives everything from the request
payload alone — never from worker identity, queue position or wall
clock — so a response is reproducible by calling the library directly
with the same inputs:

* heuristics (``heft``/``cpop``/``peft``/``minmin``):
  ``Scheduler().schedule(problem)``;
* ``ga``: ``RobustScheduler(epsilon, params, rng=seed,
  warm_start=seeds).solve(problem)`` — the warm-start seeds the server
  injected (if any) ride in the payload's ``warm_seeds`` field, so the
  run stays a pure function of the payload;
* robustness assessment (always):
  ``assess_robustness(schedule, n_realizations, rng=seed + 1)``.

The ``seed + 1`` derivation keeps the GA's stream (rooted at ``seed``)
and the Monte-Carlo stream independent, mirroring the CLI's convention.
Because the function is module-level and its argument is a plain JSON
dict, it is also a valid :class:`repro.cluster.task.TaskSpec` target —
the server runs GA work through the cluster pool with ``--workers > 1``
and results stay identical to the inline path.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.ga.engine import GAParams
from repro.io.json_io import (
    problem_from_dict,
    report_to_dict,
    schedule_to_dict,
)
from repro.service.protocol import FAST_SOLVERS

__all__ = ["heuristic_for", "build_ga_params", "solve_params", "execute_payload"]


def heuristic_for(solver: str):
    """The scheduler instance behind one fast-tier solver name.

    The four legacy names map to the verified reference classes; every
    other fast-tier name resolves through the component-algebra
    catalogue (bit-identical for the legacy names either way, so the
    split is about keeping the reference implementations on the paths
    the paper's experiments exercise).
    """
    from repro.heuristics import (
        CpopScheduler,
        HeftScheduler,
        MinMinScheduler,
        PeftScheduler,
    )

    classes = {
        "heft": HeftScheduler,
        "cpop": CpopScheduler,
        "peft": PeftScheduler,
        "minmin": MinMinScheduler,
    }
    if solver in classes:
        return classes[solver]()
    from repro.algebra import component_scheduler

    return component_scheduler(solver)


def build_ga_params(overrides: dict[str, int] | None) -> GAParams:
    """Paper-default :class:`GAParams` with the wire overrides applied."""
    return GAParams(**(overrides or {}))


def solve_params(request: dict[str, Any]) -> dict[str, Any]:
    """The solver parameters that determine a solve's result.

    This is exactly what the result cache keys on (together with the
    problem fingerprint): two requests whose :func:`solve_params` and
    fingerprints agree are guaranteed the same response payload.
    Heuristics ignore ``epsilon`` and the GA overrides, so those fields
    are excluded from their key — a shed GA request therefore lands on
    the same entry as an explicit HEFT request for the instance.
    """
    solver = request["solver"]
    params: dict[str, Any] = {
        "seed": request["seed"],
        "n_realizations": request["n_realizations"],
    }
    if solver not in FAST_SOLVERS:
        params["epsilon"] = request["epsilon"]
        params["ga"] = request.get("ga") or {}
        # Warm-start seeds change the GA trajectory, so they are part of
        # the result's identity.  Digesting the seeds (rather than an
        # on/off flag) keys the cache on what actually seeded the run:
        # requests resolved without seeds — warm_start=false, or an empty
        # store — share one entry, and the key layout predating warm
        # starts is preserved for them.
        seeds = request.get("warm_seeds")
        if seeds:
            params["warm"] = hashlib.sha256(
                json.dumps(seeds, separators=(",", ":")).encode()
            ).hexdigest()[:16]
    return params


def execute_payload(request: dict[str, Any]) -> dict[str, Any]:
    """Solve one normalized request; returns the cacheable response core.

    The returned dict contains only content derived from the request
    (schedule, robustness report, solver identification) — no timings or
    server state — so it can be cached, shipped across the cluster pool
    and compared bit-for-bit against a direct API run.
    """
    from repro.robustness.montecarlo import assess_robustness

    problem = problem_from_dict(request["problem"])
    solver = request["solver"]
    seed = request["seed"]
    result: dict[str, Any] = {
        "solver": solver,
        "seed": seed,
        "n_realizations": request["n_realizations"],
    }
    if solver in FAST_SOLVERS:
        schedule = heuristic_for(solver).schedule(problem)
    else:
        from repro.core.robust import RobustScheduler
        from repro.ga.chromosome import Chromosome

        warm_start = [
            Chromosome(order=s["order"], proc_of=s["proc_of"])
            for s in request.get("warm_seeds") or []
        ]
        robust = RobustScheduler(
            epsilon=request["epsilon"],
            params=build_ga_params(request.get("ga")),
            rng=seed,
            warm_start=warm_start or None,
        ).solve(problem)
        schedule = robust.schedule
        result["epsilon"] = request["epsilon"]
        result["m_heft"] = robust.m_heft
        result["ga_generations"] = robust.ga_result.generations
        result["warm_seeds_used"] = len(warm_start)
        # The best chromosome rides along so the server can feed its
        # warm-start store without re-deriving an order from the schedule.
        best = robust.ga_result.best.chromosome
        result["ga_chromosome"] = {
            "order": best.order.tolist(),
            "proc_of": best.proc_of.tolist(),
        }
    report = assess_robustness(schedule, request["n_realizations"], rng=seed + 1)
    result["schedule"] = schedule_to_dict(schedule)
    result["report"] = report_to_dict(report)
    return result
