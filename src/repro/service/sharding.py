"""Consistent-hash routing and the GA work-stealing policy.

The coordinator owns a :class:`HashRing` over its shard ids: a problem
fingerprint always hashes to the same **home shard**, independent of
request order, coordinator restarts, or which shards happen to be busy
— that is what makes routing deterministic and lets per-shard state
(local result caches, in-flight coalescing) stay coherent without any
cross-shard chatter.

Two controlled departures from pure hashing:

* **liveness** — a dead shard is skipped by walking the ring to the
  next live node (classic consistent hashing: only the dead shard's
  keys move);
* **work stealing** — GA solves are seconds of compute and results are
  pure functions of the payload, so when the home shard's GA backlog
  exceeds the least-loaded shard's by at least ``steal_margin`` the
  request is stolen by the least-loaded one.  Content is unaffected
  (the shard identity never enters the solver), only latency is.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = ["HashRing", "RouteDecision", "choose_shard"]


def _hash_point(key: str) -> int:
    return int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Consistent-hash ring over shard ids with virtual nodes.

    ``replicas`` virtual points per shard keep the key space split
    roughly evenly (64 points gives a few percent imbalance, plenty for
    a handful of shards).  The ring depends only on the shard *ids*, so
    any coordinator constructing it from the same topology routes every
    fingerprint identically.
    """

    def __init__(self, node_ids: Sequence[str], replicas: int = 64) -> None:
        if not node_ids:
            raise ValueError("HashRing needs at least one node id")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError(f"duplicate node ids: {sorted(node_ids)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.node_ids = tuple(node_ids)
        self.replicas = int(replicas)
        points = [
            (_hash_point(f"{node}#{replica}"), node)
            for node in node_ids
            for replica in range(replicas)
        ]
        points.sort()
        self._points = points
        self._keys = [p[0] for p in points]

    def node_for(self, key: str, alive: Iterable[str] | None = None) -> str:
        """The shard owning *key*; dead shards are walked past.

        ``alive`` restricts the candidates (``None`` means every node).
        Raises ``ValueError`` when no candidate is alive.
        """
        candidates = set(self.node_ids if alive is None else alive)
        if not candidates:
            raise ValueError("no live shards to route to")
        start = bisect.bisect_right(self._keys, _hash_point(key))
        n = len(self._points)
        for step in range(n):
            node = self._points[(start + step) % n][1]
            if node in candidates:
                return node
        raise ValueError(
            f"no ring point for any live shard {sorted(candidates)}"
        )  # pragma: no cover - candidates validated above


@dataclass(frozen=True)
class RouteDecision:
    """Where one request goes and why.

    ``home`` is the consistent-hash owner; ``node_id`` the shard
    actually chosen.  ``stolen`` marks a work-steal, ``failover`` marks
    a dead home shard walked past on the ring.
    """

    node_id: str
    home: str
    stolen: bool = False
    failover: bool = False


def choose_shard(
    ring: HashRing,
    fingerprint: str,
    solver: str,
    ga_inflight: Mapping[str, int],
    *,
    steal_margin: int = 1,
) -> RouteDecision:
    """Route one solve request to a live shard.

    ``ga_inflight`` maps *live* shard ids to their coordinator-tracked
    GA backlog; its key set defines liveness.  Fast-tier requests
    always go home (they are milliseconds; locality keeps shard-local
    caches warm).  GA requests are stolen by the least-loaded shard
    when the home backlog exceeds it by at least ``steal_margin``.
    """
    if steal_margin < 1:
        raise ValueError(f"steal_margin must be >= 1, got {steal_margin}")
    home = ring.node_for(fingerprint, alive=ga_inflight.keys())
    failover = home != ring.node_for(fingerprint)
    if solver == "ga" and len(ga_inflight) > 1:
        # Deterministic tie-break by node id keeps routing reproducible.
        least = min(ga_inflight, key=lambda node: (ga_inflight[node], node))
        if ga_inflight[home] - ga_inflight[least] >= steal_margin:
            return RouteDecision(least, home, stolen=True, failover=failover)
    return RouteDecision(home, home, failover=failover)
