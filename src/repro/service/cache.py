"""Content-addressed LRU result cache with a byte budget.

Schedules are pure functions of ``(problem, solver, params, seed)``, so
the service can answer a repeated request without re-running the solver.
Keys are content hashes: the problem's fingerprint (already computed by
:mod:`repro.io.json_io` for schedule/problem pairing) plus the canonical
JSON of the solve parameters.  Two clients submitting the same instance
therefore share one entry even if they serialized it independently.

Entries are complete wire payloads (JSON-compatible dicts); the budget
is accounted in encoded-JSON bytes, which is what the cache actually
saves the server from recomputing *and* what a persistent tier would
store.  Eviction is strict LRU.  ``get``/``put`` are thread-safe — the
server touches the cache from the event loop, benchmarks from threads.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any

__all__ = ["ResultCache", "cache_key"]


def cache_key(fingerprint: str, solver: str, **params: Any) -> str:
    """Content hash identifying one solve: problem + solver + params.

    ``params`` must be JSON-compatible; key order is canonicalized so
    equal parameter sets hash equally regardless of construction order.
    """
    blob = json.dumps(
        {"fingerprint": fingerprint, "solver": solver, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Bounded LRU mapping cache keys to response payload dicts.

    Parameters
    ----------
    max_bytes:
        Byte budget over the encoded-JSON size of all entries.  A single
        payload larger than the whole budget is never stored (it would
        just evict everything for one entry).
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, tuple[dict, int]] = OrderedDict()
        self._lock = threading.Lock()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> dict[str, Any] | None:
        """Return a shallow copy of the cached payload, or ``None``.

        The copy lets the caller stamp per-request fields (``id``,
        ``cached``) without mutating the stored entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return dict(entry[0])

    def put(self, key: str, payload: dict[str, Any]) -> bool:
        """Store *payload* under *key*; returns whether it was kept."""
        # Account encoded *bytes*, not code points: a non-ASCII payload
        # (problem names, error text) stores larger than len() of its
        # text suggests.  ensure_ascii=False + encode measures the
        # canonical UTF-8 size of the JSON document — what a persistent
        # tier would actually hold — instead of counting characters of
        # an escape-inflated ASCII rendering.
        size = len(
            json.dumps(
                payload,
                allow_nan=False,
                ensure_ascii=False,
                separators=(",", ":"),
            ).encode("utf-8")
        )
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self.bytes -= old[1]
            self._entries[key] = (payload, size)
            self.bytes += size
            while self.bytes > self.max_bytes:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self.bytes -= evicted_size
                self.evictions += 1
            return True

    def stats(self) -> dict[str, int]:
        """Counters for the ``status`` RPC and the obs gauges."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
