"""Tiered admission control: serve what you can, degrade what you can't.

The serving discipline follows the task-dropping literature (Mokhtari et
al., arXiv:2005.11050; Gentry et al., arXiv:1901.09312): robustness
under load comes from an explicit decision at the door, not from letting
a queue grow until clients time out.  Requests are split into two tiers:

* the **fast tier** — deterministic heuristics (HEFT, CPOP, PEFT,
  min-min), milliseconds per solve — is always admitted;
* the **GA tier** — the ε-constraint genetic solver, seconds per solve —
  is admitted only while its queue has room *and* the wait test of the
  configured mode passes.

Two admission modes share the queue-depth bound and differ in the wait
test:

* ``"tiered"`` (default) — the original point estimate: shed when the
  EWMA-predicted queue wait exceeds the request's deadline;
* ``"stream"`` — the probabilistic test of the streaming subsystem
  (:mod:`repro.stream.policies`): GA service times are modelled as a
  normal with EWMA mean *and* variance, and a request is shed when its
  probability of starting within the deadline falls below
  ``stream_threshold``.  This prices *uncertainty*: a wait whose mean
  fits the deadline but whose spread makes success a coin flip is shed
  in stream mode and admitted in tiered mode.

**Invariant — shed XOR enqueued.**  :meth:`AdmissionController.route`
returns exactly one tier per request and every routed request increments
exactly one of ``admitted_fast`` / ``admitted_ga`` / ``shed`` (the three
always sum to the number of ``route`` calls).  A ``"shed"`` decision is
a *terminal rewrite*: the server serves the degraded heuristic fallback
inline and the request never touches the GA queue, so no request can be
both shed and enqueued — in either mode.  A rejected GA request is
therefore not an error: the client always gets a valid (if less robust)
schedule flagged ``degraded: true``.  ``tests/unit/test_service.py``
pins both the partition and the never-enqueued property.

The wait predictor is an EWMA of recent GA solve times (stream mode adds
an EWMA variance); with no history yet, only the depth bound applies.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

__all__ = ["ADMISSION_MODES", "AdmissionDecision", "AdmissionController"]

#: Supported admission modes.
ADMISSION_MODES = ("tiered", "stream")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of routing one request.

    ``tier`` is ``"fast"`` (serve inline), ``"ga"`` (enqueue for the GA
    executor) or ``"shed"`` (serve the degraded heuristic fallback);
    ``reason`` explains a shed decision for the response and the trace.
    """

    tier: str
    reason: str | None = None


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class AdmissionController:
    """Routes requests to tiers and tracks the decisions it made.

    Parameters
    ----------
    ga_queue_limit:
        Maximum GA requests *waiting* (beyond the ones actively running
        on the executor).  Depth ``0`` disables queueing entirely: a GA
        request is only admitted while an executor slot is free.
    ga_workers:
        Concurrent GA executor slots (the service's ``--workers``).
    ewma_alpha:
        Smoothing factor for the GA service-time estimates.
    mode:
        ``"tiered"`` (EWMA point comparison) or ``"stream"``
        (probabilistic completion test); see the module docstring.
    stream_threshold:
        Stream mode only: shed a GA request whose probability of
        starting within its deadline is below this value.
    clock:
        Monotonic clock (injectable for tests); feeds the GA
        inter-arrival estimate behind :meth:`stream_load`.
    """

    def __init__(
        self,
        ga_queue_limit: int = 8,
        ga_workers: int = 1,
        *,
        ewma_alpha: float = 0.3,
        mode: str = "tiered",
        stream_threshold: float = 0.5,
        clock=time.monotonic,
    ) -> None:
        if ga_queue_limit < 0:
            raise ValueError(f"ga_queue_limit must be >= 0, got {ga_queue_limit}")
        if ga_workers < 1:
            raise ValueError(f"ga_workers must be >= 1, got {ga_workers}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {mode!r}; choose from {ADMISSION_MODES}"
            )
        if not 0.0 <= stream_threshold <= 1.0:
            raise ValueError(
                f"stream_threshold must be in [0, 1], got {stream_threshold}"
            )
        self.ga_queue_limit = int(ga_queue_limit)
        self.ga_workers = int(ga_workers)
        self.mode = mode
        self.stream_threshold = float(stream_threshold)
        self._ewma_alpha = float(ewma_alpha)
        self._clock = clock
        self._lock = threading.Lock()
        self.ga_seconds_ewma: float | None = None
        self.ga_seconds_var: float = 0.0
        self.interarrival_ewma: float | None = None
        self._last_ga_arrival: float | None = None
        self.admitted_fast = 0
        self.admitted_ga = 0
        self.shed = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0
        self.shed_probability = 0

    # -------------------------------------------------------------- routing

    def route(
        self,
        solver: str,
        ga_inflight: int,
        deadline_s: float | None = None,
    ) -> AdmissionDecision:
        """Decide the tier for one validated ``solve`` request.

        ``ga_inflight`` counts GA jobs handed to the executor and not yet
        resolved (running + queued); queue depth is what exceeds the
        worker slots.  Exactly one of the three tier counters is
        incremented per call (see the module invariant).
        """
        if solver != "ga":
            with self._lock:
                self.admitted_fast += 1
            return AdmissionDecision("fast")
        self._observe_ga_arrival()
        queued = max(0, ga_inflight - self.ga_workers)
        if queued >= self.ga_queue_limit and ga_inflight >= self.ga_workers:
            with self._lock:
                self.shed += 1
                self.shed_queue_full += 1
            return AdmissionDecision(
                "shed", f"ga queue full (depth {queued} >= {self.ga_queue_limit})"
            )
        if self.mode == "stream":
            p = self.start_probability(queued, deadline_s)
            if p is not None and p < self.stream_threshold:
                with self._lock:
                    self.shed += 1
                    self.shed_probability += 1
                return AdmissionDecision(
                    "shed",
                    f"on-time start probability {p:.3f} below threshold "
                    f"{self.stream_threshold:g}",
                )
        else:
            wait = self.predicted_wait_s(queued)
            if deadline_s is not None and wait is not None and wait > deadline_s:
                with self._lock:
                    self.shed += 1
                    self.shed_deadline += 1
                return AdmissionDecision(
                    "shed",
                    f"predicted queue wait {wait:.2f}s exceeds deadline "
                    f"{deadline_s:g}s",
                )
        with self._lock:
            self.admitted_ga += 1
        return AdmissionDecision("ga")

    # ------------------------------------------------------------ estimator

    def predicted_wait_s(self, queued: int) -> float | None:
        """Expected queue wait for a request arriving behind *queued* jobs.

        ``None`` until at least one GA solve has completed — admission
        then falls back to the depth bound alone rather than guessing.
        """
        if self.ga_seconds_ewma is None:
            return None
        return queued * self.ga_seconds_ewma / self.ga_workers

    def start_probability(
        self, queued: int, deadline_s: float | None
    ) -> float | None:
        """P(queue wait <= deadline) under the normal service-time model.

        The wait behind *queued* jobs has mean ``queued * mu / workers``
        and variance ``queued * var / workers^2`` (independent solves).
        ``None`` when there is no deadline or no history yet — the
        caller then falls back to the depth bound alone.
        """
        if deadline_s is None or self.ga_seconds_ewma is None:
            return None
        mean = queued * self.ga_seconds_ewma / self.ga_workers
        var = queued * self.ga_seconds_var / (self.ga_workers**2)
        if var <= 0.0:
            return 1.0 if mean <= deadline_s else 0.0
        return _phi((deadline_s - mean) / math.sqrt(var))

    def observe_ga_seconds(self, seconds: float) -> None:
        """Feed one completed GA solve's duration into the estimators."""
        with self._lock:
            x = float(seconds)
            if self.ga_seconds_ewma is None:
                self.ga_seconds_ewma = x
                self.ga_seconds_var = 0.0
            else:
                a = self._ewma_alpha
                diff = x - self.ga_seconds_ewma
                self.ga_seconds_ewma += a * diff
                # West's exponentially weighted variance update.
                self.ga_seconds_var = (1.0 - a) * (
                    self.ga_seconds_var + a * diff * diff
                )

    def _observe_ga_arrival(self) -> None:
        """Update the GA inter-arrival EWMA (feeds the load estimate)."""
        now = self._clock()
        with self._lock:
            if self._last_ga_arrival is not None:
                gap = max(now - self._last_ga_arrival, 1e-9)
                if self.interarrival_ewma is None:
                    self.interarrival_ewma = gap
                else:
                    a = self._ewma_alpha
                    self.interarrival_ewma += a * (gap - self.interarrival_ewma)
            self._last_ga_arrival = now

    def stream_load(self) -> float | None:
        """Estimated offered GA load relative to executor capacity.

        ``service_time / (interarrival * workers)``: 1.0 means GA work
        arrives exactly as fast as the executor retires it, above 1 the
        tier is oversubscribed.  ``None`` until both EWMAs have data.
        """
        if self.ga_seconds_ewma is None or self.interarrival_ewma is None:
            return None
        return self.ga_seconds_ewma / (self.interarrival_ewma * self.ga_workers)

    def stats(self) -> dict[str, float | int | str | None]:
        """Counters for the ``status`` RPC and the obs gauges."""
        with self._lock:
            return {
                "mode": self.mode,
                "ga_queue_limit": self.ga_queue_limit,
                "ga_workers": self.ga_workers,
                "admitted_fast": self.admitted_fast,
                "admitted_ga": self.admitted_ga,
                "shed": self.shed,
                "shed_queue_full": self.shed_queue_full,
                "shed_deadline": self.shed_deadline,
                "shed_probability": self.shed_probability,
                "ga_seconds_ewma": self.ga_seconds_ewma,
                "ga_seconds_var": self.ga_seconds_var,
                "stream_threshold": self.stream_threshold,
                "stream_load": (
                    None
                    if self.ga_seconds_ewma is None
                    or self.interarrival_ewma is None
                    else self.ga_seconds_ewma
                    / (self.interarrival_ewma * self.ga_workers)
                ),
            }
