"""Tiered admission control: serve what you can, degrade what you can't.

The serving discipline follows the task-dropping literature (Mokhtari et
al., arXiv:2005.11050; Gentry et al., arXiv:1901.09312): robustness
under load comes from an explicit decision at the door, not from letting
a queue grow until clients time out.  Requests are split into two tiers:

* the **fast tier** — deterministic heuristics (HEFT, CPOP, PEFT,
  min-min), milliseconds per solve — is always admitted;
* the **GA tier** — the ε-constraint genetic solver, seconds per solve —
  is admitted only while its queue has room *and* the predicted queue
  wait fits the request's deadline.

A rejected GA request is not an error: it is **shed** to the fast tier
and served a HEFT schedule flagged ``degraded: true``, so the client
always gets a valid (if less robust) schedule under overload.

The wait predictor is an EWMA of recent GA solve times; with no history
yet, only the depth bound applies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of routing one request.

    ``tier`` is ``"fast"`` (serve inline), ``"ga"`` (enqueue for the GA
    executor) or ``"shed"`` (serve the degraded heuristic fallback);
    ``reason`` explains a shed decision for the response and the trace.
    """

    tier: str
    reason: str | None = None


class AdmissionController:
    """Routes requests to tiers and tracks the decisions it made.

    Parameters
    ----------
    ga_queue_limit:
        Maximum GA requests *waiting* (beyond the ones actively running
        on the executor).  Depth ``0`` disables queueing entirely: a GA
        request is only admitted while an executor slot is free.
    ga_workers:
        Concurrent GA executor slots (the service's ``--workers``).
    ewma_alpha:
        Smoothing factor for the GA service-time estimate.
    """

    def __init__(
        self,
        ga_queue_limit: int = 8,
        ga_workers: int = 1,
        *,
        ewma_alpha: float = 0.3,
    ) -> None:
        if ga_queue_limit < 0:
            raise ValueError(f"ga_queue_limit must be >= 0, got {ga_queue_limit}")
        if ga_workers < 1:
            raise ValueError(f"ga_workers must be >= 1, got {ga_workers}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.ga_queue_limit = int(ga_queue_limit)
        self.ga_workers = int(ga_workers)
        self._ewma_alpha = float(ewma_alpha)
        self._lock = threading.Lock()
        self.ga_seconds_ewma: float | None = None
        self.admitted_fast = 0
        self.admitted_ga = 0
        self.shed = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0

    # -------------------------------------------------------------- routing

    def route(
        self,
        solver: str,
        ga_inflight: int,
        deadline_s: float | None = None,
    ) -> AdmissionDecision:
        """Decide the tier for one validated ``solve`` request.

        ``ga_inflight`` counts GA jobs handed to the executor and not yet
        resolved (running + queued); queue depth is what exceeds the
        worker slots.
        """
        if solver != "ga":
            with self._lock:
                self.admitted_fast += 1
            return AdmissionDecision("fast")
        queued = max(0, ga_inflight - self.ga_workers)
        if queued >= self.ga_queue_limit and ga_inflight >= self.ga_workers:
            with self._lock:
                self.shed += 1
                self.shed_queue_full += 1
            return AdmissionDecision(
                "shed", f"ga queue full (depth {queued} >= {self.ga_queue_limit})"
            )
        wait = self.predicted_wait_s(queued)
        if deadline_s is not None and wait is not None and wait > deadline_s:
            with self._lock:
                self.shed += 1
                self.shed_deadline += 1
            return AdmissionDecision(
                "shed",
                f"predicted queue wait {wait:.2f}s exceeds deadline "
                f"{deadline_s:g}s",
            )
        with self._lock:
            self.admitted_ga += 1
        return AdmissionDecision("ga")

    # ------------------------------------------------------------ estimator

    def predicted_wait_s(self, queued: int) -> float | None:
        """Expected queue wait for a request arriving behind *queued* jobs.

        ``None`` until at least one GA solve has completed — admission
        then falls back to the depth bound alone rather than guessing.
        """
        if self.ga_seconds_ewma is None:
            return None
        return queued * self.ga_seconds_ewma / self.ga_workers

    def observe_ga_seconds(self, seconds: float) -> None:
        """Feed one completed GA solve's duration into the estimator."""
        with self._lock:
            if self.ga_seconds_ewma is None:
                self.ga_seconds_ewma = float(seconds)
            else:
                a = self._ewma_alpha
                self.ga_seconds_ewma = (
                    a * float(seconds) + (1.0 - a) * self.ga_seconds_ewma
                )

    def stats(self) -> dict[str, float | int | None]:
        """Counters for the ``status`` RPC and the obs gauges."""
        with self._lock:
            return {
                "ga_queue_limit": self.ga_queue_limit,
                "ga_workers": self.ga_workers,
                "admitted_fast": self.admitted_fast,
                "admitted_ga": self.admitted_ga,
                "shed": self.shed,
                "shed_queue_full": self.shed_queue_full,
                "shed_deadline": self.shed_deadline,
                "ga_seconds_ewma": self.ga_seconds_ewma,
            }
