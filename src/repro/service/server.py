"""The scheduler-as-a-service daemon.

One asyncio event loop owns all serving state — cache, admission
counters, the coalescing map — while the actual solving happens off the
loop: heuristics on a small thread pool, GA work on a
:class:`repro.cluster.scheduler.Scheduler` driven through its
non-blocking ``submit``/``poll`` API by a dedicated backend thread
(in-process when ``workers <= 1``, a supervised process pool above
that).  The split mirrors dask ``distributed``: the server is a state
machine that must never block, and computation is somebody else's
problem.

Request lifecycle for ``solve``::

    decode -> normalize -> deserialize problem (fingerprint check)
      -> admission.route()          fast | ga | shed
      -> cache lookup               (content-addressed; hit -> respond)
      -> coalesce                   (identical in-flight solve -> share it)
      -> execute                    (fast executor | GA backend)
      -> cache store -> respond

Shedding is *service degradation*, not failure: an overloaded GA tier
answers with the HEFT schedule for the same instance and seed, flagged
``degraded: true`` — the client always gets a valid schedule (see
``docs/service.md`` for the overload semantics).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.io.features import problem_features
from repro.io.json_io import problem_fingerprint, problem_from_dict
from repro.obs import runtime as obs
from repro.service.admission import ADMISSION_MODES, AdmissionController
from repro.service.cache import ResultCache, cache_key
from repro.service.comm import (
    Comm,
    CommClosedError,
    DEFAULT_MAX_FRAME,
    FrameTooLargeError,
)
from repro.service.comm import listen as comm_listen
from repro.service.warmstart import WarmStartStore
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SOLVERS,
    ProtocolError,
    decode,
    error_response,
    normalize_request,
    ok_response,
)
from repro.service.solvers import execute_payload, solve_params

__all__ = ["ServiceConfig", "SchedulerService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon knobs (all have serving-friendly defaults).

    Attributes
    ----------
    host / port:
        Bind address; port ``0`` asks the OS for a free port (the bound
        port is in :attr:`SchedulerService.port` after ``start``).
    workers:
        GA executor slots.  ``<= 1`` solves in-process on the backend
        thread (no pickling, the bit-identical serial path); above that
        the backend drives a supervised ``repro.cluster`` process pool.
    ga_queue_limit:
        GA requests allowed to *wait* beyond the running ones; the
        excess is shed to the degraded heuristic tier.
    admission_mode:
        ``"tiered"`` (EWMA point estimate) or ``"stream"``
        (probabilistic on-time-start test from the streaming
        subsystem); see :mod:`repro.service.admission`.  In both modes
        a shed request is served the degraded fallback inline and is
        never enqueued for the GA executor.
    stream_threshold:
        Stream mode only: shed a GA request whose on-time start
        probability is below this value.
    cache_bytes:
        Result cache budget (encoded-JSON bytes).
    fast_threads:
        Thread-pool width for the heuristic tier.
    drain_timeout:
        Seconds ``shutdown`` waits for in-flight requests.
    listen:
        Explicit comm address (``tcp://host:port`` or ``inproc://name``)
        overriding ``host``/``port``.  This is how a shard serves over
        the in-process transport; the default is the classic TCP bind.
    node_id:
        Identity stamped into spans/gauges and the ``status`` payload
        when this service runs as a shard.  Empty for the plain
        single-node daemon (keeping its telemetry names unchanged).
    max_line_bytes:
        Per-frame byte limit on every connection.  An over-limit request
        line is answered with a clean ``bad-request`` error before the
        connection closes (it cannot be resynchronized mid-frame).
    warm_start_enabled:
        Whether this node consults/feeds the warm-start store.  Shards
        disable it — the coordinator owns warm starts so sharded
        responses stay bit-identical to the single-node path.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    ga_queue_limit: int = 8
    admission_mode: str = "tiered"
    stream_threshold: float = 0.5
    cache_bytes: int = 64 * 1024 * 1024
    fast_threads: int = 4
    drain_timeout: float = 30.0
    listen: str | None = None
    node_id: str = ""
    max_line_bytes: int = DEFAULT_MAX_FRAME
    warm_start_enabled: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_line_bytes < 1024:
            raise ValueError(
                f"max_line_bytes must be >= 1024, got {self.max_line_bytes}"
            )
        if self.admission_mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.admission_mode!r}; "
                f"choose from {ADMISSION_MODES}"
            )
        if not 0.0 <= self.stream_threshold <= 1.0:
            raise ValueError(
                f"stream_threshold must be in [0, 1], got {self.stream_threshold}"
            )
        if self.fast_threads < 1:
            raise ValueError(f"fast_threads must be >= 1, got {self.fast_threads}")
        if self.drain_timeout <= 0:
            raise ValueError("drain_timeout must be positive")


class _GaBackend:
    """Feeds GA jobs to a cluster Scheduler from a daemon thread.

    The event loop hands ``(payload, future)`` pairs over a thread-safe
    queue; the thread submits them to the incremental scheduler and
    resolves the asyncio futures back on the loop as outcomes arrive.
    With one worker the scheduler's serial path runs the solve inline on
    this thread, which is exactly the single-slot GA tier.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, n_workers: int) -> None:
        self._loop = loop
        self._n_workers = n_workers
        self._jobs: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-ga", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        self._stop.set()
        self._thread.join(timeout=timeout)

    def submit(self, payload: dict, future: asyncio.Future) -> None:
        self._jobs.put((payload, future))

    # ----------------------------------------------------------- thread side

    def _run(self) -> None:
        from repro.cluster.scheduler import ClusterConfig, Scheduler
        from repro.cluster.task import TaskSpec

        scheduler = Scheduler(
            ClusterConfig(n_workers=self._n_workers, poll_interval=0.02)
        )
        pending: dict[str, asyncio.Future] = {}
        seq = 0
        try:
            while True:
                while True:
                    try:
                        payload, future = self._jobs.get_nowait()
                    except queue.Empty:
                        break
                    seq += 1
                    pending[f"ga-{seq}"] = future
                    scheduler.submit(
                        TaskSpec(
                            key=f"ga-{seq}",
                            fn=execute_payload,
                            args=(payload,),
                            max_retries=1,
                        )
                    )
                if not pending:
                    if self._stop.is_set():
                        break
                    time.sleep(0.02)
                    continue
                for outcome in scheduler.poll(timeout=0.05):
                    future = pending.pop(outcome.key)
                    if outcome.ok:
                        self._post(future.set_result, outcome.result)
                    else:
                        self._post(
                            future.set_exception,
                            RuntimeError(outcome.error or "GA task failed"),
                        )
        finally:
            scheduler.close()
            for future in pending.values():
                self._post(
                    future.set_exception, RuntimeError("service shutting down")
                )

    def _post(self, setter: Callable, value: Any) -> None:
        def apply() -> None:
            future = setter.__self__
            if not future.done():
                setter(value)

        self._loop.call_soon_threadsafe(apply)


class SchedulerService:
    """The daemon: accepts JSON-lines connections, serves schedules.

    Typical embedded use (the CLI's ``repro serve`` does the same) ::

        service = SchedulerService(ServiceConfig(port=0, workers=2))
        asyncio.run(service.run())            # serves until 'shutdown'

    or, for tests, ``start()``/``aclose()`` inside an existing loop.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.progress = progress
        self.cache = ResultCache(self.config.cache_bytes)
        self.admission = AdmissionController(
            self.config.ga_queue_limit,
            self.config.workers,
            mode=self.config.admission_mode,
            stream_threshold=self.config.stream_threshold,
        )
        self.warm_store = WarmStartStore()
        self.port: int | None = None
        self.counters: dict[str, int] = {
            "requests": 0,
            "solve": 0,
            "status": 0,
            "ping": 0,
            "errors": 0,
            "degraded": 0,
            "coalesced": 0,
            "warm_start_hits": 0,
            "warm_start_misses": 0,
        }
        self._inflight: dict[str, asyncio.Future] = {}
        self._ga_inflight = 0
        self._active = 0
        self._draining = False
        self._started = time.monotonic()
        self._listener = None
        self._backend: _GaBackend | None = None
        self._fast_executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conns: set[Comm] = set()
        # Telemetry names stay unchanged on the classic single node; a
        # shard suffixes its node id so per-shard gauges don't collide.
        self._gauge_suffix = (
            f".{self.config.node_id}" if self.config.node_id else ""
        )

    @property
    def listen_address(self) -> str:
        """The comm address this service serves (or would serve) on."""
        if self._listener is not None:
            return self._listener.address
        return self.config.listen or f"tcp://{self.config.host}:{self.config.port}"

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listener and start the GA backend."""
        loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._fast_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.fast_threads,
            thread_name_prefix="repro-service-fast",
        )
        self._backend = _GaBackend(loop, self.config.workers)
        self._backend.start()
        self._listener = await comm_listen(
            self.listen_address,
            self._handle_comm,
            max_frame=self.config.max_line_bytes,
        )
        self.port = self._listener.port
        self._started = time.monotonic()
        self._log(
            f"listening on {self._listener.address} "
            f"(workers={self.config.workers}, "
            f"ga_queue_limit={self.config.ga_queue_limit})"
        )

    async def run(self) -> None:
        """Serve until a ``shutdown`` request, then drain and close."""
        await self.start()
        try:
            await self._shutdown_event.wait()
            deadline = time.monotonic() + self.config.drain_timeout
            while self._active > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            await asyncio.sleep(0.05)  # let the final acks flush
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting connections and release every resource."""
        if self._listener is not None:
            await self._listener.aclose()
            self._listener = None
        # Established connections are not closed by the listener.  Close
        # their comms so each handler unblocks with EOF and finishes on
        # its own (cancelling the tasks instead trips a noisy
        # StreamReaderProtocol callback on CPython 3.11), then cancel any
        # straggler as a last resort.
        for comm in list(self._conns):
            await comm.aclose()
        if self._conn_tasks:
            _, stragglers = await asyncio.wait(
                list(self._conn_tasks), timeout=5.0
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
            self._conn_tasks.clear()
        self._conns.clear()
        if self._backend is not None:
            self._backend.stop()
            self._backend = None
        if self._fast_executor is not None:
            self._fast_executor.shutdown(wait=False, cancel_futures=True)
            self._fast_executor = None
        self._log("stopped")

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------- connections

    async def _handle_comm(self, comm: Comm) -> None:
        """Serve one connection: requests in order, one response each."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conns.add(comm)
        try:
            while True:
                try:
                    line = await comm.read_frame()
                except FrameTooLargeError:
                    # The channel cannot be resynchronized mid-frame:
                    # answer with a clean protocol error, then close.
                    self.counters["errors"] += 1
                    obs.add("service.errors")
                    try:
                        await comm.send(
                            error_response(
                                None,
                                "bad-request",
                                "request line exceeds the "
                                f"{self.config.max_line_bytes} byte limit; "
                                "closing the connection",
                            )
                        )
                    except (CommClosedError, FrameTooLargeError):
                        pass
                    break
                except CommClosedError:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                try:
                    await comm.send(response)
                except CommClosedError:
                    break
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conns.discard(comm)
            await comm.aclose()

    async def _respond(self, line: bytes) -> dict[str, Any]:
        self.counters["requests"] += 1
        obs.add("service.requests")
        try:
            request = normalize_request(decode(line))
        except ProtocolError as exc:
            self.counters["errors"] += 1
            obs.add("service.errors")
            return error_response(None, exc.code, str(exc))
        op = request["op"]
        request_id = request.get("id")
        self._active += 1
        try:
            attrs = {"op": op}
            if self.config.node_id:
                attrs["node"] = self.config.node_id
            with obs.trace("service.request", **attrs) as span:
                if op == "ping":
                    self.counters["ping"] += 1
                    return ok_response(request_id, op="ping")
                if op == "status":
                    self.counters["status"] += 1
                    return self._status_response(request_id)
                if op == "shutdown":
                    self._draining = True
                    # Ack first; run() drains after the event fires.
                    asyncio.get_running_loop().call_soon(
                        self._shutdown_event.set
                    )
                    return ok_response(request_id, op="shutdown")
                return await self._solve(request, span)
        except ProtocolError as exc:
            self.counters["errors"] += 1
            obs.add("service.errors")
            return error_response(request_id, exc.code, str(exc))
        except Exception as exc:  # solver bug: report, keep serving
            self.counters["errors"] += 1
            obs.add("service.errors")
            return error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._active -= 1

    # ------------------------------------------------------------------ solve

    async def _solve(self, request: dict[str, Any], span) -> dict[str, Any]:
        if self._draining:
            raise ProtocolError("shutting-down", "server is shutting down")
        self.counters["solve"] += 1
        t0 = time.perf_counter()
        try:
            problem = problem_from_dict(request["problem"])
            fingerprint = problem_fingerprint(problem)
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(
                "bad-problem", f"problem payload rejected: {exc}"
            ) from exc

        decision = self.admission.route(
            request["solver"], self._ga_inflight, request["deadline_s"]
        )
        degraded = decision.tier == "shed"
        if degraded:
            self.counters["degraded"] += 1
            obs.add("service.shed")
            obs.event(
                "service.shed",
                solver=request["solver"],
                reason=decision.reason,
            )
            # The degraded tier is HEFT with the same instance and seed —
            # same cache entry as an explicit HEFT request would hit.
            request = dict(request, solver="heft")
        span.set(solver=request["solver"], tier=decision.tier)

        request, features, warm_seeds_count = self._apply_warm_start(
            request, problem
        )

        key = cache_key(
            fingerprint, request["solver"], **solve_params(request)
        )
        core, cached, coalesced = await self._compute(
            key, request, decision.tier
        )

        self._record_warm_start(core, problem, fingerprint, features)
        span.set(cached=cached, degraded=degraded)
        if cached:
            obs.add("service.cache_hit")
        else:
            obs.add("service.cache_miss")
        response = ok_response(request["id"], **core)
        response["cached"] = cached
        response["coalesced"] = coalesced
        response["degraded"] = degraded
        response["warm_seeds"] = warm_seeds_count
        if degraded:
            response["requested_solver"] = "ga"
            response["degraded_reason"] = decision.reason
        response["elapsed_s"] = time.perf_counter() - t0
        return response

    # ------------------------------------------------------------ warm starts

    def _apply_warm_start(
        self, request: dict[str, Any], problem
    ) -> tuple[dict[str, Any], Any, int]:
        """Inject warm-start seeds into a GA request (coordinator reuses this).

        The seeds become part of the request payload *before* the cache
        key is formed, so identical (problem, params, seeds) requests
        share one entry and the response stays reproducible.  Returns
        the (possibly rewritten) request, the computed feature vector
        (``None`` if not needed) and the number of injected seeds.
        """
        if (
            not self.config.warm_start_enabled
            or request["solver"] != "ga"
            or not request.get("warm_start", True)
            or request.get("warm_seeds")
        ):
            return request, None, len(request.get("warm_seeds") or [])
        features = problem_features(problem)
        seeds = self.warm_store.suggest(problem.n, problem.m, features)
        if seeds:
            self.counters["warm_start_hits"] += 1
            obs.add("service.warm_start_hit")
            return dict(request, warm_seeds=seeds), features, len(seeds)
        self.counters["warm_start_misses"] += 1
        obs.add("service.warm_start_miss")
        return request, features, 0

    def _record_warm_start(
        self, core: dict[str, Any], problem, fingerprint: str, features
    ) -> None:
        """Feed the store with the run's best chromosome so later
        near-match requests start from it (cache hits re-record to
        refresh the entry's eviction age)."""
        if not self.config.warm_start_enabled:
            return
        chromosome = core.get("ga_chromosome")
        if chromosome is not None:
            if features is None:
                features = problem_features(problem)
            self.warm_store.record(
                problem.n,
                problem.m,
                fingerprint,
                features,
                chromosome["order"],
                chromosome["proc_of"],
            )

    async def _compute(
        self, key: str, request: dict[str, Any], tier: str
    ) -> tuple[dict[str, Any], bool, bool]:
        """Resolve one solve: cache, coalesce with an in-flight twin, or run."""
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True, False
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["coalesced"] += 1
            obs.add("service.coalesced")
            core = await asyncio.shield(inflight)
            return dict(core), False, True
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            if tier == "ga":
                core = await self._run_ga(request, future)
            else:
                core = await loop.run_in_executor(
                    self._fast_executor, execute_payload, dict(request)
                )
                if not future.done():
                    future.set_result(core)
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
            # A coalesced waiter may never retrieve it; don't warn.
            future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        self.cache.put(key, core)
        return dict(core), False, False

    async def _run_ga(
        self, request: dict[str, Any], future: asyncio.Future
    ) -> dict[str, Any]:
        self._ga_inflight += 1
        obs.set_gauge(
            f"service.ga_inflight{self._gauge_suffix}", float(self._ga_inflight)
        )
        t0 = time.perf_counter()
        try:
            self._backend.submit(dict(request), future)
            core = await asyncio.shield(future)
            self.admission.observe_ga_seconds(time.perf_counter() - t0)
            return core
        finally:
            self._ga_inflight -= 1
            obs.set_gauge(
                f"service.ga_inflight{self._gauge_suffix}",
                float(self._ga_inflight),
            )

    # ----------------------------------------------------------------- status

    def _status_response(self, request_id: Any) -> dict[str, Any]:
        queue_depth = max(0, self._ga_inflight - self.config.workers)
        obs.set_gauge(
            f"service.ga_queue_depth{self._gauge_suffix}", float(queue_depth)
        )
        load = self.admission.stream_load()
        if load is not None:
            obs.set_gauge(
                f"service.stream_load{self._gauge_suffix}", float(load)
            )
        server: dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "workers": self.config.workers,
            "draining": self._draining,
        }
        if self.config.node_id:
            server["node_id"] = self.config.node_id
        return ok_response(
            request_id,
            op="status",
            server=server,
            requests=dict(self.counters),
            cache=self.cache.stats(),
            admission=self.admission.stats(),
            warm_start=self.warm_store.stats(),
            ga={
                "inflight": self._ga_inflight,
                "queue_depth": queue_depth,
                "queue_limit": self.config.ga_queue_limit,
            },
            solvers={
                "fast": [s for s in SOLVERS if s != "ga"],
                "queued": ["ga"],
            },
        )
