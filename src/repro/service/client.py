"""Synchronous client for the scheduler service.

A thin blocking wrapper over one TCP connection: requests go out as JSON
lines, responses come back in order.  It is what ``repro submit`` and
the integration tests use; anything that can write JSON lines to a
socket is an equally valid client (see ``docs/service.md`` for the
wire format).
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.core.problem import SchedulingProblem
from repro.io.json_io import problem_to_dict
from repro.service.protocol import decode, encode

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An ``ok: false`` response, surfaced as an exception.

    Attributes
    ----------
    code / message:
        The wire error (see :data:`repro.service.protocol.ERROR_CODES`).
    response:
        The full response dict, for callers that need the envelope.
    """

    def __init__(self, response: dict[str, Any]) -> None:
        error = response.get("error") or {}
        self.code = error.get("code", "internal")
        self.message = error.get("message", "unknown error")
        self.response = response
        super().__init__(f"[{self.code}] {self.message}")


class ServiceClient:
    """One blocking connection to a running :class:`SchedulerService`.

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 8642) as client:
            response = client.solve(problem, solver="ga", epsilon=1.2, seed=7)

    Parameters
    ----------
    host / port:
        The server's bind address.
    timeout:
        Socket timeout in seconds (``None`` blocks indefinitely — GA
        solves can take a while).
    retry_s:
        Keep retrying the initial connection for this many seconds
        (covers the just-started-server race in scripts and CI).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        timeout: float | None = None,
        retry_s: float = 0.0,
    ) -> None:
        self.host = host
        self.port = port
        deadline = time.monotonic() + retry_s
        while True:
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._file = self._sock.makefile("rwb")
        self._broken = False

    # ------------------------------------------------------------- transport

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one raw request dict and return the raw response dict.

        After a transport error — most importantly a socket timeout —
        the connection is marked **broken** and every further request
        fails fast with :class:`ConnectionError`: a timed-out request's
        response may still arrive later, and reading it as the answer to
        the *next* request would silently desynchronize the stream.
        Reconnect with a fresh client instead.
        """
        if self._broken:
            raise ConnectionError(
                "connection is broken after an earlier transport error; "
                "responses would be out of sync — open a new ServiceClient"
            )
        try:
            self._file.write(encode(message))
            self._file.flush()
            line = self._file.readline()
        except (socket.timeout, OSError):
            self._broken = True
            raise
        if not line:
            self._broken = True
            raise ConnectionError("server closed the connection")
        return decode(line)

    def close(self) -> None:
        """Close the connection (idempotent, exception-safe).

        Closing the buffered file flushes it, which can raise (e.g.
        ``BrokenPipeError`` when the server is gone); ``close`` swallows
        transport errors so cleanup paths — ``with`` blocks unwinding an
        exception — never raise a second time.
        """
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- ops

    def solve(
        self,
        problem: SchedulingProblem | dict[str, Any],
        *,
        solver: str = "ga",
        epsilon: float = 1.0,
        seed: int = 0,
        n_realizations: int = 500,
        deadline_s: float | None = None,
        ga: dict[str, int] | None = None,
        warm_start: bool = True,
        request_id: Any = None,
        check: bool = True,
    ) -> dict[str, Any]:
        """Solve *problem* remotely; returns the response dict.

        *problem* may be a :class:`SchedulingProblem` (serialized here)
        or an already-encoded :func:`repro.io.problem_to_dict` payload.
        ``warm_start=False`` forbids the server from seeding a GA solve
        with chromosomes of previously solved near-match problems.
        With ``check`` (the default), an error response raises
        :class:`ServiceError` instead of being returned.
        """
        payload = (
            problem
            if isinstance(problem, dict)
            else problem_to_dict(problem)
        )
        message: dict[str, Any] = {
            "op": "solve",
            "problem": payload,
            "solver": solver,
            "epsilon": epsilon,
            "seed": seed,
            "n_realizations": n_realizations,
            "warm_start": warm_start,
        }
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if ga:
            message["ga"] = ga
        if request_id is not None:
            message["id"] = request_id
        response = self.request(message)
        if check and not response.get("ok"):
            raise ServiceError(response)
        return response

    def status(self) -> dict[str, Any]:
        """Server counters: cache, admission, queue depth, uptime."""
        response = self.request({"op": "status"})
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.request({"op": "ping"}).get("ok"))

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain and exit its serve loop."""
        response = self.request({"op": "shutdown"})
        if not response.get("ok"):
            raise ServiceError(response)
        return response
