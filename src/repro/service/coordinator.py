"""Coordinator of the sharded scheduler service.

The coordinator speaks the exact same wire protocol as the single-node
:class:`~repro.service.server.SchedulerService` — clients cannot tell
which one they connected to — but instead of solving, it routes every
``solve`` to one of N scheduler-worker shards over the comm layer:

* **routing** — the problem fingerprint is consistent-hashed to a home
  shard (:mod:`repro.service.sharding`); GA requests may be stolen by
  the least-loaded shard when the home backlog is deep;
* **warm starts** — the coordinator owns the warm-start store and
  injects seeds into the payload *before* routing (shards run with the
  store disabled), so sharded responses stay bit-identical to the
  single-node daemon for any shard count;
* **replicated cache** — every non-degraded core is written through to
  a coordinator-side :class:`ResultCache`, so a repeat request is a hit
  even after the shard that computed it was killed;
* **supervision** — a reader task per shard detects comm loss, fails
  the shard's in-flight dispatches, and respawns the shard (bounded by
  ``max_restarts``); failed dispatches are re-routed to live shards,
  which is safe because :func:`repro.service.solvers.execute_payload`
  is a pure function of the payload.

Shards are either in-process :class:`ShardServer` instances over the
``inproc://`` transport (tests, docs) or forked OS processes serving
``tcp://`` (real parallelism; the chaos story).
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.io.json_io import problem_fingerprint, problem_from_dict
from repro.obs import runtime as obs
from repro.service.admission import ADMISSION_MODES
from repro.service.cache import cache_key
from repro.service.comm import Comm, CommClosedError, DEFAULT_MAX_FRAME
from repro.service.comm import connect as comm_connect
from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    SOLVERS,
    ProtocolError,
    ok_response,
)
from repro.service.server import SchedulerService, ServiceConfig
from repro.service.shard import ShardServer, shard_config, shard_main
from repro.service.sharding import HashRing, choose_shard
from repro.service.solvers import solve_params

__all__ = ["CoordinatorConfig", "Coordinator", "ShardDown"]

TRANSPORTS = ("inproc", "tcp")

#: Response fields the coordinator strips from a shard reply to recover
#: the cacheable core (everything the single-node ``_solve`` adds around
#: the ``execute_payload`` result).
_ENVELOPE_FIELDS = frozenset(
    {
        "ok",
        "protocol",
        "id",
        "cached",
        "coalesced",
        "degraded",
        "warm_seeds",
        "elapsed_s",
        "requested_solver",
        "degraded_reason",
    }
)

#: Distinguishes coordinator inproc namespaces when several coordinators
#: live in one process (the test suite does).
_NAMESPACE = itertools.count(1)


class ShardDown(Exception):
    """The dispatch target died before answering; re-route the request."""


@dataclass(frozen=True)
class CoordinatorConfig:
    """Topology and per-shard knobs of a sharded deployment.

    Attributes
    ----------
    host / port / listen:
        The client-facing bind, same semantics as
        :class:`~repro.service.server.ServiceConfig`.
    shards:
        Number of scheduler-worker shards.
    transport:
        ``"inproc"`` keeps shards in the coordinator's event loop (fast
        to start, no parallelism — tests and docs); ``"tcp"`` forks one
        OS process per shard (real multi-core GA throughput).
    workers / ga_queue_limit / admission_mode / stream_threshold /
    fast_threads:
        Forwarded to each shard's :class:`ServiceConfig`.
    cache_bytes / shard_cache_bytes:
        Budgets of the coordinator's replicated result cache and of each
        shard's local cache.
    steal_margin:
        Minimum home-vs-least-loaded GA backlog difference before a GA
        request is stolen (see :func:`repro.service.sharding.choose_shard`).
    max_restarts:
        Times one shard may be respawned before it is left dead (the
        ring fails its keys over to the survivors).
    dispatch_retries:
        Re-route attempts per request when shards die mid-solve.
    """

    host: str = "127.0.0.1"
    port: int = 0
    listen: str | None = None
    shards: int = 2
    transport: str = "inproc"
    workers: int = 1
    ga_queue_limit: int = 8
    admission_mode: str = "tiered"
    stream_threshold: float = 0.5
    cache_bytes: int = 64 * 1024 * 1024
    shard_cache_bytes: int = 64 * 1024 * 1024
    fast_threads: int = 4
    drain_timeout: float = 30.0
    max_line_bytes: int = DEFAULT_MAX_FRAME
    steal_margin: int = 1
    max_restarts: int = 3
    dispatch_retries: int = 8
    mp_context: str = "fork"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORTS}"
            )
        if self.admission_mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.admission_mode!r}; "
                f"choose from {ADMISSION_MODES}"
            )
        if self.steal_margin < 1:
            raise ValueError(f"steal_margin must be >= 1, got {self.steal_margin}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.dispatch_retries < 1:
            raise ValueError(
                f"dispatch_retries must be >= 1, got {self.dispatch_retries}"
            )


class _ShardHandle:
    """Coordinator-side state of one shard."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.address: str | None = None
        self.pid: int | None = None
        self.alive = False
        self.comm: Comm | None = None
        self.reader: asyncio.Task | None = None
        self.pending: dict[str, asyncio.Future] = {}
        self.ga_inflight = 0
        self.routed = 0
        self.restarts = 0
        # Exactly one backend is set: an in-loop service (inproc) or a
        # forked process plus its report pipe (tcp).
        self.service: ShardServer | None = None
        self.process: mp.process.BaseProcess | None = None

    def fail_pending(self, exc: Exception) -> None:
        pending, self.pending = list(self.pending.values()), {}
        for future in pending:
            if not future.done():
                future.set_exception(exc)
            future.exception()  # nobody may await a re-routed dispatch


class Coordinator(SchedulerService):
    """The client-facing front of a sharded scheduler service.

    Use it exactly like :class:`SchedulerService`::

        coordinator = Coordinator(CoordinatorConfig(shards=4, transport="tcp"))
        asyncio.run(coordinator.run())     # serves until 'shutdown'

    Inherits the connection loop, op dispatch and warm-start logic from
    the single-node service; overrides solving with shard dispatch.
    """

    def __init__(
        self,
        config: CoordinatorConfig | None = None,
        *,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.topology = config or CoordinatorConfig()
        t = self.topology
        super().__init__(
            ServiceConfig(
                host=t.host,
                port=t.port,
                listen=t.listen,
                workers=t.workers,
                ga_queue_limit=t.ga_queue_limit,
                admission_mode=t.admission_mode,
                stream_threshold=t.stream_threshold,
                cache_bytes=t.cache_bytes,
                fast_threads=t.fast_threads,
                drain_timeout=t.drain_timeout,
                max_line_bytes=t.max_line_bytes,
            ),
            progress=progress,
        )
        self.counters.update(
            routed_home=0,
            routed_stolen=0,
            routed_failover=0,
            dispatch_retries=0,
            shard_restarts=0,
        )
        node_ids = [f"shard-{i}" for i in range(t.shards)]
        self._ring = HashRing(node_ids)
        self._shards = {nid: _ShardHandle(nid) for nid in node_ids}
        self._namespace = f"coord{next(_NAMESPACE)}-{os.getpid()}"
        self._corr = itertools.count(1)
        self._closing = False
        self._aux_tasks: set[asyncio.Task] = set()

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn the shards, then bind the client-facing listener."""
        from repro.service.comm import listen as comm_listen

        self._shutdown_event = asyncio.Event()
        try:
            for handle in self._shards.values():
                await self._start_shard(handle)
        except Exception:
            self._closing = True
            for handle in self._shards.values():
                await self._stop_shard(handle, graceful=False)
            raise
        self._listener = await comm_listen(
            self.listen_address,
            self._handle_comm,
            max_frame=self.config.max_line_bytes,
        )
        self.port = self._listener.port
        self._started = time.monotonic()
        self._log(
            f"coordinating {len(self._shards)} {self.topology.transport} "
            f"shard(s) on {self._listener.address}"
        )

    async def aclose(self) -> None:
        """Stop the listener, the client connections, then the shards."""
        self._closing = True
        if self._listener is not None:
            await self._listener.aclose()
            self._listener = None
        for comm in list(self._conns):
            await comm.aclose()
        if self._conn_tasks:
            _, stragglers = await asyncio.wait(list(self._conn_tasks), timeout=5.0)
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
            self._conn_tasks.clear()
        self._conns.clear()
        for task in list(self._aux_tasks):
            task.cancel()
        if self._aux_tasks:
            await asyncio.gather(*self._aux_tasks, return_exceptions=True)
            self._aux_tasks.clear()
        for handle in self._shards.values():
            await self._stop_shard(handle, graceful=True)
        self._log("stopped")

    # ---------------------------------------------------------- shard spawning

    def _shard_kwargs(self, node_id: str, listen: str) -> dict[str, Any]:
        t = self.topology
        return dict(
            node_id=node_id,
            listen=listen,
            workers=t.workers,
            ga_queue_limit=t.ga_queue_limit,
            admission_mode=t.admission_mode,
            stream_threshold=t.stream_threshold,
            cache_bytes=t.shard_cache_bytes,
            fast_threads=t.fast_threads,
            drain_timeout=t.drain_timeout,
            max_line_bytes=t.max_line_bytes,
        )

    async def _start_shard(self, handle: _ShardHandle) -> None:
        if self.topology.transport == "inproc":
            await self._start_inproc_shard(handle)
        else:
            await self._start_tcp_shard(handle)
        handle.comm = await comm_connect(
            handle.address, max_frame=self.config.max_line_bytes
        )
        handle.alive = True
        handle.reader = asyncio.ensure_future(self._shard_reader(handle))
        self._log(f"shard {handle.node_id} up at {handle.address} (pid {handle.pid})")

    async def _start_inproc_shard(self, handle: _ShardHandle) -> None:
        listen = f"inproc://{self._namespace}-{handle.node_id}-g{handle.restarts}"
        service = ShardServer(
            shard_config(**self._shard_kwargs(handle.node_id, listen))
        )
        await service.start()
        handle.service = service
        handle.address = service.listen_address
        handle.pid = os.getpid()

    async def _start_tcp_shard(self, handle: _ShardHandle) -> None:
        ctx = mp.get_context(self.topology.mp_context)
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=shard_main,
            args=(self._shard_kwargs(handle.node_id, "tcp://127.0.0.1:0"), child_conn),
            name=f"repro-{handle.node_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                None, _recv_report, parent_conn, 15.0
            )
        finally:
            parent_conn.close()
        if "error" in report:
            process.join(timeout=2.0)
            raise RuntimeError(
                f"shard {handle.node_id} failed to start: {report['error']}"
            )
        handle.process = process
        handle.address = f"tcp://127.0.0.1:{report['port']}"
        handle.pid = report["pid"]

    async def _stop_shard(self, handle: _ShardHandle, *, graceful: bool) -> None:
        handle.alive = False
        if graceful and handle.comm is not None and not handle.comm.closed:
            try:
                await asyncio.wait_for(
                    self._shard_rpc(handle, {"op": "shutdown"}), timeout=2.0
                )
            except (ShardDown, CommClosedError, asyncio.TimeoutError):
                pass
        if handle.comm is not None:
            await handle.comm.aclose()
        if handle.reader is not None:
            try:
                await asyncio.wait_for(handle.reader, timeout=2.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                handle.reader.cancel()
            handle.reader = None
        handle.fail_pending(ShardDown(handle.node_id))
        if handle.service is not None:
            await handle.service.aclose()
            handle.service = None
        if handle.process is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, _reap_process, handle.process)
            handle.process = None
        handle.comm = None

    # -------------------------------------------------------------- supervision

    async def _shard_reader(self, handle: _ShardHandle) -> None:
        """Resolve shard replies by correlation id; detect shard death."""
        comm = handle.comm
        try:
            while True:
                reply = await comm.recv()
                future = handle.pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except CommClosedError:
            pass
        except Exception as exc:  # framing bug: treat as shard loss
            self._log(f"shard {handle.node_id} reader failed: {exc!r}")
        finally:
            handle.alive = False
            handle.fail_pending(ShardDown(handle.node_id))
            if not self._closing:
                self._log(f"shard {handle.node_id} lost; supervising restart")
                obs.event("service.shard_lost", node=handle.node_id)
                task = asyncio.ensure_future(self._restart_shard(handle))
                self._aux_tasks.add(task)
                task.add_done_callback(self._aux_tasks.discard)

    async def _restart_shard(self, handle: _ShardHandle) -> None:
        if handle.restarts >= self.topology.max_restarts:
            self._log(
                f"shard {handle.node_id} exceeded max_restarts="
                f"{self.topology.max_restarts}; leaving it down"
            )
            return
        handle.restarts += 1
        self.counters["shard_restarts"] += 1
        obs.add("service.shard_restart")
        old_reader, handle.reader = handle.reader, None
        if old_reader is not None and old_reader is not asyncio.current_task():
            old_reader.cancel()
        try:
            await self._stop_shard(handle, graceful=False)
            await self._start_shard(handle)
        except asyncio.CancelledError:  # coordinator closing
            raise
        except Exception as exc:
            self._log(f"shard {handle.node_id} restart failed: {exc}")

    # ----------------------------------------------------------------- routing

    async def _shard_rpc(
        self, handle: _ShardHandle, message: dict[str, Any]
    ) -> dict[str, Any]:
        """One correlated request/response over the shard's comm."""
        corr = f"x{next(self._corr)}"
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        handle.pending[corr] = future
        try:
            await handle.comm.send(dict(message, id=corr))
        except (CommClosedError, AttributeError) as exc:
            handle.pending.pop(corr, None)
            raise ShardDown(handle.node_id) from exc
        try:
            reply = await asyncio.shield(future)
        finally:
            handle.pending.pop(corr, None)
        return dict(reply)

    def _forward_message(self, request: dict[str, Any]) -> dict[str, Any]:
        """The solve request as re-sent to a shard (sans correlation id)."""
        message: dict[str, Any] = {
            "op": "solve",
            "problem": request["problem"],
            "solver": request["solver"],
            "epsilon": request["epsilon"],
            "seed": request["seed"],
            "n_realizations": request["n_realizations"],
            "warm_start": request["warm_start"],
        }
        if request.get("deadline_s") is not None:
            message["deadline_s"] = request["deadline_s"]
        if request.get("ga"):
            message["ga"] = request["ga"]
        if request.get("warm_seeds"):
            message["warm_seeds"] = request["warm_seeds"]
        return message

    async def _dispatch(
        self, request: dict[str, Any], fingerprint: str
    ) -> dict[str, Any]:
        """Route one solve to a live shard, re-routing across failures.

        Re-dispatch after a shard death cannot double-execute anything
        observable: ``execute_payload`` is a pure function of the
        payload, so a duplicate solve on another shard returns the same
        bits the lost one would have.
        """
        message = self._forward_message(request)
        is_ga = request["solver"] == "ga"
        last_error: Exception | None = None
        for attempt in range(self.topology.dispatch_retries):
            if attempt:
                self.counters["dispatch_retries"] += 1
                obs.add("service.dispatch_retry")
            alive = {
                h.node_id: h.ga_inflight
                for h in self._shards.values()
                if h.alive
            }
            if not alive:
                # Give supervision a beat to respawn someone.
                await asyncio.sleep(0.1)
                last_error = ShardDown("no live shards")
                continue
            decision = choose_shard(
                self._ring,
                fingerprint,
                request["solver"],
                alive,
                steal_margin=self.topology.steal_margin,
            )
            handle = self._shards[decision.node_id]
            handle.routed += 1
            key = (
                "routed_stolen"
                if decision.stolen
                else "routed_failover"
                if decision.failover
                else "routed_home"
            )
            self.counters[key] += 1
            obs.add(f"service.{key}")
            if is_ga:
                handle.ga_inflight += 1
            try:
                reply = await self._shard_rpc(handle, message)
            except ShardDown as exc:
                last_error = exc
                continue
            finally:
                if is_ga:
                    handle.ga_inflight -= 1
            if not reply.get("ok") and (
                (reply.get("error") or {}).get("code") == "shutting-down"
            ):
                # The shard is draining (being replaced); treat like loss.
                last_error = ShardDown(handle.node_id)
                continue
            return reply
        raise ProtocolError(
            "internal",
            f"no shard could serve the request after "
            f"{self.topology.dispatch_retries} attempts: {last_error}",
        )

    # ------------------------------------------------------------------- solve

    async def _solve(self, request: dict[str, Any], span) -> dict[str, Any]:
        if self._draining:
            raise ProtocolError("shutting-down", "server is shutting down")
        self.counters["solve"] += 1
        t0 = time.perf_counter()
        try:
            problem = problem_from_dict(request["problem"])
            fingerprint = problem_fingerprint(problem)
        except (ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(
                "bad-problem", f"problem payload rejected: {exc}"
            ) from exc
        span.set(solver=request["solver"], tier="coordinator")

        request, features, warm_seeds_count = self._apply_warm_start(
            request, problem
        )
        key = cache_key(fingerprint, request["solver"], **solve_params(request))

        outcome, cached, coalesced = await self._resolve(key, request, fingerprint)
        core = outcome["core"]
        degraded = outcome["degraded"]
        if degraded and not cached and not coalesced:
            self.counters["degraded"] += 1

        self._record_warm_start(core, problem, fingerprint, features)
        span.set(cached=cached, degraded=degraded)
        if self.config.node_id:  # pragma: no cover - coordinators are unnamed
            span.set(node=self.config.node_id)
        obs.add("service.cache_hit" if cached else "service.cache_miss")
        response = ok_response(request["id"], **core)
        response["cached"] = cached
        response["coalesced"] = coalesced
        response["degraded"] = degraded
        response["warm_seeds"] = warm_seeds_count
        if degraded:
            response["requested_solver"] = "ga"
            response["degraded_reason"] = outcome["degraded_reason"]
        response["elapsed_s"] = time.perf_counter() - t0
        return response

    async def _resolve(
        self, key: str, request: dict[str, Any], fingerprint: str
    ) -> tuple[dict[str, Any], bool, bool]:
        """Replicated cache, coordinator-level coalescing, or dispatch."""
        hit = self.cache.get(key)
        if hit is not None:
            return {"core": hit, "degraded": False, "degraded_reason": None}, True, False
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["coalesced"] += 1
            obs.add("service.coalesced")
            outcome = await asyncio.shield(inflight)
            return dict(outcome, core=dict(outcome["core"])), False, True
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            reply = await self._dispatch(request, fingerprint)
            if not reply.get("ok"):
                error = reply.get("error") or {}
                code = error.get("code", "internal")
                raise ProtocolError(
                    code if code in ERROR_CODES else "internal",
                    error.get("message", "shard error"),
                )
            core = {k: v for k, v in reply.items() if k not in _ENVELOPE_FIELDS}
            outcome = {
                "core": core,
                "degraded": bool(reply.get("degraded")),
                "degraded_reason": reply.get("degraded_reason"),
                "shard_cached": bool(reply.get("cached")),
            }
            if not future.done():
                future.set_result(outcome)
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
            future.exception()  # a coalesced waiter may never retrieve it
            raise
        finally:
            self._inflight.pop(key, None)
        if not outcome["degraded"]:
            # Write-through: the replicated tier is what lets a repeat
            # request hit even after the computing shard was killed.  A
            # degraded core is a *different* solve (HEFT stand-in keyed
            # under the shard's heft key, not this GA key), so it is
            # deliberately not replicated under `key`.
            self.cache.put(key, core)
        cached = outcome["shard_cached"]
        return dict(outcome, core=dict(core)), cached, False

    # ------------------------------------------------------------------ status

    def _status_response(self, request_id: Any) -> dict[str, Any]:
        shards = []
        total_inflight = 0
        for handle in self._shards.values():
            total_inflight += handle.ga_inflight
            shards.append(
                {
                    "node_id": handle.node_id,
                    "address": handle.address,
                    "alive": handle.alive,
                    "pid": handle.pid,
                    "ga_inflight": handle.ga_inflight,
                    "routed": handle.routed,
                    "restarts": handle.restarts,
                }
            )
            obs.set_gauge(
                f"service.shard_ga_inflight.{handle.node_id}",
                float(handle.ga_inflight),
            )
        obs.set_gauge(
            "service.shards_alive",
            float(sum(1 for s in shards if s["alive"])),
        )
        return ok_response(
            request_id,
            op="status",
            server={
                "protocol": PROTOCOL_VERSION,
                "uptime_s": time.monotonic() - self._started,
                "role": "coordinator",
                "transport": self.topology.transport,
                "workers": self.config.workers,
                "draining": self._draining,
            },
            requests=dict(self.counters),
            cache=self.cache.stats(),
            warm_start=self.warm_store.stats(),
            routing={
                "home": self.counters["routed_home"],
                "stolen": self.counters["routed_stolen"],
                "failover": self.counters["routed_failover"],
                "dispatch_retries": self.counters["dispatch_retries"],
                "shard_restarts": self.counters["shard_restarts"],
                "steal_margin": self.topology.steal_margin,
            },
            ga={"inflight": total_inflight},
            solvers={
                "fast": [s for s in SOLVERS if s != "ga"],
                "queued": ["ga"],
            },
            shards=shards,
        )


def _recv_report(conn, timeout: float) -> dict[str, Any]:
    """Read a shard's startup report from its pipe (blocking helper)."""
    try:
        if not conn.poll(timeout):
            return {"error": f"no startup report within {timeout}s"}
        return conn.recv()
    except (EOFError, OSError) as exc:
        return {"error": f"shard process died during startup: {exc!r}"}


def _reap_process(process: mp.process.BaseProcess) -> None:
    """Join a shard process, escalating to terminate/kill (blocking helper)."""
    process.join(timeout=3.0)
    if process.is_alive():
        process.terminate()
        process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - kill is a last resort
        process.kill()
        process.join(timeout=1.0)
