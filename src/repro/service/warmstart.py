"""Similarity-indexed warm-start store for the scheduler service.

Repeat traffic is the service's normal regime: the same pipeline re-plans
as estimates drift, so consecutive problems are structurally near-identical
even when their exact fingerprints differ.  The store exploits that: after
every GA solve it records the best chromosome under the problem's
structural feature vector (:func:`repro.io.problem_features`); before a GA
solve it suggests the chromosomes of the nearest previously solved
problems, which seed the new run's initial population
(``GeneticScheduler(warm_start=...)``) and cut generations-to-converge.

Matching is exact on ``(n, m)`` — chromosome arrays only transfer between
problems with the same task and processor counts — and nearest-neighbour
on the feature vector within the bucket, gated by ``max_distance``.
Suggested chromosomes may still violate the new problem's precedence
constraints; the GA repairs them on injection
(:func:`repro.ga.chromosome.repair_chromosome`), so a suggestion can never
corrupt a run, only start it closer to (or occasionally further from) the
optimum.

Seeds become part of the request's cache identity (see
:func:`repro.service.solvers.solve_params`): a warm-started result is
still bit-reproducible from its request payload alone.

The store is bounded (per-bucket and globally, FIFO eviction) and
thread-safe; entries are plain JSON-ready lists so suggestions can ride a
request payload into cluster worker processes unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.io.features import feature_distance

__all__ = ["WarmStartStore"]


class WarmStartStore:
    """Best-chromosome memory, indexed by structural similarity.

    Parameters
    ----------
    max_per_bucket:
        Entries kept per ``(n, m)`` bucket; the oldest is evicted first.
    max_entries:
        Global entry budget across all buckets.
    max_distance:
        Feature-space radius beyond which a stored problem is not
        considered a near match.
    """

    def __init__(
        self,
        max_per_bucket: int = 32,
        max_entries: int = 512,
        max_distance: float = 2.0,
    ) -> None:
        if max_per_bucket < 1:
            raise ValueError("max_per_bucket must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        self.max_per_bucket = int(max_per_bucket)
        self.max_entries = int(max_entries)
        self.max_distance = float(max_distance)
        # bucket -> fingerprint -> entry; OrderedDict gives FIFO eviction.
        self._buckets: dict[tuple[int, int], OrderedDict[str, dict]] = {}
        self._n_entries = 0
        self._recorded = 0
        self._evicted = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def record(
        self,
        n: int,
        m: int,
        fingerprint: str,
        features: np.ndarray,
        order: list[int],
        proc_of: list[int],
    ) -> None:
        """Remember the best chromosome found for one solved problem.

        Re-recording the same fingerprint replaces the stored chromosome
        (a later solve may have found a better one) and refreshes its
        eviction age.
        """
        entry = {
            "features": np.asarray(features, dtype=np.float64),
            "order": [int(v) for v in order],
            "proc_of": [int(v) for v in proc_of],
        }
        key = (int(n), int(m))
        with self._lock:
            bucket = self._buckets.setdefault(key, OrderedDict())
            if fingerprint in bucket:
                bucket.pop(fingerprint)
                self._n_entries -= 1
            bucket[fingerprint] = entry
            self._n_entries += 1
            self._recorded += 1
            while len(bucket) > self.max_per_bucket:
                bucket.popitem(last=False)
                self._n_entries -= 1
                self._evicted += 1
            while self._n_entries > self.max_entries:
                # Evict the oldest entry of the largest bucket.
                victim = max(self._buckets.values(), key=len)
                victim.popitem(last=False)
                self._n_entries -= 1
                self._evicted += 1

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def suggest(
        self,
        n: int,
        m: int,
        features: np.ndarray,
        k: int = 2,
    ) -> list[dict[str, Any]]:
        """The ``k`` nearest stored chromosomes for a new problem.

        Returns JSON-ready ``{"order": [...], "proc_of": [...]}`` dicts,
        nearest first; empty when nothing within ``max_distance`` is
        stored for this ``(n, m)`` shape.  A previous solve of the *same*
        problem (same fingerprint) is a legal — and the best possible —
        suggestion: re-solves with different seeds or GA parameters start
        from the known optimum.
        """
        features = np.asarray(features, dtype=np.float64)
        with self._lock:
            bucket = self._buckets.get((int(n), int(m)))
            if not bucket:
                return []
            scored = sorted(
                (
                    (feature_distance(features, e["features"]), fp)
                    for fp, e in bucket.items()
                ),
                key=lambda t: t[0],
            )
            out = []
            for dist, fp in scored[: max(k, 0)]:
                if dist > self.max_distance:
                    break
                entry = bucket[fp]
                out.append(
                    {
                        "order": list(entry["order"]),
                        "proc_of": list(entry["proc_of"]),
                    }
                )
            return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, int]:
        """Counters for the service ``status`` response."""
        with self._lock:
            return {
                "entries": self._n_entries,
                "buckets": len(self._buckets),
                "recorded": self._recorded,
                "evicted": self._evicted,
            }

    def __len__(self) -> int:
        with self._lock:
            return self._n_entries
