"""Wire protocol of the scheduler service: JSON lines over TCP.

One request per line, one response per line, always in order — a client
may pipeline several requests on one connection and read the responses
back sequentially (cf. the dask ``distributed`` comm model, minus the
binary framing: instances here are small, so readable JSON wins).

:data:`PROTOCOL_VERSION` is **the** protocol version constant — the
server stamps it into every response, clients may assert on it, and
``docs/service.md`` documents the format it names.  Bump it when a
request or response field changes meaning.

Requests are JSON objects with an ``op`` field:

``solve``
    ``problem`` (a :func:`repro.io.problem_to_dict` payload), ``solver``
    (one of :data:`SOLVERS`), ``epsilon``, ``seed``, ``n_realizations``,
    optional ``deadline_s``, ``ga`` parameter overrides, and
    ``warm_start`` (bool, default true; additive in protocol 1) — whether
    a GA solve may be seeded from the server's warm-start store.  The
    seeds a request actually received are part of its cache identity, so
    warm-started responses remain reproducible from their payload.
``status``
    Server counters: cache, admission, queue depths, uptime.
``ping``
    Liveness probe; echoes ``id``.
``shutdown``
    Ask the server to stop accepting work and exit its serve loop.

Responses carry ``ok`` (bool), the request's ``id`` (when given) and
``protocol``.  Failures use ``{"ok": false, "error": {"code", "message"}}``
with codes from :data:`ERROR_CODES`.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "SOLVERS",
    "ALGEBRA_SOLVERS",
    "FAST_SOLVERS",
    "OPS",
    "ERROR_CODES",
    "ProtocolError",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "normalize_request",
]

PROTOCOL_VERSION = 1

#: Component-algebra catalogue entries served as additional fast-tier
#: solvers.  Kept as a literal so this module stays stdlib-only; pinned
#: to ``repro.algebra.ALGEBRA_SOLVERS`` by tests/unit/test_algebra.py.
ALGEBRA_SOLVERS = (
    "heft-append",
    "heft-greedy",
    "heft-lookahead",
    "heft-q90",
    "heft-ready",
    "blevel-eft",
    "blevel-append",
    "cpop-append",
    "cpop-unpinned",
    "peft-append",
    "peft-eft",
    "peft-lookahead",
    "minmin-append",
    "maxmin",
    "random-eft",
    "random-append",
)

#: Solvers a ``solve`` request may name.  The heuristics — the four
#: legacy names plus the component-algebra catalogue — form the fast
#: tier (served inline); ``"ga"`` is the queued tier (see admission.py).
SOLVERS = ("heft", "cpop", "peft", "minmin") + ALGEBRA_SOLVERS + ("ga",)
FAST_SOLVERS = frozenset(s for s in SOLVERS if s != "ga")

OPS = ("solve", "status", "ping", "shutdown")

ERROR_CODES = (
    "bad-json",       # the line was not a JSON object
    "bad-request",    # a field is missing, mistyped or out of range
    "bad-problem",    # the problem payload did not deserialize
    "unknown-op",     # op not in OPS
    "internal",       # solver raised unexpectedly
    "shutting-down",  # request arrived after shutdown began
)

#: GA overrides a request may carry (subset of
#: :class:`repro.ga.engine.GAParams`) — enough to bound solve time
#: without exposing every hyper-parameter on the wire.
GA_OVERRIDE_FIELDS = ("population_size", "max_iterations", "stagnation_limit")


class ProtocolError(ValueError):
    """A malformed request; ``code`` picks the wire error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code


def encode(message: dict[str, Any]) -> bytes:
    """One message as a newline-terminated strict-JSON line."""
    return (
        json.dumps(message, allow_nan=False, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises
    ------
    ProtocolError
        With code ``bad-json`` when the line is not a JSON object.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad-json", f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(request_id: Any = None, **fields: Any) -> dict[str, Any]:
    """A success response envelope."""
    response: dict[str, Any] = {"ok": True, "protocol": PROTOCOL_VERSION}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(
    request_id: Any, code: str, message: str
) -> dict[str, Any]:
    """A failure response envelope."""
    if code not in ERROR_CODES:  # pragma: no cover - programming error
        raise ValueError(f"unknown error code {code!r}")
    response: dict[str, Any] = {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def _require_number(
    message: dict, field: str, default: float | None = None
) -> float | None:
    value = message.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            "bad-request", f"{field!r} must be a number, got {value!r}"
        )
    return float(value)


def normalize_request(message: dict[str, Any]) -> dict[str, Any]:
    """Validate a decoded request and fill defaults.

    Returns a new dict with canonical field types; the ``problem``
    payload is passed through untouched (deserialization — and therefore
    fingerprint verification — happens in the solver layer so the
    request can be routed and cached first).

    Raises
    ------
    ProtocolError
        ``unknown-op`` or ``bad-request`` on the first violation.
    """
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError("unknown-op", f"unknown op {op!r}; expected {OPS}")
    request: dict[str, Any] = {"op": op, "id": message.get("id")}
    if op != "solve":
        return request

    problem = message.get("problem")
    if not isinstance(problem, dict):
        raise ProtocolError(
            "bad-request", "'solve' requires a 'problem' payload object"
        )
    solver = message.get("solver", "ga")
    if solver not in SOLVERS:
        raise ProtocolError(
            "bad-request", f"unknown solver {solver!r}; expected one of {SOLVERS}"
        )
    epsilon = _require_number(message, "epsilon", 1.0)
    if epsilon <= 0:
        raise ProtocolError("bad-request", f"epsilon must be > 0, got {epsilon}")
    seed = message.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ProtocolError("bad-request", f"seed must be an integer, got {seed!r}")
    n_realizations = message.get("n_realizations", 500)
    if (
        isinstance(n_realizations, bool)
        or not isinstance(n_realizations, int)
        or n_realizations < 1
    ):
        raise ProtocolError(
            "bad-request",
            f"n_realizations must be a positive integer, got {n_realizations!r}",
        )
    deadline_s = _require_number(message, "deadline_s")
    if deadline_s is not None and deadline_s <= 0:
        raise ProtocolError(
            "bad-request", f"deadline_s must be > 0, got {deadline_s}"
        )
    warm_start = message.get("warm_start", True)
    if not isinstance(warm_start, bool):
        raise ProtocolError(
            "bad-request", f"warm_start must be a boolean, got {warm_start!r}"
        )
    # Explicit seed chromosomes (additive in protocol 1).  Normally
    # injected server-side from the warm-start store, but they are a
    # legal wire field: the coordinator forwards warm-started payloads
    # to shards through this same normalization, and a client may pin
    # seeds directly (they are digested into the cache identity).
    warm_seeds = message.get("warm_seeds") or []
    if not isinstance(warm_seeds, list) or not all(
        isinstance(s, dict) and "order" in s and "proc_of" in s
        for s in warm_seeds
    ):
        raise ProtocolError(
            "bad-request",
            "warm_seeds must be a list of {order, proc_of} objects",
        )
    ga = message.get("ga") or {}
    if not isinstance(ga, dict):
        raise ProtocolError("bad-request", "'ga' must be an object of overrides")
    unknown = sorted(set(ga) - set(GA_OVERRIDE_FIELDS))
    if unknown:
        raise ProtocolError(
            "bad-request",
            f"unknown ga override {unknown[0]!r}; "
            f"allowed: {GA_OVERRIDE_FIELDS}",
        )
    for field, value in ga.items():
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ProtocolError(
                "bad-request",
                f"ga.{field} must be a positive integer, got {value!r}",
            )
    request.update(
        problem=problem,
        solver=solver,
        epsilon=epsilon,
        seed=seed,
        n_realizations=n_realizations,
        deadline_s=deadline_s,
        warm_start=warm_start,
        ga={k: ga[k] for k in sorted(ga)},
    )
    if warm_seeds:
        request["warm_seeds"] = warm_seeds
    return request
