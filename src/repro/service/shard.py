"""A scheduler-worker shard: one :class:`SchedulerService` behind a comm.

The coordinator multiplexes *all* client traffic for a shard over a
single comm, tagging each request with a correlation id.  A shard
therefore cannot serve frames strictly in order the way the single-node
daemon does — one long GA solve would head-of-line-block every fast
request behind it.  :class:`ShardServer` overrides the connection loop
to handle each frame in its own task and write responses back as they
finish (out of order; the coordinator matches them by ``id``).

Everything else — admission, cache, coalescing, the GA backend — is the
plain service.  Shards run with ``warm_start_enabled=False``: the
coordinator owns the warm-start store and injects seeds into the
payload before routing, which keeps a sharded deployment's responses
bit-identical to the single-node daemon's.

:func:`shard_main` is the child-process entry point for TCP shards
(forked via :mod:`multiprocessing`); inproc shards are just
``ShardServer`` instances living in the coordinator's event loop.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any

from repro.obs import runtime as obs
from repro.service.comm import Comm, CommClosedError, FrameTooLargeError
from repro.service.protocol import error_response
from repro.service.server import SchedulerService, ServiceConfig

__all__ = ["ShardServer", "shard_config", "shard_main"]


def shard_config(node_id: str, listen: str, **overrides: Any) -> ServiceConfig:
    """The :class:`ServiceConfig` for one shard of a sharded deployment.

    Warm starts are forced off — the coordinator applies them before
    routing so every shard solves exactly the payload it was handed.
    """
    overrides.pop("warm_start_enabled", None)
    return ServiceConfig(
        listen=listen,
        node_id=node_id,
        warm_start_enabled=False,
        **overrides,
    )


class ShardServer(SchedulerService):
    """A service whose connections handle frames concurrently.

    Responses may come back out of request order; callers (the
    coordinator, or any pipelining client talking to a shard directly)
    must correlate them by ``id``.
    """

    async def _handle_comm(self, comm: Comm) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conns.add(comm)
        write_lock = asyncio.Lock()
        frame_tasks: set[asyncio.Task] = set()

        async def respond_one(line: bytes) -> None:
            response = await self._respond(line)
            async with write_lock:
                try:
                    await comm.send(response)
                except CommClosedError:
                    pass

        try:
            while True:
                try:
                    line = await comm.read_frame()
                except FrameTooLargeError:
                    self.counters["errors"] += 1
                    obs.add("service.errors")
                    async with write_lock:
                        try:
                            await comm.send(
                                error_response(
                                    None,
                                    "bad-request",
                                    "request line exceeds the "
                                    f"{self.config.max_line_bytes} byte "
                                    "limit; closing the connection",
                                )
                            )
                        except (CommClosedError, FrameTooLargeError):
                            pass
                    break
                except CommClosedError:
                    break
                if not line.strip():
                    continue
                frame_task = asyncio.ensure_future(respond_one(line))
                frame_tasks.add(frame_task)
                frame_task.add_done_callback(frame_tasks.discard)
        finally:
            if frame_tasks:
                await asyncio.gather(*frame_tasks, return_exceptions=True)
            if task is not None:
                self._conn_tasks.discard(task)
            self._conns.discard(comm)
            await comm.aclose()


def shard_main(config_kwargs: dict[str, Any], conn) -> None:
    """Entry point of a forked TCP shard process.

    Builds the shard's service from plain kwargs (the config dataclass
    itself is not sent across the fork), serves until ``shutdown``, and
    reports ``{"port", "pid"}`` back over the pipe once the listener is
    bound — or ``{"error"}`` if startup failed.
    """
    obs.reset_inherited()
    service = ShardServer(shard_config(**config_kwargs))

    async def main() -> None:
        try:
            await service.start()
        except Exception as exc:
            conn.send({"error": f"{type(exc).__name__}: {exc}"})
            raise
        conn.send({"port": service.port, "pid": os.getpid()})
        try:
            await service._shutdown_event.wait()
            await asyncio.sleep(0.05)
        finally:
            await service.aclose()

    asyncio.run(main())
