"""Abstract Comm/Listener plus the scheme-dispatching connect/listen.

The shape follows dask ``distributed``'s comm core: a :class:`Comm` is
one established bidirectional message channel, a :class:`Listener`
accepts inbound channels and hands each to an async handler, and the
module-level :func:`connect` / :func:`listen` pick the backend from the
address scheme.  Backends register themselves in :data:`BACKENDS`;
``tcp`` and ``inproc`` ship in this package.
"""

from __future__ import annotations

import abc
from typing import Any, Awaitable, Callable

from repro.service.comm.framing import (
    DEFAULT_MAX_FRAME,
    decode_frame,
    encode_frame,
)

__all__ = [
    "CommError",
    "CommClosedError",
    "FrameTooLargeError",
    "Comm",
    "Listener",
    "parse_address",
    "connect",
    "listen",
    "BACKENDS",
]


class CommError(Exception):
    """Base class for transport failures."""


class CommClosedError(CommError):
    """The peer closed (or the transport lost) the channel."""


class FrameTooLargeError(CommError):
    """A frame exceeded the channel's size limit.

    The channel cannot be resynchronized mid-frame, so the only clean
    continuation is to answer with a protocol error and close.
    """


class Comm(abc.ABC):
    """One established message channel (a connected peer pair).

    Subclasses implement the byte-frame primitives; the dict-level
    :meth:`send` / :meth:`recv` ride on the shared framing layer so
    every transport speaks the identical wire format.
    """

    local_address: str
    remote_address: str

    @abc.abstractmethod
    async def read_frame(self) -> bytes:
        """One raw frame (newline-terminated JSON line).

        Raises :class:`CommClosedError` on EOF/transport loss and
        :class:`FrameTooLargeError` on an over-limit frame.
        """

    @abc.abstractmethod
    async def write_frame(self, frame: bytes) -> None:
        """Send one pre-encoded frame (raises :class:`CommClosedError`)."""

    @abc.abstractmethod
    async def aclose(self) -> None:
        """Close the channel (idempotent; the peer sees EOF)."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        """Whether this side has been closed."""

    async def send(self, message: dict[str, Any]) -> None:
        """Encode and send one message dict."""
        await self.write_frame(encode_frame(message))

    async def recv(self) -> dict[str, Any]:
        """Receive and decode one message dict (raises ProtocolError on
        malformed JSON, comm errors as in :meth:`read_frame`)."""
        return decode_frame(await self.read_frame())


class Listener(abc.ABC):
    """An accepting endpoint; each inbound comm is passed to the handler."""

    address: str

    @property
    def port(self) -> int | None:
        """Bound TCP port, or ``None`` for non-socket transports."""
        return None

    @abc.abstractmethod
    async def aclose(self) -> None:
        """Stop accepting new comms (established ones live on)."""


def parse_address(address: str) -> tuple[str, str]:
    """Split ``scheme://rest`` and validate the scheme is registered."""
    scheme, sep, rest = address.partition("://")
    if not sep or not scheme or not rest:
        raise CommError(
            f"malformed address {address!r}; expected 'scheme://...' "
            f"with scheme in {sorted(BACKENDS)}"
        )
    if scheme not in BACKENDS:
        raise CommError(
            f"unknown transport {scheme!r} in {address!r}; "
            f"registered: {sorted(BACKENDS)}"
        )
    return scheme, rest


async def connect(
    address: str,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    timeout: float | None = 10.0,
) -> Comm:
    """Open a comm to the listener at *address* (scheme picks the backend)."""
    scheme, rest = parse_address(address)
    return await BACKENDS[scheme].connect(rest, max_frame=max_frame, timeout=timeout)


async def listen(
    address: str,
    handler: Callable[[Comm], Awaitable[None]],
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> Listener:
    """Start accepting comms at *address*; *handler(comm)* runs per peer."""
    scheme, rest = parse_address(address)
    return await BACKENDS[scheme].listen(rest, handler, max_frame=max_frame)


def _backends() -> dict:
    # Imported lazily at module bottom to dodge the circular import
    # (backends subclass Comm/Listener from this module).
    from repro.service.comm import inproc, tcp

    return {"tcp": tcp.TCPBackend, "inproc": inproc.InprocBackend}


class _LazyBackends(dict):
    """Scheme registry that populates itself on first use."""

    def _ensure(self) -> None:
        if not super().__len__():
            super().update(_backends())

    def __contains__(self, key) -> bool:  # pragma: no cover - trivial
        self._ensure()
        return super().__contains__(key)

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self) -> int:
        self._ensure()
        return super().__len__()


#: Scheme -> backend class (``connect``/``listen`` classmethods).
BACKENDS: dict = _LazyBackends()
