"""In-process transport: frame queues inside one event loop.

The test/doctest twin of the TCP transport (cf. dask ``distributed``'s
``inproc``): connecting to ``inproc://name`` pairs two comms backed by
crossed asyncio queues and hands the server side to the listener's
handler.  Frames are the same encoded bytes the TCP transport would put
on a socket — the shared framing layer is exercised, only the byte
shuttling differs — so anything proven over inproc holds over TCP.

Channels live inside a single event loop; connecting from a different
loop than the listener's is an error, not a deadlock.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.service.comm.core import (
    Comm,
    CommClosedError,
    CommError,
    FrameTooLargeError,
    Listener,
)
from repro.service.comm.framing import DEFAULT_MAX_FRAME

__all__ = ["InprocComm", "InprocListener", "InprocBackend"]

#: Close sentinel travelling through the frame queues.
_CLOSE = object()

#: Global name -> listener registry (listeners unregister on aclose).
_LISTENERS: dict[str, "InprocListener"] = {}


class InprocComm(Comm):
    """One side of a paired in-memory channel."""

    def __init__(
        self, send_q: asyncio.Queue, recv_q: asyncio.Queue,
        local_address: str, remote_address: str,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._send_q = send_q
        self._recv_q = recv_q
        self.local_address = local_address
        self.remote_address = remote_address
        self.max_frame = max_frame
        self._closed = False
        self._peer_closed = False

    async def read_frame(self) -> bytes:
        """Take the next frame off the queue; EOF raises CommClosedError."""
        if self._closed:
            raise CommClosedError("comm is closed")
        if self._peer_closed and self._recv_q.empty():
            raise CommClosedError("connection closed by peer")
        frame = await self._recv_q.get()
        if frame is _CLOSE:
            self._peer_closed = True
            raise CommClosedError("connection closed by peer")
        return frame

    async def write_frame(self, frame: bytes) -> None:
        """Queue ``frame`` for the peer, enforcing ``max_frame``."""
        if self._closed:
            raise CommClosedError("comm is closed")
        if self._peer_closed:
            raise CommClosedError("peer has closed the connection")
        if len(frame) > self.max_frame:
            raise FrameTooLargeError(
                f"outgoing frame of {len(frame)} bytes exceeds the "
                f"{self.max_frame} byte limit"
            )
        self._send_q.put_nowait(frame)

    async def aclose(self) -> None:
        """Close this side; the peer sees EOF (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Wake a peer blocked in read_frame with EOF semantics.
        self._send_q.put_nowait(_CLOSE)

    @property
    def closed(self) -> bool:
        """Whether this side has been closed locally."""
        return self._closed


class InprocListener(Listener):
    """A named in-process accept point."""

    def __init__(
        self, name: str, handler: Callable[[Comm], Awaitable[None]],
        max_frame: int,
    ) -> None:
        self.name = name
        self.address = f"inproc://{name}"
        self._handler = handler
        self._max_frame = max_frame
        self._loop = asyncio.get_running_loop()
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    def _accept(self) -> InprocComm:
        if self._closed:
            raise CommError(f"listener {self.address} is closed")
        if asyncio.get_running_loop() is not self._loop:
            raise CommError(
                f"inproc comm to {self.address} must be opened from the "
                "listener's event loop"
            )
        a_to_b: asyncio.Queue = asyncio.Queue()
        b_to_a: asyncio.Queue = asyncio.Queue()
        client = InprocComm(
            a_to_b, b_to_a, f"{self.address}#client", self.address,
            max_frame=self._max_frame,
        )
        server = InprocComm(
            b_to_a, a_to_b, self.address, f"{self.address}#client",
            max_frame=self._max_frame,
        )
        task = self._loop.create_task(self._handler(server))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return client

    async def aclose(self) -> None:
        """Unregister the name; existing channels stay usable."""
        self._closed = True
        if _LISTENERS.get(self.name) is self:
            del _LISTENERS[self.name]


class InprocBackend:
    """Transport backend wiring ``inproc://`` into connect/listen."""

    @staticmethod
    async def connect(
        rest: str, *, max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float | None = 10.0,
    ) -> InprocComm:
        listener = _LISTENERS.get(rest)
        if listener is None:
            raise CommError(f"no inproc listener named {rest!r}")
        return listener._accept()

    @staticmethod
    async def listen(
        rest: str, handler: Callable[[Comm], Awaitable[None]],
        *, max_frame: int = DEFAULT_MAX_FRAME,
    ) -> InprocListener:
        existing = _LISTENERS.get(rest)
        if existing is not None and not existing._closed:
            raise CommError(f"inproc listener {rest!r} already exists")
        listener = InprocListener(rest, handler, max_frame)
        _LISTENERS[rest] = listener
        return listener
