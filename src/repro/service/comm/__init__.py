"""repro.service.comm — pluggable transports for the service fabric.

A transport-agnostic connector/listener pair in the spirit of dask
``distributed``'s comm layer: the same coordinator and shard logic runs
over an in-process channel (tests, doctests, single-process topologies)
or over TCP (real deployments) by changing nothing but an address
string.

Addresses are URIs whose scheme picks the backend:

* ``tcp://host:port`` — JSON lines over an asyncio TCP stream (port
  ``0`` binds an ephemeral port, readable from ``Listener.port``);
* ``inproc://name`` — an in-memory frame channel inside one event loop.

Both transports share one framing layer (:mod:`repro.service.comm.framing`):
a frame is a newline-terminated strict-JSON message, byte-identical to
the client-facing wire protocol of :mod:`repro.service.protocol` — which
is why a plain ``ServiceClient`` socket can talk to a TCP listener
created here.

Usage::

    listener = await listen("tcp://127.0.0.1:0", handler)   # handler(comm)
    comm = await connect(f"tcp://127.0.0.1:{listener.port}")
    await comm.send({"op": "ping"})
    reply = await comm.recv()
"""

from repro.service.comm.core import (
    Comm,
    CommClosedError,
    CommError,
    FrameTooLargeError,
    Listener,
    connect,
    listen,
    parse_address,
)
from repro.service.comm.framing import (
    DEFAULT_MAX_FRAME,
    decode_frame,
    encode_frame,
)

__all__ = [
    "Comm",
    "CommClosedError",
    "CommError",
    "FrameTooLargeError",
    "Listener",
    "connect",
    "listen",
    "parse_address",
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "decode_frame",
]
