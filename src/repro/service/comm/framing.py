"""The one framing layer every transport shares.

A frame is a newline-terminated strict-JSON object encoded as UTF-8 —
exactly the client-facing wire format of :mod:`repro.service.protocol`
(that module owns the encode/decode semantics; this one adds the frame
size policy and the stream-reassembly helper the byte-stream transports
use).  Keeping a single framing layer is what makes the transports
interchangeable: a message framed for the in-process channel is
byte-identical to the same message on a TCP socket.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.service.protocol import decode, encode

__all__ = [
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "read_stream_frame",
]

#: Problem payloads and reports are single JSON lines; the asyncio
#: default of 64 KiB is far too small for paper-scale instances.  This
#: mirrors the pre-comm server's StreamReader limit.
DEFAULT_MAX_FRAME = 16 * 1024 * 1024


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message as a newline-terminated strict-JSON frame."""
    return encode(message)


def decode_frame(frame: bytes | str) -> dict[str, Any]:
    """Parse one frame back into a message dict (raises ProtocolError)."""
    return decode(frame)


async def read_stream_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame from a byte stream; raise typed comm errors.

    ``StreamReader.readline`` signals an over-limit line either as
    ``LimitOverrunError`` (from ``readuntil``) or — the documented
    ``readline`` behaviour — wrapped in a plain ``ValueError``.  Both
    must map to :class:`FrameTooLargeError` so the caller can answer
    with a clean protocol error instead of letting the exception escape
    the connection handler (the pre-comm server only caught the former,
    which is the bug this layer fixes).
    """
    from repro.service.comm.core import CommClosedError, FrameTooLargeError

    try:
        line = await reader.readline()
    except asyncio.LimitOverrunError as exc:
        raise FrameTooLargeError(
            f"incoming frame exceeds the size limit: {exc}"
        ) from exc
    except ValueError as exc:
        # readline wraps LimitOverrunError in ValueError; any other
        # ValueError from the stream machinery is equally unrecoverable
        # mid-line, so it gets the same clean protocol treatment.
        raise FrameTooLargeError(
            f"incoming frame exceeds the size limit: {exc}"
        ) from exc
    except (ConnectionResetError, BrokenPipeError, OSError) as exc:
        raise CommClosedError(f"connection lost: {exc}") from exc
    if not line:
        raise CommClosedError("connection closed by peer")
    return line
