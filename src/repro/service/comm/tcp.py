"""TCP transport: JSON-line frames over asyncio streams.

This is byte-for-byte the pre-comm server's wire behaviour — a
newline-terminated strict-JSON message per frame, a 16 MiB line limit —
lifted into the comm abstraction so the same listener serves external
``ServiceClient`` sockets and internal coordinator↔shard links.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.service.comm.core import (
    Comm,
    CommClosedError,
    CommError,
    FrameTooLargeError,
    Listener,
)
from repro.service.comm.framing import DEFAULT_MAX_FRAME, read_stream_frame

__all__ = ["TCPComm", "TCPListener", "TCPBackend"]


def _split_host_port(rest: str) -> tuple[str, int]:
    host, sep, port = rest.rpartition(":")
    if not sep:
        raise CommError(f"tcp address needs 'host:port', got {rest!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise CommError(f"invalid tcp port in {rest!r}") from exc


def _peer(writer: asyncio.StreamWriter) -> str:
    peer = writer.get_extra_info("peername")
    if isinstance(peer, tuple) and len(peer) >= 2:
        return f"tcp://{peer[0]}:{peer[1]}"
    return "tcp://?"


def _sock(writer: asyncio.StreamWriter) -> str:
    name = writer.get_extra_info("sockname")
    if isinstance(name, tuple) and len(name) >= 2:
        return f"tcp://{name[0]}:{name[1]}"
    return "tcp://?"


class TCPComm(Comm):
    """One established TCP channel (reader/writer pair)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.max_frame = max_frame
        self._closed = False
        self.local_address = _sock(writer)
        self.remote_address = _peer(writer)

    async def read_frame(self) -> bytes:
        """Read one line-delimited frame; EOF raises CommClosedError."""
        if self._closed:
            raise CommClosedError("comm is closed")
        return await read_stream_frame(self._reader)

    async def write_frame(self, frame: bytes) -> None:
        """Write ``frame`` and drain, enforcing ``max_frame``."""
        if self._closed:
            raise CommClosedError("comm is closed")
        if len(frame) > self.max_frame:
            raise FrameTooLargeError(
                f"outgoing frame of {len(frame)} bytes exceeds the "
                f"{self.max_frame} byte limit"
            )
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise CommClosedError(f"connection lost: {exc}") from exc

    async def aclose(self) -> None:
        """Close the socket, swallowing teardown races (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    @property
    def closed(self) -> bool:
        """Whether this side has been closed locally."""
        return self._closed


class TCPListener(Listener):
    """Accepting TCP socket; one handler task per connection."""

    def __init__(self, server: asyncio.AbstractServer, host: str) -> None:
        self._server = server
        self._port = server.sockets[0].getsockname()[1]
        self.address = f"tcp://{host}:{self._port}"

    @property
    def port(self) -> int:
        """The concrete bound port (resolves a requested port 0)."""
        return self._port

    async def aclose(self) -> None:
        """Stop accepting; existing connections stay open."""
        self._server.close()
        await self._server.wait_closed()


class TCPBackend:
    """Transport backend wiring ``tcp://`` into connect/listen."""

    @staticmethod
    async def connect(
        rest: str, *, max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float | None = 10.0,
    ) -> TCPComm:
        host, port = _split_host_port(rest)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=max_frame),
                timeout=timeout,
            )
        except asyncio.TimeoutError as exc:
            raise CommError(f"timed out connecting to tcp://{rest}") from exc
        except OSError as exc:
            raise CommError(f"cannot connect to tcp://{rest}: {exc}") from exc
        return TCPComm(reader, writer, max_frame=max_frame)

    @staticmethod
    async def listen(
        rest: str, handler: Callable[[Comm], Awaitable[None]],
        *, max_frame: int = DEFAULT_MAX_FRAME,
    ) -> TCPListener:
        host, port = _split_host_port(rest)

        async def on_connection(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            await handler(TCPComm(reader, writer, max_frame=max_frame))

        server = await asyncio.start_server(
            on_connection, host, port, limit=max_frame
        )
        return TCPListener(server, host)
