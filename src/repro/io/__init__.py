"""Serialization: JSON round-trips for problems/schedules, DOT export.

Lets users persist generated instances (so experiments can be re-run and
shared), save solved schedules, and inspect DAGs/disjunctive graphs with
Graphviz.
"""

from repro.io.dot import disjunctive_to_dot, graph_to_dot
from repro.io.features import N_FEATURES, feature_distance, problem_features
from repro.io.json_io import (
    load_problem,
    problem_fingerprint,
    load_schedule,
    problem_from_dict,
    problem_to_dict,
    report_from_dict,
    report_to_dict,
    save_problem,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "N_FEATURES",
    "problem_features",
    "feature_distance",
    "problem_fingerprint",
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "report_to_dict",
    "report_from_dict",
    "graph_to_dot",
    "disjunctive_to_dot",
]
