"""Structural fingerprinting: compact feature vectors for problem similarity.

The exact :func:`~repro.io.json_io.problem_fingerprint` identifies an
instance bit-for-bit — perfect for result caching, useless for "have I
seen something *like* this?".  This module maps a problem onto a small
fixed-length feature vector capturing the structure that determines which
schedules work well on it:

* scale: task count, processor count, edge count (log-compressed);
* shape: edge density, relative depth, an 8-bin histogram of the task
  distribution over topological levels;
* regime: CCR (communication-to-computation ratio), processor
  heterogeneity (mean per-task COV of expected times), mean uncertainty
  level.

Two problems drawn from the same generator configuration land close under
the Euclidean :func:`feature_distance`; the warm-start store
(:mod:`repro.service.warmstart`) uses this to transfer good chromosomes
between near-match instances.  All components are dimensionless or
log-compressed so no single scale dominates the distance.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.analysis import ArrayDag

__all__ = ["N_FEATURES", "problem_features", "feature_distance"]

#: Length of the vector :func:`problem_features` returns.
N_FEATURES = 16

#: Bins of the level-occupancy histogram.
_LEVEL_BINS = 8


def problem_features(problem: SchedulingProblem) -> np.ndarray:
    """The ``(N_FEATURES,)`` structural feature vector of *problem*."""
    graph = problem.graph
    n, m = problem.n, problem.m
    n_edges = int(graph.edge_src.shape[0])

    dag = ArrayDag.from_taskgraph(graph)
    depth = dag.depth

    # Level-occupancy histogram: fraction of tasks in each depth octile.
    hist = np.zeros(_LEVEL_BINS, dtype=np.float64)
    if n and depth:
        octile = (dag.level * _LEVEL_BINS) // max(depth, 1)
        np.clip(octile, 0, _LEVEL_BINS - 1, out=octile)
        hist = np.bincount(octile, minlength=_LEVEL_BINS)[:_LEVEL_BINS] / n

    expected = problem.uncertainty.expected_times
    mean_comp = float(expected.mean()) if expected.size else 0.0

    # CCR: average communication time over average computation time.
    mean_comm = 0.0
    if n_edges:
        mean_comm = float(graph.edge_data.mean()) * float(
            problem.platform.mean_inverse_rate
        )
    ccr = mean_comm / mean_comp if mean_comp > 0 else 0.0

    # Heterogeneity: mean per-task COV of expected times across processors.
    heterogeneity = 0.0
    if expected.size and m > 1:
        row_mean = expected.mean(axis=1)
        row_std = expected.std(axis=1)
        safe = row_mean > 0
        if np.any(safe):
            heterogeneity = float((row_std[safe] / row_mean[safe]).mean())

    density = 0.0
    if n > 1:
        density = n_edges / (n * (n - 1) / 2.0)

    mean_ul = float(problem.uncertainty.ul.mean()) if n else 1.0

    features = np.empty(N_FEATURES, dtype=np.float64)
    features[0] = np.log1p(n)
    features[1] = np.log1p(m)
    features[2] = np.log1p(n_edges)
    features[3] = density
    features[4] = depth / n if n else 0.0
    features[5 : 5 + _LEVEL_BINS] = hist
    features[13] = np.log1p(ccr)
    features[14] = heterogeneity
    features[15] = np.log1p(mean_ul - 1.0)
    return features


def feature_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two feature vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(
            f"feature vectors must have equal shape, got {a.shape} and {b.shape}"
        )
    return float(np.sqrt(np.sum((a - b) ** 2)))
