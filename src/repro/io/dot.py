"""Graphviz DOT export for task graphs and disjunctive graphs.

Produces plain DOT text (no graphviz dependency); render with
``dot -Tpdf``.  The disjunctive-graph export reproduces the paper's
Fig. 1(d) styling: original precedence edges solid, same-processor chain
edges dashed, nodes clustered by processor.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.schedule.schedule import Schedule

__all__ = ["graph_to_dot", "disjunctive_to_dot"]


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def graph_to_dot(
    graph: TaskGraph,
    *,
    node_labels: dict[int, str] | None = None,
    show_data: bool = True,
) -> str:
    """Render a task graph as DOT.

    Parameters
    ----------
    node_labels:
        Optional task-id -> label map (defaults to ``v<i>``).
    show_data:
        Attach data sizes as edge labels (only for non-zero sizes).
    """
    labels = node_labels or {}
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;", "  node [shape=circle];"]
    for v in range(graph.n):
        lines.append(f'  {v} [label="{labels.get(v, f"v{v}")}"];')
    for u, v, d in graph.edges():
        attr = f' [label="{_fmt(d)}"]' if (show_data and d > 0) else ""
        lines.append(f"  {u} -> {v}{attr};")
    lines.append("}")
    return "\n".join(lines)


def disjunctive_to_dot(
    schedule: Schedule, *, node_labels: dict[int, str] | None = None
) -> str:
    """Render a schedule's disjunctive graph ``G_s`` as DOT (paper Fig. 1(d)).

    Original DAG edges are solid (labelled with their communication time
    when non-zero); added same-processor chain edges are dashed; tasks are
    grouped into per-processor clusters.
    """
    labels = node_labels or {}
    graph = schedule.problem.graph
    lines = [
        'digraph "disjunctive" {',
        "  rankdir=TB;",
        "  node [shape=circle];",
    ]
    for p, tasks in enumerate(schedule.proc_orders):
        lines.append(f"  subgraph cluster_p{p} {{")
        lines.append(f'    label="P{p + 1}";')
        for v in tasks:
            v = int(v)
            lines.append(f'    {v} [label="{labels.get(v, f"v{v}")}"];')
        lines.append("  }")

    dag_pairs = set(zip(graph.edge_src.tolist(), graph.edge_dst.tolist()))
    dis = schedule.disjunctive
    for i, (u, v) in enumerate(zip(dis.edge_src.tolist(), dis.edge_dst.tolist())):
        w = float(schedule.comm_weights[i])
        if (u, v) in dag_pairs:
            attr = f' [label="{_fmt(w)}"]' if w > 0 else ""
        else:
            attr = " [style=dashed]"
        lines.append(f"  {u} -> {v}{attr};")
    lines.append("}")
    return "\n".join(lines)
