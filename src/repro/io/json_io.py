"""JSON (de)serialization of problems and schedules.

The on-disk format is versioned and self-describing; matrices are nested
lists (instances are small — 100 x 4 — so readability beats compactness).
A schedule is stored as its per-processor task orders plus a hash of the
problem so stale pairings are caught at load time.
"""

from __future__ import annotations

import hashlib
import json
import math
import pathlib
from typing import Any

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.taskgraph import TaskGraph
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel
from repro.robustness.montecarlo import RobustnessReport
from repro.schedule.schedule import Schedule

__all__ = [
    "problem_fingerprint",
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "report_to_dict",
    "report_from_dict",
]

FORMAT_VERSION = 1


def problem_fingerprint(problem: SchedulingProblem) -> str:
    """Stable content hash of a problem instance.

    Pairs schedules with their problems at load time and keys the
    service's content-addressed result cache (two clients submitting the
    same instance share one entry regardless of who serialized it).
    """
    h = hashlib.sha256()
    h.update(problem.graph.edge_src.tobytes())
    h.update(problem.graph.edge_dst.tobytes())
    h.update(problem.graph.edge_data.tobytes())
    h.update(problem.uncertainty.bcet.tobytes())
    h.update(problem.uncertainty.ul.tobytes())
    h.update(problem.platform.transfer_rates.tobytes())
    return h.hexdigest()[:16]


def problem_to_dict(problem: SchedulingProblem) -> dict[str, Any]:
    """Serialize a problem to a JSON-compatible dict."""
    tr = problem.platform.transfer_rates.copy()
    np.fill_diagonal(tr, 1.0)  # inf is not JSON; the diagonal is ignored anyway
    return {
        "format": "repro.problem",
        "version": FORMAT_VERSION,
        "name": problem.name,
        "graph": {
            "n": problem.graph.n,
            "edges": [[int(u), int(v)] for u, v in
                      zip(problem.graph.edge_src, problem.graph.edge_dst)],
            "data_sizes": problem.graph.edge_data.tolist(),
            "name": problem.graph.name,
        },
        "platform": {
            "m": problem.platform.m,
            "transfer_rates": tr.tolist(),
            "name": problem.platform.name,
        },
        "uncertainty": {
            "bcet": problem.uncertainty.bcet.tolist(),
            "ul": problem.uncertainty.ul.tolist(),
        },
        "fingerprint": problem_fingerprint(problem),
    }


def problem_from_dict(payload: dict[str, Any]) -> SchedulingProblem:
    """Rebuild a problem from :func:`problem_to_dict` output."""
    if payload.get("format") != "repro.problem":
        raise ValueError(f"not a repro problem payload: {payload.get('format')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported problem format version {payload.get('version')}")
    g = payload["graph"]
    graph = TaskGraph(
        g["n"],
        [tuple(e) for e in g["edges"]],
        g["data_sizes"],
        name=g.get("name", "loaded"),
    )
    p = payload["platform"]
    platform = Platform(
        p["m"], np.asarray(p["transfer_rates"]), name=p.get("name", "loaded")
    )
    u = payload["uncertainty"]
    uncertainty = UncertaintyModel(np.asarray(u["bcet"]), np.asarray(u["ul"]))
    problem = SchedulingProblem(
        graph=graph,
        platform=platform,
        uncertainty=uncertainty,
        name=payload.get("name", "loaded"),
    )
    expect = payload.get("fingerprint")
    if expect is not None and problem_fingerprint(problem) != expect:
        raise ValueError("problem fingerprint mismatch: payload is corrupt")
    return problem


def save_problem(problem: SchedulingProblem, path: str | pathlib.Path) -> None:
    """Write a problem to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(problem_to_dict(problem), indent=1))


def load_problem(path: str | pathlib.Path) -> SchedulingProblem:
    """Read a problem from a JSON file."""
    return problem_from_dict(json.loads(pathlib.Path(path).read_text()))


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule (orders only + problem fingerprint)."""
    return {
        "format": "repro.schedule",
        "version": FORMAT_VERSION,
        "problem_fingerprint": problem_fingerprint(schedule.problem),
        "proc_orders": [t.tolist() for t in schedule.proc_orders],
    }


def schedule_from_dict(
    payload: dict[str, Any], problem: SchedulingProblem
) -> Schedule:
    """Rebuild a schedule against its (separately loaded) problem.

    Raises
    ------
    ValueError
        If the payload was produced for a different problem.
    """
    if payload.get("format") != "repro.schedule":
        raise ValueError(f"not a repro schedule payload: {payload.get('format')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format version {payload.get('version')}"
        )
    expect = payload.get("problem_fingerprint")
    if expect is not None and expect != problem_fingerprint(problem):
        raise ValueError(
            "schedule was saved for a different problem (fingerprint mismatch)"
        )
    return Schedule(problem, payload["proc_orders"])


def _scalar_to_json(value: float) -> float | str:
    """Encode one float; non-finite values become portable strings.

    Finite floats round-trip **exactly** through :mod:`json`: the encoder
    emits ``repr(float)``, the shortest decimal string that parses back
    to the identical IEEE-754 double.  ``inf``/``nan`` (legal R1/R2
    values — a schedule that never misses has infinite robustness) are
    not valid JSON, so they are stored as strings that :func:`float`
    parses back.
    """
    value = float(value)
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def _scalar_from_json(value: float | int | str) -> float:
    """Invert :func:`_scalar_to_json` bit-for-bit."""
    return float(value)


def report_to_dict(report: RobustnessReport) -> dict[str, Any]:
    """Serialize a Monte-Carlo robustness report to a JSON-compatible dict.

    The encoding is lossless: ``report_from_dict(report_to_dict(r))``
    reproduces every float bit-for-bit, which is what lets cluster
    checkpoints (:mod:`repro.cluster.checkpoint`) restore finished grid
    cells indistinguishably from recomputing them.
    """
    return {
        "format": "repro.robustness_report",
        "version": FORMAT_VERSION,
        "expected_makespan": _scalar_to_json(report.expected_makespan),
        "avg_slack": _scalar_to_json(report.avg_slack),
        "realized_makespans": report.realized_makespans.tolist(),
        "mean_makespan": _scalar_to_json(report.mean_makespan),
        "mean_tardiness": _scalar_to_json(report.mean_tardiness),
        "miss_rate": _scalar_to_json(report.miss_rate),
        "r1": _scalar_to_json(report.r1),
        "r2": _scalar_to_json(report.r2),
    }


def report_from_dict(payload: dict[str, Any]) -> RobustnessReport:
    """Rebuild a report from :func:`report_to_dict` output, bit-exact."""
    if payload.get("format") != "repro.robustness_report":
        raise ValueError(
            f"not a repro robustness-report payload: {payload.get('format')!r}"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported robustness-report version {payload.get('version')}"
        )
    realized = np.asarray(payload["realized_makespans"], dtype=np.float64)
    realized.setflags(write=False)
    return RobustnessReport(
        expected_makespan=_scalar_from_json(payload["expected_makespan"]),
        avg_slack=_scalar_from_json(payload["avg_slack"]),
        realized_makespans=realized,
        mean_makespan=_scalar_from_json(payload["mean_makespan"]),
        mean_tardiness=_scalar_from_json(payload["mean_tardiness"]),
        miss_rate=_scalar_from_json(payload["miss_rate"]),
        r1=_scalar_from_json(payload["r1"]),
        r2=_scalar_from_json(payload["r2"]),
    )


def save_schedule(schedule: Schedule, path: str | pathlib.Path) -> None:
    """Write a schedule to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=1))


def load_schedule(path: str | pathlib.Path, problem: SchedulingProblem) -> Schedule:
    """Read a schedule from a JSON file and bind it to *problem*."""
    return schedule_from_dict(json.loads(pathlib.Path(path).read_text()), problem)
