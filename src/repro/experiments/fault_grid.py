"""Fault-grid experiment: schedulers × reactive policies × fault scenarios.

The paper argues slack-maximizing schedules are robust against stochastic
duration noise; this experiment asks whether that robustness extends to
*faults* the GA never optimized for.  Per instance it pits

* HEFT under ``rerun-static`` and ``repair``,
* the ε-constraint robust GA under ``rerun-static`` and ``repair``,
* the fully online ``dynamic`` MCT baseline

against every requested :class:`~repro.faults.scenario.FaultScenario`,
assessing each cell with :func:`repro.faults.assess_robustness_faulty`
(same R1/R2/miss-rate definitions as the paper's Monte-Carlo protocol, so
numbers are comparable to the fault-free experiments).

Execution fans one :class:`~repro.cluster.TaskSpec` per instance through
:mod:`repro.cluster` — the GA is solved once per instance and reused
across all scenarios — with every random stream derived from the config
seed, so results are bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterConfig, Scheduler, TaskFailure, TaskSpec
from repro.core.robust import RobustScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import capped
from repro.experiments.workloads import make_problem
from repro.faults.assess import FaultAssessment, assess_robustness_faulty
from repro.faults.scenario import FaultScenario
from repro.heuristics.heft import HeftScheduler
from repro.utils.tables import format_table

__all__ = ["FaultOutcome", "FaultGridResults", "run_fault_grid", "STRATEGIES"]

#: (scheduler label, policy) combinations the grid evaluates by default.
STRATEGIES: tuple[tuple[str, str], ...] = (
    ("heft", "rerun-static"),
    ("heft", "repair"),
    ("robust-ga", "rerun-static"),
    ("robust-ga", "repair"),
    ("online", "dynamic"),
)


@dataclass(frozen=True)
class FaultOutcome:
    """One grid cell: (instance, scenario, scheduler, policy) assessed."""

    instance: int
    scenario: str
    scheduler: str
    policy: str
    assessment: FaultAssessment


def _instance_cells(
    config: ExperimentConfig,
    mean_ul: float,
    index: int,
    epsilon: float,
    scenarios: tuple[FaultScenario, ...],
    strategies: tuple[tuple[str, str], ...],
    ga_params=None,
) -> list[FaultOutcome]:
    """All (scenario, strategy) cells of one instance.

    HEFT and the GA are each solved once; every Monte-Carlo stream is
    derived from the config seed with fault-grid-specific spawn keys
    (role 6 for the GA, role 7 for assessments) so the experiment never
    collides with the ε-grid streams and is order-independent.
    """
    problem = make_problem(config, mean_ul, index)
    n_real = config.scale.n_realizations
    ul_key = int(round(mean_ul * 1000))

    schedules = {"heft": HeftScheduler().schedule(problem)}
    if any(s == "robust-ga" for s, _ in strategies):
        ga_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(6, index, ul_key))
        )
        params = ga_params if ga_params is not None else config.ga_params()
        schedules["robust-ga"] = RobustScheduler(
            epsilon=epsilon, params=params, rng=ga_rng
        ).solve(problem).schedule
    # The online baseline only needs the problem; hand it any schedule.
    schedules["online"] = schedules["heft"]

    outcomes: list[FaultOutcome] = []
    for si, scenario in enumerate(scenarios):
        for ki, (scheduler, policy) in enumerate(strategies):
            mc_rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=config.seed, spawn_key=(7, index, ul_key, si, ki)
                )
            )
            assessment = assess_robustness_faulty(
                schedules[scheduler], scenario, n_real, mc_rng, policy=policy
            )
            outcomes.append(
                FaultOutcome(
                    instance=index,
                    scenario=scenario.name,
                    scheduler=scheduler,
                    policy=policy,
                    assessment=assessment,
                )
            )
    return outcomes


@dataclass(frozen=True)
class FaultGridResults:
    """All raw cells of one fault-grid run."""

    config: ExperimentConfig
    mean_ul: float
    epsilon: float
    scenarios: tuple[str, ...]
    strategies: tuple[tuple[str, str], ...]
    outcomes: list[FaultOutcome]

    def cells(self, scenario: str, scheduler: str, policy: str) -> list[FaultOutcome]:
        """Per-instance outcomes of one (scenario, strategy) cell."""
        return [
            o
            for o in self.outcomes
            if o.scenario == scenario
            and o.scheduler == scheduler
            and o.policy == policy
        ]

    def to_table(self) -> str:
        """Instance-averaged summary, one row per (scenario, strategy).

        ``mean M`` averages realized makespans across instances and
        realizations (``inf`` = some realization never completed);
        ``R1`` is the instance-mean with infinite values capped at the
        config's ``r1_cap``; ``fail%`` is the fraction of realizations
        that never completed; ``redisp`` the mean number of repair
        re-dispatches per realization.
        """
        cap = self.config.r1_cap
        rows = []
        for scenario in self.scenarios:
            for scheduler, policy in self.strategies:
                cells = self.cells(scenario, scheduler, policy)
                if not cells:
                    continue
                n_real = sum(o.assessment.n_realizations for o in cells)
                rows.append([
                    scenario,
                    scheduler,
                    policy,
                    float(np.mean([o.assessment.mean_makespan for o in cells])),
                    float(np.mean([o.assessment.miss_rate for o in cells])),
                    float(np.mean([capped(o.assessment.r1, cap) for o in cells])),
                    100.0 * sum(o.assessment.n_failed for o in cells) / n_real,
                    sum(o.assessment.n_redispatches for o in cells) / n_real,
                ])
        n_inst = len({o.instance for o in self.outcomes})
        return format_table(
            ["scenario", "scheduler", "policy", "mean M", "miss", "R1",
             "fail%", "redisp"],
            rows,
            title=(
                f"fault grid  (UL={self.mean_ul:g}, eps={self.epsilon:g}, "
                f"{n_inst} instances, N={self.config.scale.n_realizations})"
            ),
        )


def run_fault_grid(
    config: ExperimentConfig,
    scenarios: tuple[FaultScenario, ...],
    *,
    mean_ul: float = 4.0,
    epsilon: float = 1.4,
    strategies: tuple[tuple[str, str], ...] = STRATEGIES,
    ga_params=None,
    n_jobs: int = 1,
    progress=None,
) -> FaultGridResults:
    """Assess every (instance, scenario, strategy) cell of the fault grid.

    Parameters
    ----------
    config:
        Scale / seeding configuration (same object the figure drivers
        take; ``scale.n_graphs`` instances are generated).
    scenarios:
        The fault scenarios to grid over.
    mean_ul:
        Uncertainty level of the instance pool (paper sweeps 2–8; the
        fault grid fixes one level and varies the faults instead).
    epsilon:
        ε-constraint for the robust GA strategies.
    strategies:
        (scheduler, policy) pairs; see :data:`STRATEGIES`.
    ga_params:
        Optional :class:`~repro.ga.engine.GAParams` override for the
        robust-GA strategies (default: ``config.ga_params()``).
    n_jobs:
        Worker processes (1 = in-process); results are bit-identical for
        any value.
    progress:
        Optional ``progress(msg)`` callable.
    """
    scenarios = tuple(scenarios)
    if not scenarios:
        raise ValueError("need at least one scenario")
    strategies = tuple((str(s), str(p)) for s, p in strategies)
    if not strategies:
        raise ValueError("need at least one (scheduler, policy) strategy")
    for scheduler, _ in strategies:
        if scheduler not in ("heft", "robust-ga", "online"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                "choose heft, robust-ga or online"
            )
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")

    n_graphs = config.scale.n_graphs
    specs = [
        TaskSpec(
            key=f"fault/instance={i}",
            fn=_instance_cells,
            args=(config, mean_ul, i, epsilon, scenarios, strategies, ga_params),
            seed=(config.seed, 6, i),
            max_retries=2,
        )
        for i in range(n_graphs)
    ]

    done = 0

    def _on_done(spec: TaskSpec, outcome) -> None:
        nonlocal done
        done += 1
        if progress is not None and outcome.ok:
            progress(f"fault grid: {done}/{len(specs)} instances done")

    scheduler = Scheduler(
        ClusterConfig(n_workers=n_jobs if n_jobs > 1 else 0),
        on_done=_on_done,
    )
    results = scheduler.run(specs)
    failures = [o for o in results.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)

    outcomes: list[FaultOutcome] = []
    for spec in specs:
        outcomes.extend(results[spec.key].result)
    outcomes.sort(key=lambda o: (o.instance, o.scenario, o.scheduler, o.policy))
    return FaultGridResults(
        config=config,
        mean_ul=float(mean_ul),
        epsilon=float(epsilon),
        scenarios=tuple(s.name for s in scenarios),
        strategies=strategies,
        outcomes=outcomes,
    )
