"""Algo-grid experiment: the scheduler catalogue × graph families.

Sweeps every named combination of the component algebra
(:data:`repro.algebra.CATALOGUE`) over instances drawn from several
graph families — the paper's random layered DAGs plus the structured
HEFT-literature workloads (Gaussian elimination, FFT, fork-join) — and
ranks the combinations two ways:

* **makespan** — mean ratio of a combination's expected makespan to the
  best combination's on the same instance (1.0 = always best);
* **robustness** — instance-mean R1 / R2 from the paper's Monte-Carlo
  assessor (:func:`repro.robustness.assess_robustness`), so the cheap
  recombined heuristics are directly comparable to the robust GA's
  numbers.

Execution fans one :class:`~repro.cluster.TaskSpec` per
(family, instance) through :mod:`repro.cluster`.  Every random stream is
derived from the seed with algo-grid-specific spawn-key roles — role 11
for instance generation, role 12 for Monte-Carlo assessment — so the
sweep never collides with the other experiments' streams and results are
bit-identical for any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algebra.catalogue import CATALOGUE, component_scheduler
from repro.cluster import ClusterConfig, Scheduler, TaskFailure, TaskSpec
from repro.experiments.runner import capped
from repro.graph.generator import DagParams, random_dag
from repro.graph.taskgraph import TaskGraph
from repro.graph.workflows import fft, fork_join, gaussian_elimination
from repro.core.problem import SchedulingProblem
from repro.platform.etc import EtcParams, generate_etc
from repro.platform.platform import Platform
from repro.platform.uncertainty import (
    UncertaintyModel,
    UncertaintyParams,
    generate_ul,
)
from repro.robustness.montecarlo import assess_robustness
from repro.utils.tables import format_table

__all__ = [
    "FAMILIES",
    "AlgoOutcome",
    "AlgoGridResults",
    "run_algo_grid",
    "family_graph",
]

#: Graph families the grid sweeps by default.
FAMILIES = ("layered", "gauss", "fft", "forkjoin")

#: Default R1/R2 cap when averaging (inf = never tardy / never missed).
R_CAP = 1e6


def family_graph(
    family: str, n_tasks: int, rng: np.random.Generator
) -> TaskGraph:
    """An approximately *n_tasks*-task graph of the requested family.

    The structured families are deterministic given the size target (the
    rng only drives the ``layered`` family); sizes are rounded down to
    the family's nearest valid shape.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    if family == "layered":
        return random_dag(DagParams(n=n_tasks), rng)
    if family == "gauss":
        # (s^2 + s - 2) / 2 tasks; largest s fitting the target.
        s = 2
        while (s + 1) ** 2 + (s + 1) - 2 <= 2 * n_tasks:
            s += 1
        return gaussian_elimination(s)
    if family == "fft":
        # (p - 1) + p * (log2(p) + 1) tasks; largest power of two fitting.
        p = 2
        while True:
            nxt = p * 2
            if (nxt - 1) + nxt * (int(math.log2(nxt)) + 1) > n_tasks:
                break
            p = nxt
        return fft(p)
    if family == "forkjoin":
        # Each stage is fork + width workers + join = width + 2 tasks.
        width = max(1, int(round(math.sqrt(n_tasks / 2.0))))
        stages = max(1, n_tasks // (width + 2))
        return fork_join(stages, width)
    raise ValueError(f"unknown family {family!r}; choose from {FAMILIES}")


def _make_instance(
    family: str,
    fam_idx: int,
    index: int,
    seed: int,
    n_tasks: int,
    m: int,
    mean_ul: float,
) -> SchedulingProblem:
    """Instance *index* of one family pool (spawn-key role 11)."""

    def stream(role: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=seed, spawn_key=(11, fam_idx, index, role)
            )
        )

    graph = family_graph(family, n_tasks, stream(0))
    bcet = generate_etc(graph.n, m, EtcParams(), stream(1))
    ul = generate_ul(
        graph.n, m, UncertaintyParams(mean_ul=mean_ul), stream(2)
    )
    return SchedulingProblem(
        graph=graph,
        platform=Platform(m),
        uncertainty=UncertaintyModel(bcet, ul),
        name=f"algo-{family}-UL{mean_ul:g}-inst{index}",
    )


@dataclass(frozen=True)
class AlgoOutcome:
    """One grid cell: (family, instance, combination) assessed."""

    family: str
    instance: int
    combo: str
    n_tasks: int
    expected_makespan: float
    mean_makespan: float
    avg_slack: float
    miss_rate: float
    r1: float
    r2: float


def _instance_cells(
    family: str,
    fam_idx: int,
    index: int,
    seed: int,
    n_tasks: int,
    m: int,
    mean_ul: float,
    combos: tuple[str, ...],
    n_realizations: int,
) -> list[AlgoOutcome]:
    """All combination cells of one (family, instance).

    Each combination's Monte-Carlo stream folds in its position in the
    *combos* tuple (role 12), so cells are independent of evaluation
    order and of which other combinations are requested before it.
    """
    problem = _make_instance(
        family, fam_idx, index, seed, n_tasks, m, mean_ul
    )
    outcomes: list[AlgoOutcome] = []
    for combo_idx, combo in enumerate(combos):
        schedule = component_scheduler(combo).schedule(problem)
        mc_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=seed, spawn_key=(12, fam_idx, index, combo_idx)
            )
        )
        report = assess_robustness(schedule, n_realizations, mc_rng)
        outcomes.append(
            AlgoOutcome(
                family=family,
                instance=index,
                combo=combo,
                n_tasks=problem.n,
                expected_makespan=float(report.expected_makespan),
                mean_makespan=float(report.mean_makespan),
                avg_slack=float(report.avg_slack),
                miss_rate=float(report.miss_rate),
                r1=float(report.r1),
                r2=float(report.r2),
            )
        )
    return outcomes


@dataclass(frozen=True)
class AlgoGridResults:
    """All raw cells of one algo-grid run."""

    seed: int
    families: tuple[str, ...]
    combos: tuple[str, ...]
    n_instances: int
    n_tasks: int
    m: int
    mean_ul: float
    n_realizations: int
    outcomes: list[AlgoOutcome]

    def cells(self, combo: str) -> list[AlgoOutcome]:
        """Every (family, instance) outcome of one combination."""
        return [o for o in self.outcomes if o.combo == combo]

    def ranking(
        self, by: str = "makespan", cap: float = R_CAP
    ) -> list[tuple[str, float]]:
        """Combinations ranked best-first by one criterion.

        ``makespan`` scores each combination by the mean, over grid
        cells, of its expected makespan divided by the best
        combination's on the same cell (1.0 = always best; lower is
        better).  ``r1`` / ``r2`` score by the instance-mean robustness
        with infinite values capped at *cap* (higher is better).
        """
        if by == "makespan":
            best: dict[tuple[str, int], float] = {}
            for o in self.outcomes:
                key = (o.family, o.instance)
                if key not in best or o.expected_makespan < best[key]:
                    best[key] = o.expected_makespan
            scores = [
                (
                    combo,
                    float(
                        np.mean([
                            o.expected_makespan / best[(o.family, o.instance)]
                            for o in self.cells(combo)
                        ])
                    ),
                )
                for combo in self.combos
            ]
            scores.sort(key=lambda kv: (kv[1], kv[0]))
            return scores
        if by in ("r1", "r2"):
            scores = [
                (
                    combo,
                    float(
                        np.mean([
                            capped(getattr(o, by), cap)
                            for o in self.cells(combo)
                        ])
                    ),
                )
                for combo in self.combos
            ]
            scores.sort(key=lambda kv: (-kv[1], kv[0]))
            return scores
        raise ValueError(
            f"unknown ranking criterion {by!r}; choose makespan, r1 or r2"
        )

    def to_table(self, by: str = "makespan") -> str:
        """Ranked summary, one row per combination."""
        rank = dict(self.ranking(by))
        rows = []
        for position, (combo, score) in enumerate(self.ranking(by), 1):
            cells = self.cells(combo)
            rows.append([
                position,
                combo,
                float(rank[combo]) if by == "makespan" else float(
                    np.mean([
                        o.expected_makespan for o in cells
                    ])
                ),
                float(np.mean([o.mean_makespan for o in cells])),
                float(np.mean([o.avg_slack for o in cells])),
                float(np.mean([o.miss_rate for o in cells])),
                float(np.mean([capped(o.r1, R_CAP) for o in cells])),
                float(np.mean([capped(o.r2, R_CAP) for o in cells])),
            ])
        head = "M ratio" if by == "makespan" else "mean M0"
        return format_table(
            ["#", "combo", head, "mean M", "slack", "miss", "R1", "R2"],
            rows,
            title=(
                f"algo grid by {by}  ({len(self.families)} families x "
                f"{self.n_instances} instances, ~{self.n_tasks} tasks, "
                f"m={self.m}, UL={self.mean_ul:g}, "
                f"N={self.n_realizations})"
            ),
        )


def run_algo_grid(
    *,
    seed: int = 42,
    combos: tuple[str, ...] | None = None,
    families: tuple[str, ...] = FAMILIES,
    n_instances: int = 3,
    n_tasks: int = 50,
    m: int = 4,
    mean_ul: float = 2.0,
    n_realizations: int = 200,
    n_jobs: int = 1,
    progress=None,
) -> AlgoGridResults:
    """Assess every (family, instance, combination) cell of the grid.

    Parameters
    ----------
    seed:
        Root entropy; every stream is spawn-keyed off it (roles 11/12).
    combos:
        Catalogue names to sweep (default: the whole catalogue, in
        catalogue order).
    families:
        Graph families (see :data:`FAMILIES`).
    n_instances:
        Instances per family.
    n_tasks:
        Approximate tasks per instance (families round to valid shapes).
    m:
        Processors.
    mean_ul:
        Scenario-average uncertainty level.
    n_realizations:
        Monte-Carlo realizations per cell.
    n_jobs:
        Worker processes (1 = in-process); results are bit-identical
        for any value.
    progress:
        Optional ``progress(msg)`` callable.
    """
    combos = tuple(combos) if combos is not None else tuple(CATALOGUE)
    if not combos:
        raise ValueError("need at least one combination")
    for combo in combos:
        if combo not in CATALOGUE:
            raise ValueError(
                f"unknown combination {combo!r}; "
                f"choose from {tuple(CATALOGUE)}"
            )
    families = tuple(families)
    if not families:
        raise ValueError("need at least one family")
    for family in families:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown family {family!r}; choose from {FAMILIES}"
            )
    if n_instances < 1:
        raise ValueError(f"n_instances must be >= 1, got {n_instances}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")

    specs = [
        TaskSpec(
            key=f"algo/{family}/instance={i}",
            fn=_instance_cells,
            args=(
                family,
                fam_idx,
                i,
                seed,
                n_tasks,
                m,
                mean_ul,
                combos,
                n_realizations,
            ),
            seed=(seed, 11, fam_idx, i),
            max_retries=2,
        )
        for fam_idx, family in enumerate(families)
        for i in range(n_instances)
    ]

    done = 0

    def _on_done(spec: TaskSpec, outcome) -> None:
        nonlocal done
        done += 1
        if progress is not None and outcome.ok:
            progress(f"algo grid: {done}/{len(specs)} instances done")

    scheduler = Scheduler(
        ClusterConfig(n_workers=n_jobs if n_jobs > 1 else 0),
        on_done=_on_done,
    )
    results = scheduler.run(specs)
    failures = [o for o in results.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)

    outcomes: list[AlgoOutcome] = []
    for spec in specs:
        outcomes.extend(results[spec.key].result)
    outcomes.sort(key=lambda o: (o.family, o.instance, o.combo))
    return AlgoGridResults(
        seed=seed,
        families=families,
        combos=combos,
        n_instances=n_instances,
        n_tasks=n_tasks,
        m=m,
        mean_ul=float(mean_ul),
        n_realizations=n_realizations,
        outcomes=outcomes,
    )
