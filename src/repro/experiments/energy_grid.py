"""Energy-grid experiment: the three-objective frontier study.

The paper trades makespan against robustness; :mod:`repro.energy` adds
expected energy as a third axis.  Per instance this grid pits

* HEFT (the paper's baseline — fast, power-oblivious),
* the ε-constraint robust GA (slack-maximizing, power-oblivious),
* the energy GA (min energy s.t. ``M_0 ≤ ε·M_HEFT`` and
  ``σ̄ ≥ slack_ratio·σ̄_HEFT``)

across a sweep of ε budgets, pricing every schedule with one shared
:class:`~repro.energy.power.PowerModel`, assessing each with the same
Monte-Carlo R1/R2 protocol as the paper's experiments, and adding a
DVFS post-pass column (:func:`~repro.energy.power.slowest_feasible_freqs`)
showing how much frequency scaling recovers within the same budget.

At the largest ε the energy-GA schedule is additionally hardened into
k-fault-tolerant :class:`~repro.energy.replication.ReplicationPlan`\\ s
under both backup policies (``overlap`` vs ``duplicate``), each verified
to survive every ≤k-processor permanent-failure subset via
:func:`~repro.energy.replication.verify_survival` — the grid's headline
comparison is that overlapping reserves strictly less backup energy at
equal verified reliability.

Execution fans one :class:`~repro.cluster.TaskSpec` per instance through
:mod:`repro.cluster`; every random stream derives from the config seed
with energy-grid-specific spawn keys (role 9 for GA runs, role 10 for
Monte-Carlo and survival assessments), so results are bit-identical for
any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterConfig, Scheduler, TaskFailure, TaskSpec
from repro.core.robust import RobustScheduler
from repro.energy.objective import EnergyScheduler
from repro.energy.power import PowerModel, slowest_feasible_freqs
from repro.energy.replication import (
    REPLICATION_POLICIES,
    ReplicationEnergy,
    SurvivalReport,
    build_replication_plan,
    verify_survival,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import capped
from repro.experiments.workloads import make_problem
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import RobustnessReport, assess_robustness
from repro.schedule.evaluation import evaluate
from repro.utils.tables import format_table

__all__ = [
    "EnergyOutcome",
    "ReplicationOutcome",
    "EnergyGridResults",
    "run_energy_grid",
    "STRATEGIES",
]

#: Scheduling strategies the grid evaluates by default.
STRATEGIES: tuple[str, ...] = ("heft", "robust-ga", "energy-ga")

_TOL = 1e-12


@dataclass(frozen=True)
class EnergyOutcome:
    """One grid cell: (instance, strategy, ε) solved, priced, assessed."""

    instance: int
    strategy: str
    epsilon: float
    m_heft: float
    makespan: float
    avg_slack: float
    min_slack: float
    energy: float
    dvfs_energy: float
    report: RobustnessReport

    @property
    def feasible(self) -> bool:
        """Both ε-budget and slack floor hold for this cell."""
        return (
            self.makespan <= self.epsilon * self.m_heft * (1.0 + _TOL)
            and self.avg_slack >= self.min_slack * (1.0 - _TOL)
        )


@dataclass(frozen=True)
class ReplicationOutcome:
    """One replication cell: the hardened schedule under one policy."""

    instance: int
    policy: str
    k: int
    deadline: float
    energy: ReplicationEnergy
    survival: SurvivalReport


def _instance_cells(
    config: ExperimentConfig,
    mean_ul: float,
    index: int,
    power: PowerModel,
    epsilons: tuple[float, ...],
    slack_ratio: float,
    k: int,
    deadline_factor: float,
    strategies: tuple[str, ...],
    replication_realizations: int,
    ga_params=None,
) -> tuple[list[EnergyOutcome], list[ReplicationOutcome]]:
    """All (strategy, ε) cells of one instance plus its replication cells.

    HEFT is solved once; each GA strategy is solved once per ε with its
    own child stream (role 9); every Monte-Carlo / survival assessment
    draws from role 10 — disjoint from the ε-grid (roles 0–2), fault-grid
    (6/7) and stream (8) streams, so grids can share a seed.
    """
    problem = make_problem(config, mean_ul, index)
    n_real = config.scale.n_realizations
    ul_key = int(round(mean_ul * 1000))

    heft_schedule = HeftScheduler().schedule(problem)
    heft_ev = evaluate(heft_schedule)
    m_heft = heft_ev.makespan
    min_slack = slack_ratio * heft_ev.avg_slack if slack_ratio > 0 else 0.0

    def _mc_rng(*key: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=config.seed, spawn_key=(10, index, ul_key) + key
            )
        )

    def _cell(strategy: str, eps: float, schedule, floor: float, si: int,
              ki: int) -> EnergyOutcome:
        ev = evaluate(schedule)
        breakdown = power.energy_of(schedule)
        _, dvfs = slowest_feasible_freqs(schedule, power, eps * m_heft)
        report = assess_robustness(schedule, n_real, _mc_rng(si, ki))
        return EnergyOutcome(
            instance=index,
            strategy=strategy,
            epsilon=float(eps),
            m_heft=m_heft,
            makespan=ev.makespan,
            avg_slack=ev.avg_slack,
            min_slack=float(floor),
            energy=breakdown.total,
            dvfs_energy=dvfs.total,
            report=report,
        )

    outcomes: list[EnergyOutcome] = []
    energy_best = None  # largest-ε energy-GA schedule, for replication
    for si, eps in enumerate(epsilons):
        eps_key = int(round(eps * 1000))
        for ki, strategy in enumerate(strategies):
            if strategy == "heft":
                # ε-independent; report once under the trivial ε = 1 budget.
                if si == 0:
                    outcomes.append(
                        _cell("heft", 1.0, heft_schedule, 0.0, si, ki)
                    )
                continue
            ga_rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=config.seed,
                    spawn_key=(9, index, ul_key, eps_key, ki),
                )
            )
            params = ga_params if ga_params is not None else config.ga_params()
            if strategy == "robust-ga":
                schedule = RobustScheduler(
                    epsilon=eps, params=params, rng=ga_rng
                ).solve(problem).schedule
                outcomes.append(_cell(strategy, eps, schedule, 0.0, si, ki))
            else:  # energy-ga
                schedule = EnergyScheduler(
                    epsilon=eps,
                    power=power,
                    params=params,
                    rng=ga_rng,
                    slack_ratio=slack_ratio,
                ).solve(problem).schedule
                outcomes.append(
                    _cell(strategy, eps, schedule, min_slack, si, ki)
                )
                energy_best = schedule

    replication: list[ReplicationOutcome] = []
    if k > 0:
        base = energy_best if energy_best is not None else heft_schedule
        deadline = deadline_factor * m_heft
        for pi, policy in enumerate(REPLICATION_POLICIES):
            plan = build_replication_plan(
                problem, base, k=k, policy=policy, deadline=deadline
            )
            survival = verify_survival(
                plan,
                n_realizations=replication_realizations,
                rng=_mc_rng(1000, pi),
            )
            replication.append(
                ReplicationOutcome(
                    instance=index,
                    policy=policy,
                    k=k,
                    deadline=deadline,
                    energy=plan.energy(power),
                    survival=survival,
                )
            )
    return outcomes, replication


@dataclass(frozen=True)
class EnergyGridResults:
    """All raw cells of one energy-grid run."""

    config: ExperimentConfig
    mean_ul: float
    power: PowerModel
    epsilons: tuple[float, ...]
    slack_ratio: float
    k: int
    deadline_factor: float
    strategies: tuple[str, ...]
    outcomes: list[EnergyOutcome]
    replication: list[ReplicationOutcome]

    def cells(self, strategy: str, epsilon: float | None = None) -> list[EnergyOutcome]:
        """Per-instance outcomes of one (strategy[, ε]) cell."""
        return [
            o
            for o in self.outcomes
            if o.strategy == strategy
            and (epsilon is None or abs(o.epsilon - epsilon) < 1e-9)
        ]

    def replication_cells(self, policy: str) -> list[ReplicationOutcome]:
        """Per-instance replication outcomes of one backup policy."""
        return [r for r in self.replication if r.policy == policy]

    def to_table(self) -> str:
        """Instance-averaged frontier, one row per (strategy, ε).

        ``M/M_H`` is the mean makespan ratio against HEFT; ``E`` the mean
        expected joules, ``E dvfs`` after the slowest-feasible-frequency
        post-pass within the same ε budget; ``R1`` the instance-mean with
        infinities capped at the config's ``r1_cap``; ``feas%`` the
        fraction of cells meeting both constraints (must be 100 for the
        GA strategies — HEFT seeds the population).
        """
        cap = self.config.r1_cap
        rows = []
        keys: list[tuple[str, float]] = [("heft", 1.0)] if "heft" in self.strategies else []
        for eps in self.epsilons:
            for strategy in self.strategies:
                if strategy != "heft":
                    keys.append((strategy, eps))
        for strategy, eps in keys:
            cells = self.cells(strategy, eps)
            if not cells:
                continue
            rows.append([
                strategy,
                eps,
                float(np.mean([o.makespan / o.m_heft for o in cells])),
                float(np.mean([o.avg_slack for o in cells])),
                float(np.mean([o.energy for o in cells])),
                float(np.mean([o.dvfs_energy for o in cells])),
                float(np.mean([capped(o.report.r1, cap) for o in cells])),
                float(np.mean([o.report.miss_rate for o in cells])),
                100.0 * np.mean([o.feasible for o in cells]),
            ])
        n_inst = len({o.instance for o in self.outcomes})
        return format_table(
            ["strategy", "eps", "M/M_H", "slack", "E", "E dvfs", "R1",
             "miss", "feas%"],
            rows,
            title=(
                f"energy grid  (UL={self.mean_ul:g}, "
                f"R={self.slack_ratio:g}·HEFT, power={self.power.name}, "
                f"{n_inst} instances, N={self.config.scale.n_realizations})"
            ),
        )

    def replication_table(self) -> str:
        """Replication summary, one row per backup policy.

        ``E total`` is the fault-free energy (overlap pays zero backup
        joules until something fails — the EnSuRe saving); ``E worst``
        the worst-case recovery energy over every ≤k failure subset,
        ``reserve`` the total reserved backup capacity;
        ``survive%``/``guaranteed%`` the fraction of instances whose plan
        met the deadline across all subsets (Monte-Carlo / worst-case).
        """
        rows = []
        for policy in REPLICATION_POLICIES:
            cells = self.replication_cells(policy)
            if not cells:
                continue
            rows.append([
                policy,
                self.k,
                float(np.mean([r.energy.total for r in cells])),
                float(np.mean([r.energy.worst_case_backup for r in cells])),
                float(np.mean([r.energy.reserved_time.sum() for r in cells])),
                100.0 * np.mean([r.survival.survives for r in cells]),
                100.0 * np.mean([r.survival.guaranteed for r in cells]),
            ])
        return format_table(
            ["policy", "k", "E total", "E worst", "reserve",
             "survive%", "guaranteed%"],
            rows,
            title=(
                f"replication  (k={self.k}, "
                f"deadline={self.deadline_factor:g}·M_HEFT)"
            ),
        )


def run_energy_grid(
    config: ExperimentConfig,
    *,
    power: PowerModel | None = None,
    epsilons: tuple[float, ...] = (1.0, 1.3, 1.6),
    mean_ul: float = 4.0,
    slack_ratio: float = 0.5,
    k: int = 1,
    deadline_factor: float = 4.0,
    strategies: tuple[str, ...] = STRATEGIES,
    replication_realizations: int = 20,
    ga_params=None,
    n_jobs: int = 1,
    progress=None,
) -> EnergyGridResults:
    """Run the full energy frontier study.

    Parameters
    ----------
    config:
        Scale / seeding configuration (``scale.n_graphs`` instances).
    power:
        Power model shared by every cell (default:
        :meth:`PowerModel.default` for ``config.m`` processors).
    epsilons:
        Makespan budgets (multiples of per-instance ``M_HEFT``).
    mean_ul:
        Uncertainty level of the instance pool.
    slack_ratio:
        Reliability floor for the energy GA, as a fraction of HEFT's
        average slack; must stay ≤ 1 so the HEFT seed keeps every cell
        feasible.
    k / deadline_factor:
        Replication cells: tolerate any ≤k permanent processor failures
        while meeting ``deadline_factor · M_HEFT``; ``k=0`` skips
        replication entirely.
    strategies:
        Subset of :data:`STRATEGIES` to evaluate.
    replication_realizations:
        Monte-Carlo realizations per failure subset in
        :func:`~repro.energy.replication.verify_survival`.
    ga_params:
        Optional :class:`~repro.ga.engine.GAParams` override
        (default: ``config.ga_params()``).
    n_jobs:
        Worker processes (1 = in-process); results are bit-identical for
        any value.
    progress:
        Optional ``progress(msg)`` callable.
    """
    epsilons = tuple(float(e) for e in epsilons)
    if not epsilons:
        raise ValueError("need at least one epsilon")
    if any(e < 1.0 for e in epsilons):
        raise ValueError(f"epsilons must be >= 1.0, got {epsilons}")
    strategies = tuple(str(s) for s in strategies)
    if not strategies:
        raise ValueError("need at least one strategy")
    for strategy in strategies:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
            )
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k > 0 and deadline_factor <= 0:
        raise ValueError(
            f"deadline_factor must be positive, got {deadline_factor}"
        )
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if power is None:
        power = PowerModel.default(config.m)
    power.validate_for(config.m)

    n_graphs = config.scale.n_graphs
    specs = [
        TaskSpec(
            key=f"energy/instance={i}",
            fn=_instance_cells,
            args=(
                config, mean_ul, i, power, epsilons, slack_ratio, k,
                deadline_factor, strategies, replication_realizations,
                ga_params,
            ),
            seed=(config.seed, 9, i),
            max_retries=2,
        )
        for i in range(n_graphs)
    ]

    done = 0

    def _on_done(spec: TaskSpec, outcome) -> None:
        nonlocal done
        done += 1
        if progress is not None and outcome.ok:
            progress(f"energy grid: {done}/{len(specs)} instances done")

    scheduler = Scheduler(
        ClusterConfig(n_workers=n_jobs if n_jobs > 1 else 0),
        on_done=_on_done,
    )
    results = scheduler.run(specs)
    failures = [o for o in results.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)

    outcomes: list[EnergyOutcome] = []
    replication: list[ReplicationOutcome] = []
    for spec in specs:
        cell_outcomes, cell_replication = results[spec.key].result
        outcomes.extend(cell_outcomes)
        replication.extend(cell_replication)
    outcomes.sort(key=lambda o: (o.instance, o.epsilon, o.strategy))
    replication.sort(key=lambda r: (r.instance, r.policy))
    return EnergyGridResults(
        config=config,
        mean_ul=float(mean_ul),
        power=power,
        epsilons=epsilons,
        slack_ratio=float(slack_ratio),
        k=int(k),
        deadline_factor=float(deadline_factor),
        strategies=strategies,
        outcomes=outcomes,
        replication=replication,
    )
