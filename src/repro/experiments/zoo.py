"""Scheduler-zoo comparison: every scheduler over the instance pool.

The paper compares only GA-vs-HEFT; downstream users invariably ask "and
against everything else?".  This driver runs the full scheduler zoo —
HEFT, CPOP, PEFT, min-min, quantile-padded HEFT, simulated annealing,
the ε-constraint GA, and the dynamic online baseline — over the standard
instance pool and reports mean expected makespan, realized makespan,
slack, tardiness and miss rate per scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.robust import RobustScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import make_problems
from repro.heuristics.annealing import AnnealingParams, AnnealingScheduler
from repro.heuristics.cpop import CpopScheduler
from repro.heuristics.heft import HeftScheduler
from repro.heuristics.minmin import MinMinScheduler
from repro.heuristics.padded import QuantileHeftScheduler
from repro.heuristics.peft import PeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.sim.dynamic import assess_dynamic
from repro.utils.tables import format_table

__all__ = ["ZooResult", "run_zoo"]


@dataclass(frozen=True)
class ZooResult:
    """Aggregated per-scheduler metrics (means over the instance pool)."""

    mean_ul: float
    n_instances: int
    metrics: dict[str, dict[str, float]]  # scheduler -> metric -> mean value

    def to_table(self) -> str:
        """Render the comparison as an ASCII table."""
        rows = [
            [
                name,
                vals["m0"],
                vals["mean_makespan"],
                vals["avg_slack"],
                vals["mean_tardiness"],
                vals["miss_rate"],
            ]
            for name, vals in self.metrics.items()
        ]
        return format_table(
            ["scheduler", "M0", "mean M", "slack", "tardiness", "miss"],
            rows,
            title=(
                f"Scheduler zoo — {self.n_instances} instances, "
                f"UL={self.mean_ul:g} (means)"
            ),
        )


def run_zoo(
    config: ExperimentConfig,
    mean_ul: float = 4.0,
    *,
    include_dynamic: bool = True,
    progress=None,
) -> ZooResult:
    """Compare the whole scheduler zoo on one uncertainty level."""
    problems = make_problems(config, mean_ul)
    n_real = config.scale.n_realizations
    ga_params = config.ga_params()
    sa_params = AnnealingParams(
        iterations=10 * config.scale.ga_max_iterations, seed_heft=True
    )

    acc: dict[str, dict[str, list[float]]] = {}

    def record(name: str, report) -> None:
        slot = acc.setdefault(
            name,
            {
                "m0": [],
                "mean_makespan": [],
                "avg_slack": [],
                "mean_tardiness": [],
                "miss_rate": [],
            },
        )
        slot["m0"].append(report.expected_makespan)
        slot["mean_makespan"].append(report.mean_makespan)
        slot["avg_slack"].append(getattr(report, "avg_slack", float("nan")))
        slot["mean_tardiness"].append(report.mean_tardiness)
        slot["miss_rate"].append(report.miss_rate)

    for i, problem in enumerate(problems):
        static = [
            ("heft", HeftScheduler()),
            ("cpop", CpopScheduler()),
            ("peft", PeftScheduler()),
            ("minmin", MinMinScheduler()),
            ("heft-q0.9", QuantileHeftScheduler(0.9)),
            ("annealing", AnnealingScheduler("makespan", params=sa_params, rng=i)),
            ("robust-ga", RobustScheduler(epsilon=1.0, params=ga_params, rng=i)),
        ]
        for name, scheduler in static:
            schedule = scheduler.schedule(problem)
            record(name, assess_robustness(schedule, n_real, rng=13 * i))
        if include_dynamic:
            record("online-mct", assess_dynamic(problem, n_real, rng=13 * i + 1))
        if progress is not None:
            progress(f"zoo UL={mean_ul:g}: instance {i + 1}/{len(problems)}")

    metrics = {
        name: {metric: float(np.mean(vals)) for metric, vals in slots.items()}
        for name, slots in acc.items()
    }
    return ZooResult(
        mean_ul=float(mean_ul), n_instances=len(problems), metrics=metrics
    )
