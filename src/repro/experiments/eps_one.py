"""Fig. 4: improvement over HEFT at ε = 1.0.

With ε = 1.0 the GA may not exceed HEFT's expected makespan, so any
robustness gain is "free".  For each uncertainty level the paper plots the
log ratio of relative improvement over HEFT of three quantities:

* mean realized makespan — ``log(M_HEFT / M_GA)`` (positive: GA no worse);
* R1 — ``log(R1_GA / R1_HEFT)`` (the paper reports ~13 % at UL = 2,
  shrinking as UL grows);
* R2 — same form, smaller gains than R1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import PAPER_ULS, ExperimentConfig
from repro.experiments.runner import EpsGridResults, run_eps_grid
from repro.utils.tables import format_series

__all__ = ["EpsOneResult", "run_eps_one"]


@dataclass(frozen=True)
class EpsOneResult:
    """Fig. 4's three series over the UL axis (mean log improvement over HEFT)."""

    uls: tuple[float, ...]
    makespan: np.ndarray
    r1: np.ndarray
    r2: np.ndarray
    grid: EpsGridResults

    def to_table(self) -> str:
        """Render the figure as an ASCII table."""
        return format_series(
            "UL",
            list(self.uls),
            {
                "makespan": self.makespan,
                "R1": self.r1,
                "R2": self.r2,
            },
            title="Fig. 4 — log ratio of relative improvement over HEFT (eps = 1.0)",
        )


def run_eps_one(
    config: ExperimentConfig,
    uls: tuple[float, ...] = PAPER_ULS,
    *,
    grid: EpsGridResults | None = None,
    n_jobs: int = 1,
    progress=None,
    checkpoint=None,
    resume: bool = False,
    metrics_path=None,
) -> EpsOneResult:
    """Run the Fig. 4 experiment.

    Parameters
    ----------
    grid:
        Optionally reuse a precomputed grid that covers these ULs at
        ε = 1.0 (the Figs. 5-8 grid qualifies).
    """
    if grid is None:
        grid = run_eps_grid(
            config,
            uls,
            (1.0,),
            n_jobs=n_jobs,
            progress=progress,
            checkpoint=checkpoint,
            resume=resume,
            metrics_path=metrics_path,
        )
    makespan = np.asarray(
        [
            grid.mean_log_ratio(
                ul, 1.0, lambda o: o.heft.mean_makespan, lambda o: o.ga.mean_makespan
            )
            for ul in uls
        ]
    )
    r1 = np.asarray(
        [
            grid.mean_log_ratio(ul, 1.0, lambda o: o.ga.r1, lambda o: o.heft.r1)
            for ul in uls
        ]
    )
    r2 = np.asarray(
        [
            grid.mean_log_ratio(ul, 1.0, lambda o: o.ga.r2, lambda o: o.heft.r2)
            for ul in uls
        ]
    )
    return EpsOneResult(
        uls=tuple(float(u) for u in uls), makespan=makespan, r1=r1, r2=r2, grid=grid
    )
