"""Experiment configuration and scale presets.

The paper's full protocol — 100 random graphs of 100 tasks, 1000
realizations each, GAs run for up to 1000 generations — takes hours.  All
drivers therefore accept a :class:`Scale`, with three presets:

``paper``
    The exact Sec. 5 protocol.
``medium``
    ~10x cheaper in every dimension; shapes remain stable.  Default for
    locally exploring results.
``smoke``
    Seconds-level; used by the benchmark suite and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.graph.generator import DagParams
from repro.platform.etc import EtcParams
from repro.platform.uncertainty import UncertaintyParams

__all__ = ["Scale", "SCALES", "ExperimentConfig", "PAPER_ULS"]


#: The uncertainty levels swept throughout Sec. 5.
PAPER_ULS: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0)


@dataclass(frozen=True)
class Scale:
    """Cost knobs of one experiment run.

    Attributes
    ----------
    n_graphs:
        Number of random task-graph instances averaged over (paper: 100).
    n_realizations:
        Monte-Carlo realizations per schedule (paper: 1000).
    n_tasks:
        Tasks per graph (paper: 100).
    ga_max_iterations / ga_stagnation:
        GA stopping rule (paper: 1000 / 100).
    """

    name: str
    n_graphs: int
    n_realizations: int
    n_tasks: int
    ga_max_iterations: int
    ga_stagnation: int

    def __post_init__(self) -> None:
        for attr in (
            "n_graphs",
            "n_realizations",
            "n_tasks",
            "ga_max_iterations",
            "ga_stagnation",
        ):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")


SCALES: dict[str, Scale] = {
    "paper": Scale(
        name="paper",
        n_graphs=100,
        n_realizations=1000,
        n_tasks=100,
        ga_max_iterations=1000,
        ga_stagnation=100,
    ),
    "medium": Scale(
        name="medium",
        n_graphs=10,
        n_realizations=300,
        n_tasks=60,
        ga_max_iterations=300,
        ga_stagnation=60,
    ),
    "smoke": Scale(
        name="smoke",
        n_graphs=3,
        n_realizations=120,
        n_tasks=30,
        ga_max_iterations=80,
        ga_stagnation=40,
    ),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a driver needs besides its figure-specific sweep axis.

    Attributes
    ----------
    scale:
        A :class:`Scale` or the name of a preset.
    m:
        Processor count (the paper states it only for the Fig. 1 example;
        4 there, 4 here).
    dag:
        Graph-generator parameters; ``n`` is overridden by the scale.
    etc:
        BCET generator parameters (``V_task = V_mach = 0.5``).
    seed:
        Root seed; instances, GA runs and Monte-Carlo draws all derive
        independent child streams from it.
    r1_cap:
        Finite stand-in for infinite robustness values when aggregating
        log-ratios across instances (a schedule that never misses has
        ``R = inf``; rare but possible at small scales).
    """

    scale: Scale = SCALES["medium"]
    m: int = 4
    dag: DagParams = field(default_factory=DagParams)
    etc: EtcParams = field(default_factory=EtcParams)
    seed: int = 20060925  # CLUSTER 2006 conference date
    r1_cap: float = 1e6

    def __post_init__(self) -> None:
        if isinstance(self.scale, str):
            try:
                object.__setattr__(self, "scale", SCALES[self.scale])
            except KeyError:
                raise ValueError(
                    f"unknown scale {self.scale!r}; choose from {sorted(SCALES)}"
                ) from None
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.r1_cap <= 0:
            raise ValueError("r1_cap must be positive")
        # The scale dictates the graph size.
        if self.dag.n != self.scale.n_tasks:
            object.__setattr__(self, "dag", replace(self.dag, n=self.scale.n_tasks))

    def uncertainty(self, mean_ul: float) -> UncertaintyParams:
        """Paper's UL-generation parameters at a given mean level."""
        return UncertaintyParams(mean_ul=mean_ul, v1=0.5, v2=0.5)

    def ga_params(self, *, seed_heft: bool = True):
        """Paper's GA hyper-parameters under this scale."""
        from repro.ga.engine import GAParams

        return GAParams(
            population_size=20,
            crossover_prob=0.9,
            mutation_prob=0.1,
            max_iterations=self.scale.ga_max_iterations,
            stagnation_limit=self.scale.ga_stagnation,
            seed_heft=seed_heft,
        )
