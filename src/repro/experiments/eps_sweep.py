"""Figs. 5 & 6: robustness improvement as the ε budget is relaxed.

For ε in [1.2, 2.0] the paper plots, per uncertainty level, the
improvement of R1 (Fig. 5) and R2 (Fig. 6) over the ε = 1.0 run:
``log(R(ε) / R(1.0))`` averaged over instances.  Expected shapes:
improvement grows with ε; at low UL it saturates early (little
uncertainty left to absorb), at high UL it keeps climbing; R2's curves
are less spread across UL than R1's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import PAPER_ULS, ExperimentConfig
from repro.experiments.runner import EpsGridResults, capped, run_eps_grid
from repro.utils.tables import format_series

__all__ = ["EpsSweepResult", "run_eps_sweep", "PAPER_EPSILONS"]

#: ε grid of Figs. 5–8 (1.0 is the reference run).
PAPER_EPSILONS: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


@dataclass(frozen=True)
class EpsSweepResult:
    """R1/R2 improvement over ε = 1.0, indexed ``[ul][eps]``."""

    uls: tuple[float, ...]
    epsilons: tuple[float, ...]  # the swept values, excluding the 1.0 reference
    r1_improvement: dict[float, np.ndarray]
    r2_improvement: dict[float, np.ndarray]
    grid: EpsGridResults

    def to_table(self, which: str = "r1") -> str:
        """Render Fig. 5 (``which='r1'``) or Fig. 6 (``'r2'``)."""
        if which not in ("r1", "r2"):
            raise ValueError(f"which must be 'r1' or 'r2', got {which!r}")
        data = self.r1_improvement if which == "r1" else self.r2_improvement
        series = {f"UL={ul:g}": data[ul] for ul in self.uls}
        fig = "5" if which == "r1" else "6"
        return format_series(
            "eps",
            list(self.epsilons),
            series,
            title=f"Fig. {fig} — {which.upper()} improvement over eps = 1.0 (log ratio)",
        )


def run_eps_sweep(
    config: ExperimentConfig,
    uls: tuple[float, ...] = PAPER_ULS,
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    *,
    grid: EpsGridResults | None = None,
    n_jobs: int = 1,
    progress=None,
    checkpoint=None,
    resume: bool = False,
    metrics_path=None,
) -> EpsSweepResult:
    """Run the Figs. 5/6 experiment.

    Parameters
    ----------
    grid:
        Optionally reuse a precomputed :func:`run_eps_grid` result covering
        these ULs and ε values (Figs. 7/8 share the same grid).
    """
    epsilons = tuple(float(e) for e in epsilons)
    if 1.0 not in epsilons:
        epsilons = (1.0, *epsilons)
    if grid is None:
        grid = run_eps_grid(
            config,
            uls,
            epsilons,
            n_jobs=n_jobs,
            progress=progress,
            checkpoint=checkpoint,
            resume=resume,
            metrics_path=metrics_path,
        )

    swept = tuple(e for e in epsilons if e != 1.0)
    r1_improvement: dict[float, np.ndarray] = {}
    r2_improvement: dict[float, np.ndarray] = {}
    cap = config.r1_cap
    for ul in uls:
        ref = {o.instance: o for o in grid.outcomes(ul, 1.0)}
        r1_row, r2_row = [], []
        for eps in swept:
            vals1, vals2 = [], []
            for o in grid.outcomes(ul, eps):
                base = ref[o.instance]
                vals1.append(
                    np.log(capped(o.ga.r1, cap) / capped(base.ga.r1, cap))
                )
                vals2.append(
                    np.log(capped(o.ga.r2, cap) / capped(base.ga.r2, cap))
                )
            r1_row.append(float(np.mean(vals1)))
            r2_row.append(float(np.mean(vals2)))
        r1_improvement[ul] = np.asarray(r1_row)
        r2_improvement[ul] = np.asarray(r2_row)

    return EpsSweepResult(
        uls=tuple(float(u) for u in uls),
        epsilons=swept,
        r1_improvement=r1_improvement,
        r2_improvement=r2_improvement,
        grid=grid,
    )
