"""Stream-grid experiment: shedding policies × offered loads.

The streaming question is aggregate, not per-DAG: as a continuous
arrival stream pushes the shared platform past its capacity, which
shedding policy preserves the most *system-wide* on-time completion?
Per grid cell this runs one full streamed execution
(:func:`repro.stream.scheduler.run_stream`) of the same job pool —
workloads at different loads contain identical jobs at different
arrival densities, so the curves isolate contention — under one policy,
and reports the miss-rate/goodput-vs-load curves the two Salehi-lab
papers use as their headline figures.

Execution fans one :class:`~repro.cluster.TaskSpec` per (load, policy)
cell through :mod:`repro.cluster`; every random stream derives from the
workload seed alone (spawn-key role 8 namespaces the cluster
bookkeeping), so results — including each cell's exact drop set — are
bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster import ClusterConfig, Scheduler, TaskFailure, TaskSpec
from repro.stream.policies import POLICY_NAMES, make_policy
from repro.stream.scheduler import StreamResult, run_stream
from repro.stream.workload import StreamParams, build_workload
from repro.utils.tables import format_table

__all__ = ["DEFAULT_LOADS", "StreamGridResults", "run_stream_grid"]

#: Load sweep of the headline curves: nominal capacity up to 2x
#: oversubscription (the acceptance band is >= 1.5x).
DEFAULT_LOADS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0)


def _run_cell(params: StreamParams, load: float, policy: str) -> StreamResult:
    """One grid cell: the stream at *load* under *policy*.

    The workload is rebuilt inside the cell (fully determined by
    ``params``/*load*), so a cell is self-contained and bit-identical
    whether it runs in-process or in a cluster worker.
    """
    workload = build_workload(replace(params, load=load))
    return run_stream(workload, make_policy(policy))


@dataclass(frozen=True)
class StreamGridResults:
    """All cells of one policy × load sweep."""

    params: StreamParams
    loads: tuple[float, ...]
    policies: tuple[str, ...]
    results: dict[tuple[float, str], StreamResult]

    def cell(self, load: float, policy: str) -> StreamResult:
        """The stream result of one (load, policy) cell."""
        return self.results[(float(load), policy)]

    def curves(self) -> dict[str, list[tuple[float, float, float]]]:
        """Per policy: ``(load, miss_rate, goodput)`` points, load-sorted.

        These are the paper-style miss-rate/goodput-vs-load curves; the
        acceptance test checks that both shedding policies sit above the
        no-shedding baseline on on-time completion at load >= 1.5.
        """
        return {
            policy: [
                (
                    load,
                    self.cell(load, policy).miss_rate,
                    self.cell(load, policy).goodput,
                )
                for load in self.loads
            ]
            for policy in self.policies
        }

    def to_table(self) -> str:
        """One row per (load, policy) cell."""
        rows = []
        for load in self.loads:
            for policy in self.policies:
                r = self.cell(load, policy)
                rows.append([
                    f"{load:g}",
                    policy,
                    r.on_time_rate,
                    r.miss_rate,
                    r.goodput,
                    r.utilization,
                    r.n_late,
                    r.n_dropped,
                    r.n_rejected,
                ])
        return format_table(
            ["load", "policy", "on-time", "miss", "goodput", "util",
             "late", "drop", "rej"],
            rows,
            title=(
                f"stream grid  ({self.params.n_jobs} jobs x "
                f"{self.params.tasks} tasks, m={self.params.m}, "
                f"{self.params.arrival}, seed={self.params.seed})"
            ),
        )


def run_stream_grid(
    params: StreamParams,
    *,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    policies: tuple[str, ...] = POLICY_NAMES,
    n_jobs: int = 1,
    progress=None,
) -> StreamGridResults:
    """Run every (load, policy) cell of the stream grid.

    Parameters
    ----------
    params:
        Workload shape (job pool, platform, arrival process, seed); the
        ``load`` field is overridden per cell.
    loads:
        Offered-load sweep (see :data:`DEFAULT_LOADS`).
    policies:
        Shedding-policy names (see
        :data:`repro.stream.policies.POLICY_NAMES`).
    n_jobs:
        Worker processes (1 = in-process); results are bit-identical
        for any value.
    progress:
        Optional ``progress(msg)`` callable.
    """
    loads = tuple(float(x) for x in loads)
    policies = tuple(str(p) for p in policies)
    if not loads:
        raise ValueError("need at least one load level")
    if any(x <= 0.0 for x in loads):
        raise ValueError(f"loads must be positive, got {loads}")
    if not policies:
        raise ValueError("need at least one policy")
    for policy in policies:
        if policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICY_NAMES}"
            )
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")

    specs = [
        TaskSpec(
            key=f"stream/load={load:g}/policy={policy}",
            fn=_run_cell,
            args=(params, load, policy),
            seed=(params.seed, 8, li, pi),
            max_retries=2,
        )
        for li, load in enumerate(loads)
        for pi, policy in enumerate(policies)
    ]

    done = 0

    def _on_done(spec: TaskSpec, outcome) -> None:
        nonlocal done
        done += 1
        if progress is not None and outcome.ok:
            progress(f"stream grid: {done}/{len(specs)} cells done")

    scheduler = Scheduler(
        ClusterConfig(n_workers=n_jobs if n_jobs > 1 else 0),
        on_done=_on_done,
    )
    raw = scheduler.run(specs)
    failures = [o for o in raw.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)

    results = {
        (load, policy): raw[f"stream/load={load:g}/policy={policy}"].result
        for load in loads
        for policy in policies
    }
    return StreamGridResults(
        params=params, loads=loads, policies=policies, results=results
    )
