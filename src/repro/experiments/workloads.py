"""Workload factory: reproducible pools of random problem instances.

Every experiment draws its instance pool through :func:`make_problems` so
that (a) the same ``(config, mean_ul)`` always yields the same instances
and (b) different uncertainty levels share the *same* graphs and BCET
matrices, isolating the effect of UL — the graph/BCET streams are derived
from the config seed only, while the UL stream additionally folds in the
level.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.experiments.config import ExperimentConfig
from repro.graph.generator import random_dag
from repro.platform.etc import generate_etc
from repro.platform.platform import Platform
from repro.platform.uncertainty import UncertaintyModel, generate_ul

__all__ = ["make_problem", "make_problems"]


def make_problem(
    config: ExperimentConfig, mean_ul: float, index: int
) -> SchedulingProblem:
    """Build instance *index* of the pool for one uncertainty level.

    Graph ``index`` and its BCET matrix are identical across different
    *mean_ul* values; only the UL matrix differs.  Each random stream is
    derived from the config seed plus a role/index spawn key, so single
    instances can be rebuilt independently (e.g. inside worker processes).
    """
    if mean_ul < 1.0:
        raise ValueError(f"mean_ul must be >= 1, got {mean_ul}")
    if not (0 <= index < config.scale.n_graphs):
        raise ValueError(
            f"index must be in [0, {config.scale.n_graphs}), got {index}"
        )
    graph_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(0, index))
    )
    etc_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(1, index))
    )
    # UL stream folds the level into the key (scaled to dodge float
    # collisions between e.g. 2.0 and 20.0 at different spawn depths).
    ul_key = int(round(mean_ul * 1000))
    ul_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(2, index, ul_key))
    )

    graph = random_dag(config.dag, graph_rng, name=f"inst{index}")
    bcet = generate_etc(graph.n, config.m, config.etc, etc_rng)
    ul = generate_ul(graph.n, config.m, config.uncertainty(mean_ul), ul_rng)
    return SchedulingProblem(
        graph=graph,
        platform=Platform(config.m),
        uncertainty=UncertaintyModel(bcet, ul),
        name=f"{config.scale.name}-UL{mean_ul:g}-inst{index}",
    )


def make_problems(
    config: ExperimentConfig, mean_ul: float
) -> list[SchedulingProblem]:
    """Build the full instance pool (``config.scale.n_graphs`` problems)."""
    return [
        make_problem(config, mean_ul, i) for i in range(config.scale.n_graphs)
    ]
