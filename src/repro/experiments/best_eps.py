"""Figs. 7 & 8: the best ε for overall performance as a function of r.

For each user weight ``r`` and uncertainty level, the paper reports the ε
(searched over [1.0, 2.0]) maximizing the mean overall performance
``P(s) = r log(M_HEFT/M) + (1-r) log(R/R_HEFT)`` (Eqn. 9), with R = R1
(Fig. 7) or R2 (Fig. 8).  Expected shapes: best ε decreases as r grows
(makespan emphasis forbids slack-buying) and increases with UL (more
uncertainty justifies a bigger makespan budget).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import PAPER_ULS, ExperimentConfig
from repro.experiments.eps_sweep import PAPER_EPSILONS
from repro.experiments.runner import EpsGridResults, capped, run_eps_grid
from repro.robustness.performance import overall_performance
from repro.utils.tables import format_series

__all__ = ["BestEpsResult", "run_best_eps", "DEFAULT_R_GRID"]

#: The r-axis of Figs. 7/8.
DEFAULT_R_GRID: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class BestEpsResult:
    """Best ε per (r, UL) for both robustness definitions."""

    r_grid: tuple[float, ...]
    uls: tuple[float, ...]
    epsilons: tuple[float, ...]
    best_eps_r1: dict[float, np.ndarray]  # ul -> eps per r
    best_eps_r2: dict[float, np.ndarray]
    mean_performance_r1: dict[tuple[float, float], np.ndarray]  # (ul, r) -> per-eps
    mean_performance_r2: dict[tuple[float, float], np.ndarray]
    grid: EpsGridResults

    def to_table(self, which: str = "r1") -> str:
        """Render Fig. 7 (``which='r1'``) or Fig. 8 (``'r2'``)."""
        if which not in ("r1", "r2"):
            raise ValueError(f"which must be 'r1' or 'r2', got {which!r}")
        data = self.best_eps_r1 if which == "r1" else self.best_eps_r2
        series = {f"UL={ul:g}": data[ul] for ul in self.uls}
        fig = "7" if which == "r1" else "8"
        return format_series(
            "r",
            list(self.r_grid),
            series,
            title=f"Fig. {fig} — best eps for overall performance ({which.upper()})",
        )


def run_best_eps(
    config: ExperimentConfig,
    uls: tuple[float, ...] = PAPER_ULS,
    epsilons: tuple[float, ...] = PAPER_EPSILONS,
    r_grid: tuple[float, ...] = DEFAULT_R_GRID,
    *,
    grid: EpsGridResults | None = None,
    n_jobs: int = 1,
    progress=None,
    checkpoint=None,
    resume: bool = False,
    metrics_path=None,
) -> BestEpsResult:
    """Run the Figs. 7/8 experiment (reusing a Figs. 5/6 grid if given)."""
    epsilons = tuple(float(e) for e in epsilons)
    if 1.0 not in epsilons:
        epsilons = (1.0, *epsilons)
    if grid is None:
        grid = run_eps_grid(
            config,
            uls,
            epsilons,
            n_jobs=n_jobs,
            progress=progress,
            checkpoint=checkpoint,
            resume=resume,
            metrics_path=metrics_path,
        )

    cap = config.r1_cap
    uls = tuple(float(u) for u in uls)
    r_grid = tuple(float(r) for r in r_grid)

    best_r1: dict[float, np.ndarray] = {}
    best_r2: dict[float, np.ndarray] = {}
    perf_r1: dict[tuple[float, float], np.ndarray] = {}
    perf_r2: dict[tuple[float, float], np.ndarray] = {}

    for ul in uls:
        picks1, picks2 = [], []
        for r in r_grid:
            means1, means2 = [], []
            for eps in epsilons:
                vals1, vals2 = [], []
                for o in grid.outcomes(ul, eps):
                    vals1.append(
                        overall_performance(
                            o.ga.mean_makespan,
                            capped(o.ga.r1, cap),
                            o.heft.mean_makespan,
                            capped(o.heft.r1, cap),
                            r,
                        )
                    )
                    vals2.append(
                        overall_performance(
                            o.ga.mean_makespan,
                            capped(o.ga.r2, cap),
                            o.heft.mean_makespan,
                            capped(o.heft.r2, cap),
                            r,
                        )
                    )
                means1.append(float(np.mean(vals1)))
                means2.append(float(np.mean(vals2)))
            perf_r1[(ul, r)] = np.asarray(means1)
            perf_r2[(ul, r)] = np.asarray(means2)
            picks1.append(epsilons[int(np.argmax(means1))])
            picks2.append(epsilons[int(np.argmax(means2))])
        best_r1[ul] = np.asarray(picks1)
        best_r2[ul] = np.asarray(picks2)

    return BestEpsResult(
        r_grid=r_grid,
        uls=uls,
        epsilons=epsilons,
        best_eps_r1=best_r1,
        best_eps_r2=best_r2,
        mean_performance_r1=perf_r1,
        mean_performance_r2=perf_r2,
        grid=grid,
    )
