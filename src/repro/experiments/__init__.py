"""Experiment drivers reproducing every figure of the paper (Sec. 5).

Each driver returns a structured result object with a ``to_table()``
renderer; the benchmark harness calls these and asserts the qualitative
shapes the paper reports.

==================  ==========================================
Figure              Driver
==================  ==========================================
Fig. 2              :func:`~repro.experiments.slack_effect.run_slack_effect`
                    (``objective="makespan"``)
Fig. 3              :func:`~repro.experiments.slack_effect.run_slack_effect`
                    (``objective="slack"``)
Fig. 4              :func:`~repro.experiments.eps_one.run_eps_one`
Figs. 5/6           :func:`~repro.experiments.eps_sweep.run_eps_sweep`
Figs. 7/8           :func:`~repro.experiments.best_eps.run_best_eps`
==================  ==========================================
"""

from repro.experiments.algo_grid import AlgoGridResults, run_algo_grid
from repro.experiments.best_eps import BestEpsResult, run_best_eps
from repro.experiments.config import SCALES, ExperimentConfig, Scale
from repro.experiments.eps_one import EpsOneResult, run_eps_one
from repro.experiments.energy_grid import EnergyGridResults, run_energy_grid
from repro.experiments.eps_sweep import EpsSweepResult, run_eps_sweep
from repro.experiments.fault_grid import FaultGridResults, run_fault_grid
from repro.experiments.runner import EpsGridResults, run_eps_grid
from repro.experiments.sensitivity import SensitivityResult, run_sensitivity
from repro.experiments.slack_effect import SlackEffectResult, run_slack_effect
from repro.experiments.stream_grid import StreamGridResults, run_stream_grid
from repro.experiments.workloads import make_problem, make_problems
from repro.experiments.zoo import ZooResult, run_zoo

__all__ = [
    "Scale",
    "SCALES",
    "ExperimentConfig",
    "make_problems",
    "run_eps_grid",
    "EpsGridResults",
    "run_slack_effect",
    "SlackEffectResult",
    "run_eps_one",
    "EpsOneResult",
    "run_eps_sweep",
    "EpsSweepResult",
    "run_best_eps",
    "BestEpsResult",
    "run_sensitivity",
    "SensitivityResult",
    "make_problem",
    "run_fault_grid",
    "FaultGridResults",
    "run_energy_grid",
    "EnergyGridResults",
    "run_stream_grid",
    "StreamGridResults",
    "run_zoo",
    "ZooResult",
    "run_algo_grid",
    "AlgoGridResults",
]
