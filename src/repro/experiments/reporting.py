"""Result export: CSV writers for every experiment result type.

The ASCII tables are for humans; these writers produce machine-readable
CSV for plotting pipelines (one row per data point, long format).
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.experiments.best_eps import BestEpsResult
    from repro.experiments.eps_one import EpsOneResult
    from repro.experiments.eps_sweep import EpsSweepResult
    from repro.experiments.runner import EpsGridResults
    from repro.experiments.sensitivity import SensitivityResult
    from repro.experiments.slack_effect import SlackEffectResult

__all__ = [
    "slack_effect_csv",
    "eps_one_csv",
    "eps_sweep_csv",
    "best_eps_csv",
    "grid_csv",
    "sensitivity_csv",
    "write_csv",
]


def _render(header: list[str], rows: list[list]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    writer.writerows(rows)
    return buf.getvalue()


def slack_effect_csv(result: "SlackEffectResult") -> str:
    """Long-format CSV of a Figs. 2/3 result: objective, ul, step, metric, value."""
    rows = []
    for series in result.series:
        for k, step in enumerate(series.steps):
            for metric, arr in (
                ("makespan", series.makespan),
                ("slack", series.slack),
                ("r1", series.r1),
            ):
                rows.append(
                    [result.objective, series.mean_ul, int(step), metric, float(arr[k])]
                )
    return _render(["objective", "ul", "step", "metric", "log_ratio"], rows)


def eps_one_csv(result: "EpsOneResult") -> str:
    """CSV of the Fig. 4 result: ul, metric, mean log improvement."""
    rows = []
    for i, ul in enumerate(result.uls):
        rows.append([ul, "makespan", float(result.makespan[i])])
        rows.append([ul, "r1", float(result.r1[i])])
        rows.append([ul, "r2", float(result.r2[i])])
    return _render(["ul", "metric", "log_improvement"], rows)


def eps_sweep_csv(result: "EpsSweepResult") -> str:
    """CSV of the Figs. 5/6 result: ul, eps, metric, improvement over eps=1."""
    rows = []
    for ul in result.uls:
        for j, eps in enumerate(result.epsilons):
            rows.append([ul, eps, "r1", float(result.r1_improvement[ul][j])])
            rows.append([ul, eps, "r2", float(result.r2_improvement[ul][j])])
    return _render(["ul", "eps", "metric", "log_improvement"], rows)


def best_eps_csv(result: "BestEpsResult") -> str:
    """CSV of the Figs. 7/8 result: ul, r, robustness definition, best eps."""
    rows = []
    for ul in result.uls:
        for k, r in enumerate(result.r_grid):
            rows.append([ul, r, "r1", float(result.best_eps_r1[ul][k])])
            rows.append([ul, r, "r2", float(result.best_eps_r2[ul][k])])
    return _render(["ul", "r", "robustness", "best_eps"], rows)


def grid_csv(grid: "EpsGridResults") -> str:
    """Raw per-cell CSV: every (ul, eps, instance) outcome's key metrics."""
    rows = []
    for (ul, eps), outcomes in sorted(grid.cells.items()):
        for o in outcomes:
            rows.append(
                [
                    ul,
                    eps,
                    o.instance,
                    o.ga.expected_makespan,
                    o.ga.mean_makespan,
                    o.ga.avg_slack,
                    o.ga.mean_tardiness,
                    o.ga.miss_rate,
                    o.heft.expected_makespan,
                    o.heft.mean_makespan,
                    o.heft.avg_slack,
                    o.heft.mean_tardiness,
                    o.heft.miss_rate,
                ]
            )
    return _render(
        [
            "ul",
            "eps",
            "instance",
            "ga_m0",
            "ga_mean_makespan",
            "ga_slack",
            "ga_tardiness",
            "ga_miss_rate",
            "heft_m0",
            "heft_mean_makespan",
            "heft_slack",
            "heft_tardiness",
            "heft_miss_rate",
        ],
        rows,
    )


def sensitivity_csv(result: "SensitivityResult") -> str:
    """CSV of a sensitivity sweep: parameter value, metric, gain."""
    rows = []
    for i, value in enumerate(result.values):
        rows.append([result.parameter, value, "makespan", float(result.makespan_gain[i])])
        rows.append([result.parameter, value, "r1", float(result.r1_gain[i])])
        rows.append([result.parameter, value, "r2", float(result.r2_gain[i])])
    return _render(["parameter", "value", "metric", "log_gain"], rows)


def write_csv(text: str, path: str | pathlib.Path) -> None:
    """Write CSV *text* (from any writer above) to *path*."""
    pathlib.Path(path).write_text(text)
