"""Parameter-sensitivity study (extension; not a paper figure).

The paper fixes the instance parameters at ``n = 100, alpha = 1.0,
cc = 20, CCR = 0.1`` and 4 processors.  This driver sweeps one generator
parameter at a time — CCR, the shape parameter alpha, or the processor
count — and reports how the ε = 1.0 robustness gain over HEFT responds,
answering "does the paper's conclusion survive away from its corner of
the parameter space?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.core.robust import RobustScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import capped
from repro.experiments.workloads import make_problem
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import assess_robustness
from repro.utils.tables import format_series

__all__ = ["SensitivityResult", "run_sensitivity"]

_SWEEPABLE = ("ccr", "alpha", "m")


@dataclass(frozen=True)
class SensitivityResult:
    """Robustness/makespan gains of the ε = 1.0 GA along one parameter axis."""

    parameter: str
    values: tuple[float, ...]
    r1_gain: np.ndarray
    r2_gain: np.ndarray
    makespan_gain: np.ndarray

    def to_table(self) -> str:
        """Render the sweep as an ASCII table."""
        return format_series(
            self.parameter,
            list(self.values),
            {
                "makespan": self.makespan_gain,
                "R1": self.r1_gain,
                "R2": self.r2_gain,
            },
            title=(
                "Sensitivity — mean log-improvement of the eps=1.0 GA over "
                f"HEFT vs {self.parameter}"
            ),
        )


def _configure(config: ExperimentConfig, parameter: str, value: float) -> ExperimentConfig:
    if parameter == "ccr":
        return replace(config, dag=replace(config.dag, ccr=float(value)))
    if parameter == "alpha":
        return replace(config, dag=replace(config.dag, alpha=float(value)))
    if parameter == "m":
        return replace(config, m=int(value))
    raise ValueError(f"parameter must be one of {_SWEEPABLE}, got {parameter!r}")


def run_sensitivity(
    config: ExperimentConfig,
    parameter: str,
    values: tuple[float, ...],
    mean_ul: float = 4.0,
    *,
    progress=None,
) -> SensitivityResult:
    """Sweep *parameter* over *values* at a fixed uncertainty level.

    Parameters
    ----------
    parameter:
        ``"ccr"``, ``"alpha"`` or ``"m"``.
    values:
        Axis values (processor counts are truncated to int).
    mean_ul:
        The uncertainty level held fixed during the sweep.
    """
    if parameter not in _SWEEPABLE:
        raise ValueError(f"parameter must be one of {_SWEEPABLE}, got {parameter!r}")
    if not values:
        raise ValueError("values must be non-empty")
    n_real = config.scale.n_realizations
    cap = config.r1_cap

    r1_rows, r2_rows, mk_rows = [], [], []
    for value in values:
        cfg = _configure(config, parameter, value)
        gains_r1, gains_r2, gains_mk = [], [], []
        for i in range(cfg.scale.n_graphs):
            problem = make_problem(cfg, mean_ul, i)
            heft = HeftScheduler().schedule(problem)
            heft_rep = assess_robustness(
                heft,
                n_real,
                np.random.default_rng(
                    np.random.SeedSequence(entropy=cfg.seed, spawn_key=(8, i))
                ),
            )
            ga = RobustScheduler(
                epsilon=1.0,
                params=cfg.ga_params(),
                rng=np.random.default_rng(
                    np.random.SeedSequence(entropy=cfg.seed, spawn_key=(9, i))
                ),
            ).solve(problem)
            ga_rep = assess_robustness(
                ga.schedule,
                n_real,
                np.random.default_rng(
                    np.random.SeedSequence(entropy=cfg.seed, spawn_key=(10, i))
                ),
            )
            gains_r1.append(
                math.log(capped(ga_rep.r1, cap) / capped(heft_rep.r1, cap))
            )
            gains_r2.append(
                math.log(capped(ga_rep.r2, cap) / capped(heft_rep.r2, cap))
            )
            gains_mk.append(
                math.log(heft_rep.mean_makespan / ga_rep.mean_makespan)
            )
        r1_rows.append(float(np.mean(gains_r1)))
        r2_rows.append(float(np.mean(gains_r2)))
        mk_rows.append(float(np.mean(gains_mk)))
        if progress is not None:
            progress(f"{parameter}={value:g} done")

    return SensitivityResult(
        parameter=parameter,
        values=tuple(float(v) for v in values),
        r1_gain=np.asarray(r1_rows),
        r2_gain=np.asarray(r2_rows),
        makespan_gain=np.asarray(mk_rows),
    )
