"""Shared runner: HEFT baselines + ε-constraint GA solves over a grid.

Figures 4–8 all consume the same raw data — per (uncertainty level,
ε value, instance): a Monte-Carlo robustness report of the GA schedule and
of the instance's HEFT schedule.  :func:`run_eps_grid` collects it once;
the per-figure drivers reduce it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.robust import RobustScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import make_problems
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import RobustnessReport, assess_robustness

__all__ = ["InstanceOutcome", "EpsGridResults", "run_eps_grid", "capped"]


def capped(value: float, cap: float) -> float:
    """Replace an infinite robustness value by a large finite cap."""
    return min(value, cap) if math.isfinite(cap) else value


@dataclass(frozen=True)
class InstanceOutcome:
    """One (instance, ε) cell: the GA schedule's report plus the baseline's."""

    instance: int
    epsilon: float
    mean_ul: float
    ga: RobustnessReport
    heft: RobustnessReport


@dataclass(frozen=True)
class EpsGridResults:
    """All raw outcomes of one grid run, indexed ``cells[(mean_ul, epsilon)]``."""

    config: ExperimentConfig
    uls: tuple[float, ...]
    epsilons: tuple[float, ...]
    cells: dict[tuple[float, float], list[InstanceOutcome]]

    def outcomes(self, mean_ul: float, epsilon: float) -> list[InstanceOutcome]:
        """The per-instance outcomes of one grid cell."""
        return self.cells[(mean_ul, epsilon)]

    def mean_log_ratio(
        self,
        mean_ul: float,
        epsilon: float,
        metric,
        reference,
    ) -> float:
        """Average of ``log(metric(outcome) / reference(outcome))`` over instances.

        *metric* / *reference* are callables on :class:`InstanceOutcome`.
        """
        cap = self.config.r1_cap
        values = [
            math.log(
                capped(metric(o), cap) / capped(reference(o), cap)
            )
            for o in self.outcomes(mean_ul, epsilon)
        ]
        return float(np.mean(values))


def _instance_outcomes(
    config: ExperimentConfig,
    ul: float,
    index: int,
    epsilons: tuple[float, ...],
) -> list[InstanceOutcome]:
    """All ε-cells for one (UL, instance) pair.

    Per instance, HEFT is scheduled once and its Monte-Carlo report reused
    across all ε cells, with all random streams derived deterministically
    from the config seed — results are identical whether instances run
    serially or in worker processes.
    """
    from repro.experiments.workloads import make_problem

    problem = make_problem(config, ul, index)
    n_real = config.scale.n_realizations
    mc_key = int(round(ul * 1000))

    heft_schedule = HeftScheduler().schedule(problem)
    heft_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(3, index, mc_key))
    )
    heft_report = assess_robustness(heft_schedule, n_real, heft_rng)

    outcomes: list[InstanceOutcome] = []
    for j, eps in enumerate(epsilons):
        ga_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=config.seed, spawn_key=(4, index, mc_key, j)
            )
        )
        result = RobustScheduler(
            epsilon=eps, params=config.ga_params(), rng=ga_rng
        ).solve(problem)
        mc_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=config.seed, spawn_key=(5, index, mc_key, j)
            )
        )
        report = assess_robustness(result.schedule, n_real, mc_rng)
        outcomes.append(
            InstanceOutcome(
                instance=index,
                epsilon=eps,
                mean_ul=ul,
                ga=report,
                heft=heft_report,
            )
        )
    return outcomes


def _grid_worker(payload) -> tuple[float, int, list[InstanceOutcome]]:
    """Module-level worker (picklable) for process-pool execution."""
    config, ul, index, epsilons = payload
    return ul, index, _instance_outcomes(config, ul, index, epsilons)


def run_eps_grid(
    config: ExperimentConfig,
    uls: tuple[float, ...],
    epsilons: tuple[float, ...],
    *,
    n_jobs: int = 1,
    progress=None,
) -> EpsGridResults:
    """Run the ε-constraint GA over every (UL, ε, instance) combination.

    Parameters
    ----------
    config:
        Scale, instance-generation and seeding configuration.
    uls:
        Mean uncertainty levels (paper: 2, 4, 6, 8).
    epsilons:
        ε values (paper: {1.0} for Fig. 4, 1.0–2.0 for Figs. 5–8).
    n_jobs:
        Number of worker processes; 1 (default) runs in-process.  Every
        random stream derives from the config seed, so results are
        bit-identical for any ``n_jobs``.
    progress:
        Optional callable ``progress(msg: str)`` for long runs.
    """
    uls = tuple(float(u) for u in uls)
    epsilons = tuple(float(e) for e in epsilons)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    cells: dict[tuple[float, float], list[InstanceOutcome]] = {
        (u, e): [] for u in uls for e in epsilons
    }
    n_graphs = config.scale.n_graphs
    work = [(config, ul, i, epsilons) for ul in uls for i in range(n_graphs)]

    if n_jobs == 1:
        results = map(_grid_worker, work)
    else:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=n_jobs)
        results = pool.map(_grid_worker, work)

    done = 0
    for ul, index, outcomes in results:
        for o in outcomes:
            cells[(ul, o.epsilon)].append(o)
        done += 1
        if progress is not None:
            progress(f"UL={ul:g}: instance {index + 1}/{n_graphs} done "
                     f"({done}/{len(work)} cells)")
    if n_jobs > 1:
        pool.shutdown()

    # Workers may complete out of order; restore instance order per cell.
    for outcomes in cells.values():
        outcomes.sort(key=lambda o: o.instance)
    return EpsGridResults(config=config, uls=uls, epsilons=epsilons, cells=cells)
