"""Shared runner: HEFT baselines + ε-constraint GA solves over a grid.

Figures 4–8 all consume the same raw data — per (uncertainty level,
ε value, instance): a Monte-Carlo robustness report of the GA schedule and
of the instance's HEFT schedule.  :func:`run_eps_grid` collects it once;
the per-figure drivers reduce it.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cluster import Checkpoint, Scheduler, ClusterConfig, TaskFailure, TaskSpec
from repro.core.robust import RobustScheduler
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import make_problems
from repro.heuristics.heft import HeftScheduler
from repro.robustness.montecarlo import RobustnessReport, assess_robustness

__all__ = ["InstanceOutcome", "EpsGridResults", "run_eps_grid", "capped"]


def capped(value: float, cap: float) -> float:
    """Replace an infinite robustness value by a large finite cap."""
    return min(value, cap) if math.isfinite(cap) else value


@dataclass(frozen=True)
class InstanceOutcome:
    """One (instance, ε) cell: the GA schedule's report plus the baseline's."""

    instance: int
    epsilon: float
    mean_ul: float
    ga: RobustnessReport
    heft: RobustnessReport


@dataclass(frozen=True)
class EpsGridResults:
    """All raw outcomes of one grid run, indexed ``cells[(mean_ul, epsilon)]``."""

    config: ExperimentConfig
    uls: tuple[float, ...]
    epsilons: tuple[float, ...]
    cells: dict[tuple[float, float], list[InstanceOutcome]]

    def outcomes(self, mean_ul: float, epsilon: float) -> list[InstanceOutcome]:
        """The per-instance outcomes of one grid cell."""
        return self.cells[(mean_ul, epsilon)]

    def mean_log_ratio(
        self,
        mean_ul: float,
        epsilon: float,
        metric,
        reference,
    ) -> float:
        """Average of ``log(metric(outcome) / reference(outcome))`` over instances.

        *metric* / *reference* are callables on :class:`InstanceOutcome`.
        """
        cap = self.config.r1_cap
        values = [
            math.log(
                capped(metric(o), cap) / capped(reference(o), cap)
            )
            for o in self.outcomes(mean_ul, epsilon)
        ]
        return float(np.mean(values))


def _instance_outcomes(
    config: ExperimentConfig,
    ul: float,
    index: int,
    epsilons: tuple[float, ...],
) -> list[InstanceOutcome]:
    """All ε-cells for one (UL, instance) pair.

    Per instance, HEFT is scheduled once and its Monte-Carlo report reused
    across all ε cells, with all random streams derived deterministically
    from the config seed — results are identical whether instances run
    serially or in worker processes.
    """
    from repro.experiments.workloads import make_problem

    problem = make_problem(config, ul, index)
    n_real = config.scale.n_realizations
    mc_key = int(round(ul * 1000))

    heft_schedule = HeftScheduler().schedule(problem)
    heft_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(3, index, mc_key))
    )
    heft_report = assess_robustness(heft_schedule, n_real, heft_rng)

    outcomes: list[InstanceOutcome] = []
    for j, eps in enumerate(epsilons):
        ga_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=config.seed, spawn_key=(4, index, mc_key, j)
            )
        )
        result = RobustScheduler(
            epsilon=eps, params=config.ga_params(), rng=ga_rng
        ).solve(problem)
        mc_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=config.seed, spawn_key=(5, index, mc_key, j)
            )
        )
        report = assess_robustness(result.schedule, n_real, mc_rng)
        outcomes.append(
            InstanceOutcome(
                instance=index,
                epsilon=eps,
                mean_ul=ul,
                ga=report,
                heft=heft_report,
            )
        )
    return outcomes


def _outcome_to_dict(outcome: InstanceOutcome) -> dict[str, Any]:
    """JSON-compatible (bit-exact) encoding of one grid outcome."""
    from repro.io.json_io import report_to_dict

    return {
        "instance": outcome.instance,
        "epsilon": outcome.epsilon,
        "mean_ul": outcome.mean_ul,
        "ga": report_to_dict(outcome.ga),
        "heft": report_to_dict(outcome.heft),
    }


def _outcome_from_dict(payload: dict[str, Any]) -> InstanceOutcome:
    """Invert :func:`_outcome_to_dict` bit-for-bit."""
    from repro.io.json_io import report_from_dict

    return InstanceOutcome(
        instance=int(payload["instance"]),
        epsilon=float(payload["epsilon"]),
        mean_ul=float(payload["mean_ul"]),
        ga=report_from_dict(payload["ga"]),
        heft=report_from_dict(payload["heft"]),
    )


def _encode_cell(outcomes: list[InstanceOutcome]) -> list[dict[str, Any]]:
    return [_outcome_to_dict(o) for o in outcomes]


def _decode_cell(payload: list[dict[str, Any]]) -> list[InstanceOutcome]:
    return [_outcome_from_dict(o) for o in payload]


def _grid_run_id(
    config: ExperimentConfig,
    uls: tuple[float, ...],
    epsilons: tuple[float, ...],
) -> str:
    """Identity of one logical grid run — everything that shapes results."""
    s = config.scale
    return (
        f"eps_grid/seed={config.seed}/scale={s.name}"
        f"/graphs={s.n_graphs}/real={s.n_realizations}/tasks={s.n_tasks}"
        f"/iters={s.ga_max_iterations}/m={config.m}"
        f"/uls={','.join(f'{u:g}' for u in uls)}"
        f"/eps={','.join(f'{e:g}' for e in epsilons)}"
    )


def run_eps_grid(
    config: ExperimentConfig,
    uls: tuple[float, ...],
    epsilons: tuple[float, ...],
    *,
    n_jobs: int = 1,
    progress=None,
    checkpoint: str | pathlib.Path | None = None,
    resume: bool = False,
    metrics_path: str | pathlib.Path | None = None,
) -> EpsGridResults:
    """Run the ε-constraint GA over every (UL, ε, instance) combination.

    Execution goes through :mod:`repro.cluster`: each (UL, instance) pair
    is one task, retried on worker crashes/hangs and journaled to the
    checkpoint as it completes.

    Parameters
    ----------
    config:
        Scale, instance-generation and seeding configuration.
    uls:
        Mean uncertainty levels (paper: 2, 4, 6, 8).
    epsilons:
        ε values (paper: {1.0} for Fig. 4, 1.0–2.0 for Figs. 5–8).
    n_jobs:
        Number of worker processes; 1 (default) runs in-process.  Every
        random stream derives from the config seed, so results are
        bit-identical for any ``n_jobs``.
    progress:
        Optional callable ``progress(msg: str)`` for long runs.
    checkpoint:
        Optional JSONL journal path; finished cells are appended as the
        run progresses.
    resume:
        Restore already-journaled cells from *checkpoint* instead of
        recomputing them (requires *checkpoint*; restored cells are
        bit-identical to recomputed ones).
    metrics_path:
        Optional path to dump the run's cluster metrics as JSON.
    """
    uls = tuple(float(u) for u in uls)
    epsilons = tuple(float(e) for e in epsilons)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    cells: dict[tuple[float, float], list[InstanceOutcome]] = {
        (u, e): [] for u in uls for e in epsilons
    }
    n_graphs = config.scale.n_graphs
    specs = [
        TaskSpec(
            key=f"ul={ul:g}/instance={i}",
            fn=_instance_outcomes,
            args=(config, ul, i, epsilons),
            seed=(config.seed, int(round(ul * 1000)), i),
            max_retries=2,
        )
        for ul in uls
        for i in range(n_graphs)
    ]

    journal = None
    if checkpoint is not None:
        journal = Checkpoint(
            checkpoint,
            run_id=_grid_run_id(config, uls, epsilons),
            encode=_encode_cell,
            decode=_decode_cell,
        )
        if not resume and journal.path.exists():
            journal.path.unlink()  # fresh run: do not mix journals

    done = 0

    def _on_done(spec: TaskSpec, outcome) -> None:
        nonlocal done
        done += 1
        if progress is not None and outcome.ok:
            _, ul, index, _ = spec.args
            suffix = " [restored]" if outcome.from_checkpoint else ""
            progress(
                f"UL={ul:g}: instance {index + 1}/{n_graphs} done "
                f"({done}/{len(specs)} cells){suffix}"
            )

    scheduler = Scheduler(
        ClusterConfig(n_workers=n_jobs if n_jobs > 1 else 0),
        checkpoint=journal,
        on_done=_on_done,
    )
    results = scheduler.run(specs)
    if metrics_path is not None:
        scheduler.metrics.dump(metrics_path)
    failures = [o for o in results.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)

    for spec in specs:
        for o in results[spec.key].result:
            cells[(o.mean_ul, o.epsilon)].append(o)

    # Tasks may have completed out of order; restore instance order per cell.
    for outcomes in cells.values():
        outcomes.sort(key=lambda o: o.instance)
    return EpsGridResults(config=config, uls=uls, epsilons=epsilons, cells=cells)
