"""Figs. 2 & 3: effectiveness of slack — single-objective GA evolution traces.

The paper's first experiment (Sec. 5.1) runs a single-objective GA —
minimizing makespan (Fig. 2) or maximizing slack (Fig. 3) — and plots, at
each evolution step and for each uncertainty level, the *log ratio versus
step 0* of three quantities of the incumbent best schedule:

* mean realized makespan over Monte-Carlo realizations ("the makespan of
  the schedule ... when executed in the 'real' environment");
* average slack (static, expected durations);
* tardiness-based robustness R1.

The expected shapes: minimizing makespan drags slack and R1 down (more so
at low UL, where the GA actually finds shorter schedules); maximizing
slack raises slack and R1 together while realized makespan grows
substantially.

These runs evolve from a purely random initial population (no HEFT seed):
the paper's plotted multi-x dynamics start from random-schedule levels,
which a HEFT-seeded population would hide.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass

import numpy as np

from repro.cluster import Checkpoint, ClusterConfig, Scheduler, TaskFailure, TaskSpec
from repro.experiments.config import PAPER_ULS, ExperimentConfig
from repro.experiments.runner import capped
from repro.experiments.workloads import make_problems
from repro.ga.engine import GeneticScheduler
from repro.ga.fitness import MakespanFitness, SlackFitness
from repro.robustness.montecarlo import assess_robustness
from repro.utils.tables import format_series

__all__ = ["EvolutionSeries", "SlackEffectResult", "run_slack_effect"]


@dataclass(frozen=True)
class EvolutionSeries:
    """One uncertainty level's averaged evolution trace (log ratios vs step 0)."""

    mean_ul: float
    steps: np.ndarray
    makespan: np.ndarray
    slack: np.ndarray
    r1: np.ndarray


@dataclass(frozen=True)
class SlackEffectResult:
    """Everything Fig. 2 (``objective='makespan'``) / Fig. 3 (``'slack'``) plots."""

    objective: str
    series: list[EvolutionSeries]

    def to_table(self) -> str:
        """Render as one ASCII table: rows = steps, columns = UL x metric."""
        steps = self.series[0].steps
        columns: dict[str, np.ndarray] = {}
        for s in self.series:
            columns[f"UL={s.mean_ul:g} M"] = s.makespan
            columns[f"UL={s.mean_ul:g} slack"] = s.slack
            columns[f"UL={s.mean_ul:g} R1"] = s.r1
        title = (
            f"Fig. {'2' if self.objective == 'makespan' else '3'} — GA "
            f"{'minimizing makespan' if self.objective == 'makespan' else 'maximizing slack'}"
            " (log ratio vs step 0)"
        )
        return format_series("step", steps.tolist(), columns, title=title)

    def final(self, mean_ul: float) -> tuple[float, float, float]:
        """Final-step (makespan, slack, r1) log ratios for one UL."""
        for s in self.series:
            if s.mean_ul == mean_ul:
                return float(s.makespan[-1]), float(s.slack[-1]), float(s.r1[-1])
        raise KeyError(f"no series for UL={mean_ul}")


def _log_ratio_floored(value: float, reference: float, floor: float) -> float:
    return math.log(max(value, floor) / max(reference, floor))


def _instance_trace(
    config: ExperimentConfig,
    objective: str,
    ul: float,
    index: int,
    step_grid: np.ndarray,
) -> dict[str, np.ndarray]:
    """One instance's per-step log-ratio traces (makespan, slack, r1)."""
    from repro.experiments.workloads import make_problem

    problem = make_problem(config, ul, index)
    mc_key = int(round(ul * 1000))
    ga_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=config.seed, spawn_key=(6, index, mc_key))
    )
    fitness = MakespanFitness() if objective == "makespan" else SlackFitness()
    engine = GeneticScheduler(fitness, config.ga_params(seed_heft=False), ga_rng)
    result = engine.run(problem)
    chroms = result.history.best_chromosomes

    raw: dict[str, list[float]] = {"makespan": [], "slack": [], "r1": []}
    for k, step in enumerate(step_grid):
        idx = min(int(step), len(chroms) - 1)
        schedule = chroms[idx].decode(problem)
        mc_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=config.seed, spawn_key=(7, index, mc_key, k)
            )
        )
        report = assess_robustness(schedule, config.scale.n_realizations, mc_rng)
        raw["makespan"].append(report.mean_makespan)
        raw["slack"].append(report.avg_slack)
        raw["r1"].append(capped(report.r1, config.r1_cap))

    floor = 1e-9 * raw["makespan"][0]
    return {
        key: np.asarray(
            [_log_ratio_floored(v, values[0], floor) for v in values],
            dtype=np.float64,
        )
        for key, values in raw.items()
    }


def _trace_task(config, objective, ul, index, steps):
    """Module-level task (picklable) for cluster execution."""
    return _instance_trace(
        config, objective, ul, index, np.asarray(steps, dtype=np.int64)
    )


def _encode_trace(trace: dict[str, np.ndarray]) -> dict[str, list[float]]:
    """JSON-compatible (bit-exact) encoding of one instance trace."""
    return {key: arr.tolist() for key, arr in trace.items()}


def _decode_trace(payload: dict[str, list[float]]) -> dict[str, np.ndarray]:
    return {
        key: np.asarray(values, dtype=np.float64)
        for key, values in payload.items()
    }


def _slack_run_id(
    config: ExperimentConfig,
    objective: str,
    uls: tuple[float, ...],
    steps: tuple[int, ...],
) -> str:
    s = config.scale
    return (
        f"slack_effect/{objective}/seed={config.seed}/scale={s.name}"
        f"/graphs={s.n_graphs}/real={s.n_realizations}/tasks={s.n_tasks}"
        f"/iters={s.ga_max_iterations}/m={config.m}"
        f"/uls={','.join(f'{u:g}' for u in uls)}"
        f"/steps={','.join(str(t) for t in steps)}"
    )


def run_slack_effect(
    config: ExperimentConfig,
    objective: str = "makespan",
    uls: tuple[float, ...] = PAPER_ULS,
    *,
    n_steps: int = 11,
    n_jobs: int = 1,
    progress=None,
    checkpoint: str | pathlib.Path | None = None,
    resume: bool = False,
    metrics_path: str | pathlib.Path | None = None,
) -> SlackEffectResult:
    """Run the Fig. 2 / Fig. 3 experiment.

    Execution goes through :mod:`repro.cluster` — one task per
    (UL, instance) evolution trace, with crash retries and optional
    checkpoint/resume exactly as in
    :func:`~repro.experiments.runner.run_eps_grid`.

    Parameters
    ----------
    config:
        Scale and instance configuration.
    objective:
        ``"makespan"`` (Fig. 2) or ``"slack"`` (Fig. 3).
    uls:
        Uncertainty levels (paper: 2, 4, 6, 8).
    n_steps:
        Number of evolution steps sampled (including step 0 and the last).
    n_jobs:
        Worker processes; results are identical for any value (all random
        streams derive from the config seed).
    checkpoint / resume / metrics_path:
        Durable-progress knobs; see :func:`run_eps_grid`.
    """
    if objective not in ("makespan", "slack"):
        raise ValueError(f"objective must be 'makespan' or 'slack', got {objective!r}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")

    scale = config.scale
    step_grid = np.unique(
        np.linspace(0, scale.ga_max_iterations, n_steps).round().astype(np.int64)
    )
    uls = tuple(float(u) for u in uls)
    steps_payload = tuple(int(s) for s in step_grid)
    specs = [
        TaskSpec(
            key=f"{objective}/ul={ul:g}/instance={i}",
            fn=_trace_task,
            args=(config, objective, ul, i, steps_payload),
            seed=(config.seed, 6, int(round(ul * 1000)), i),
            max_retries=2,
        )
        for ul in uls
        for i in range(scale.n_graphs)
    ]

    journal = None
    if checkpoint is not None:
        journal = Checkpoint(
            checkpoint,
            run_id=_slack_run_id(config, objective, uls, steps_payload),
            encode=_encode_trace,
            decode=_decode_trace,
        )
        if not resume and journal.path.exists():
            journal.path.unlink()  # fresh run: do not mix journals

    done = 0

    def _on_done(spec: TaskSpec, outcome) -> None:
        nonlocal done
        done += 1
        if progress is not None and outcome.ok:
            _, _, ul, index, _ = spec.args
            suffix = " [restored]" if outcome.from_checkpoint else ""
            progress(
                f"{objective} UL={ul:g}: instance {index + 1}/{scale.n_graphs} "
                f"({done}/{len(specs)}){suffix}"
            )

    scheduler = Scheduler(
        ClusterConfig(n_workers=n_jobs if n_jobs > 1 else 0),
        checkpoint=journal,
        on_done=_on_done,
    )
    results = scheduler.run(specs)
    if metrics_path is not None:
        scheduler.metrics.dump(metrics_path)
    failures = [o for o in results.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)

    traces: dict[float, dict[str, list[np.ndarray]]] = {
        ul: {"makespan": [], "slack": [], "r1": []} for ul in uls
    }
    for spec in specs:
        _, _, ul, _, _ = spec.args
        for key, arr in results[spec.key].result.items():
            traces[ul][key].append(arr)

    series = [
        EvolutionSeries(
            mean_ul=ul,
            steps=step_grid,
            makespan=np.mean(traces[ul]["makespan"], axis=0),
            slack=np.mean(traces[ul]["slack"], axis=0),
            r1=np.mean(traces[ul]["r1"], axis=0),
        )
        for ul in uls
    ]
    return SlackEffectResult(objective=objective, series=series)
