"""Monte-Carlo robustness assessment — the simulated "real environment".

The paper evaluates every schedule against ``N = 1000`` realizations of the
task execution times (Sec. 5).  :func:`assess_robustness` performs that
experiment for one schedule: sample realizations from the uncertainty
model, compute all realized makespans in one vectorized critical-path
pass, and derive tardiness / miss-rate / R1 / R2 along with the schedule's
static expected makespan and slack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as obs
from repro.robustness.metrics import (
    mean_relative_tardiness,
    miss_rate,
    robustness_miss_rate,
    robustness_tardiness,
)
from repro.schedule.evaluation import batch_makespans, evaluate
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["RobustnessReport", "assess_robustness"]


@dataclass(frozen=True)
class RobustnessReport:
    """All per-schedule quantities the paper's experiments consume.

    Attributes
    ----------
    expected_makespan:
        ``M_0`` — makespan under expected durations.
    avg_slack:
        Average slack ``σ̄`` under expected durations (Eqn. 3).
    realized_makespans:
        The ``N`` sampled makespans ``M_1..M_N``.
    mean_makespan:
        Mean realized makespan (what Figs. 2 and 4 plot as "makespan").
    mean_tardiness:
        ``E[δ_i]`` sample estimate.
    miss_rate:
        ``α``.
    r1, r2:
        The two robustness values (``inf`` when never tardy / never missed).
    """

    expected_makespan: float
    avg_slack: float
    realized_makespans: np.ndarray
    mean_makespan: float
    mean_tardiness: float
    miss_rate: float
    r1: float
    r2: float

    @property
    def n_realizations(self) -> int:
        """Number of Monte-Carlo realizations behind this report."""
        return int(self.realized_makespans.size)


def assess_robustness(
    schedule: Schedule,
    n_realizations: int = 1000,
    rng: np.random.Generator | int | None = None,
    *,
    family: str = "uniform",
    chunk_size: int | None = None,
) -> RobustnessReport:
    """Run the Monte-Carlo robustness experiment for one schedule.

    Parameters
    ----------
    schedule:
        The schedule under test.
    n_realizations:
        ``N`` (paper default 1000).
    rng:
        Seed or generator for the realization draws.
    family:
        Duration distribution family (see
        :meth:`~repro.platform.uncertainty.UncertaintyModel.realize_durations`);
        the paper's model is ``"uniform"``.
    chunk_size:
        Optional realization-axis chunking for very large ``N`` (see
        :func:`~repro.schedule.evaluation.batch_makespans`).

    Returns
    -------
    RobustnessReport

    Raises
    ------
    ValueError
        If ``n_realizations < 1`` or ``chunk_size < 1`` — validated here,
        at the API boundary, instead of surfacing as an opaque failure
        deep inside the batched kernel.
    """
    n_realizations = int(n_realizations)
    if n_realizations < 1:
        raise ValueError(
            f"n_realizations must be >= 1, got {n_realizations}"
        )
    if chunk_size is not None and int(chunk_size) < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    gen = as_generator(rng)
    with obs.trace(
        "mc.assess_robustness", n_realizations=n_realizations, family=family
    ):
        static = evaluate(schedule)
        m0 = static.makespan
        with obs.trace("mc.realize_durations", n_realizations=n_realizations):
            durations = schedule.problem.uncertainty.realize_durations(
                schedule.proc_of, n_realizations, gen, family=family
            )
        # Freshly sampled durations are finite and non-negative by
        # construction, so skip the validation scan.
        realized = batch_makespans(
            schedule, durations, validate=False, chunk_size=chunk_size
        )
        realized.setflags(write=False)
        return RobustnessReport(
            expected_makespan=m0,
            avg_slack=static.avg_slack,
            realized_makespans=realized,
            mean_makespan=float(realized.mean()),
            mean_tardiness=mean_relative_tardiness(realized, m0),
            miss_rate=miss_rate(realized, m0),
            r1=robustness_tardiness(realized, m0),
            r2=robustness_miss_rate(realized, m0),
        )
