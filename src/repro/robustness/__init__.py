"""Robustness evaluation layer (paper Sec. 3.3 and Sec. 5).

* :mod:`~repro.robustness.metrics` — relative tardiness, miss rate, and the
  two robustness definitions ``R1`` (Def. 3.6) and ``R2`` (Def. 3.7).
* :mod:`~repro.robustness.montecarlo` — the simulated "real resource
  environment": sample ``N`` duration realizations, evaluate makespans in
  one vectorized pass, report all metrics.
* :mod:`~repro.robustness.performance` — the weighted overall-performance
  score ``P(s)`` (Eqn. 9).
"""

from repro.robustness.analysis import (
    BootstrapCI,
    bootstrap_robustness,
    convergence_profile,
)
from repro.robustness.clark import (
    ClarkEstimate,
    analytic_robustness,
    clark_makespan,
)
from repro.robustness.metrics import (
    miss_rate,
    relative_tardiness,
    robustness_miss_rate,
    robustness_tardiness,
)
from repro.robustness.montecarlo import RobustnessReport, assess_robustness
from repro.robustness.performance import (
    overall_performance,
    robustness_improvement,
)

__all__ = [
    "relative_tardiness",
    "miss_rate",
    "robustness_tardiness",
    "robustness_miss_rate",
    "RobustnessReport",
    "assess_robustness",
    "overall_performance",
    "robustness_improvement",
    "BootstrapCI",
    "bootstrap_robustness",
    "convergence_profile",
    "ClarkEstimate",
    "clark_makespan",
    "analytic_robustness",
]
