"""Statistical analysis of robustness estimates.

The paper fixes N = 1000 realizations without justifying it; this module
provides the tooling to check that choice: bootstrap confidence intervals
for R1/R2/miss-rate, and a convergence profile showing how the estimates
stabilise as N grows.  Used by the diagnostics example and available to
downstream users deciding how many realizations their precision needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.robustness.metrics import (
    mean_relative_tardiness,
    miss_rate,
    robustness_miss_rate,
    robustness_tardiness,
)
from repro.schedule.evaluation import batch_makespans
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = ["BootstrapCI", "bootstrap_robustness", "convergence_profile"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width (``inf`` when an endpoint is infinite)."""
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.4g} "
            f"[{self.lower:.4g}, {self.upper:.4g}] @ {self.confidence:.0%}"
        )


def _percentile_ci(
    samples: np.ndarray, estimate: float, confidence: float
) -> BootstrapCI:
    alpha = (1.0 - confidence) / 2.0
    # method="nearest" keeps endpoints at actual sample values, so
    # replicates at inf (a resample that never misses) never enter
    # interpolation arithmetic (inf - inf -> nan).
    lower, upper = np.quantile(samples, [alpha, 1.0 - alpha], method="nearest")
    return BootstrapCI(
        estimate=float(estimate),
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )


def bootstrap_robustness(
    realized_makespans: np.ndarray,
    expected_makespan: float,
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    rng: np.random.Generator | int | None = None,
) -> dict[str, BootstrapCI]:
    """Percentile-bootstrap CIs for the paper's robustness metrics.

    Returns a dict with keys ``"r1"``, ``"r2"``, ``"miss_rate"`` and
    ``"mean_tardiness"``.  Resamples with infinite metric values (a
    bootstrap replicate that never misses) propagate ``inf`` into the
    upper endpoint, which is the honest answer.
    """
    realized = np.asarray(realized_makespans, dtype=np.float64).ravel()
    if realized.size < 2:
        raise ValueError("need at least two realizations to bootstrap")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 10:
        raise ValueError(f"n_boot must be >= 10, got {n_boot}")
    gen = as_generator(rng)

    n = realized.size
    idx = gen.integers(n, size=(n_boot, n))
    resamples = realized[idx]  # (n_boot, n)

    excess = np.maximum(0.0, resamples - expected_makespan) / expected_makespan
    tard = excess.mean(axis=1)
    miss = (resamples > expected_makespan).mean(axis=1)
    with np.errstate(divide="ignore"):
        r1 = np.where(tard > 0, 1.0 / np.where(tard > 0, tard, 1.0), np.inf)
        r2 = np.where(miss > 0, 1.0 / np.where(miss > 0, miss, 1.0), np.inf)

    return {
        "mean_tardiness": _percentile_ci(
            tard, mean_relative_tardiness(realized, expected_makespan), confidence
        ),
        "miss_rate": _percentile_ci(
            miss, miss_rate(realized, expected_makespan), confidence
        ),
        "r1": _percentile_ci(
            r1, robustness_tardiness(realized, expected_makespan), confidence
        ),
        "r2": _percentile_ci(
            r2, robustness_miss_rate(realized, expected_makespan), confidence
        ),
    }


def convergence_profile(
    schedule: Schedule,
    sample_sizes: tuple[int, ...] = (50, 100, 250, 500, 1000, 2000),
    rng: np.random.Generator | int | None = None,
) -> dict[int, dict[str, float]]:
    """R1/R2/miss-rate estimates at growing Monte-Carlo sample sizes.

    Samples are nested (the N=100 estimate reuses the first 100 of the
    N=2000 draws) so the profile shows pure estimator convergence, not
    draw-to-draw noise.
    """
    if not sample_sizes or any(s < 1 for s in sample_sizes):
        raise ValueError("sample_sizes must be positive")
    sizes = tuple(sorted(set(int(s) for s in sample_sizes)))
    gen = as_generator(rng)

    from repro.schedule.evaluation import evaluate

    m0 = evaluate(schedule).makespan
    durations = schedule.realize_durations(sizes[-1], gen)
    makespans = batch_makespans(schedule, durations)

    profile: dict[int, dict[str, float]] = {}
    for size in sizes:
        window = makespans[:size]
        profile[size] = {
            "mean_makespan": float(window.mean()),
            "mean_tardiness": mean_relative_tardiness(window, m0),
            "miss_rate": miss_rate(window, m0),
            "r1": robustness_tardiness(window, m0),
            "r2": robustness_miss_rate(window, m0),
        }
    return profile
