"""Robustness metrics: tardiness, miss rate, R1 and R2 (paper Sec. 3.3).

All functions take the array of realized makespans ``M_1..M_N`` and the
expected makespan ``M_0`` (makespan under expected durations).  Perfectly
robust schedules — no realization ever exceeds ``M_0`` — have infinite
``R1``/``R2``; the experiment layer aggregates with that in mind.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_tardiness",
    "mean_relative_tardiness",
    "miss_rate",
    "robustness_tardiness",
    "robustness_miss_rate",
]

#: Relative slop below which a realization is *not* a miss.  Realized
#: makespans are computed by a different summation order (vectorized
#: batch kernel) than ``M_0`` (scalar forward pass), so a realization
#: drawn exactly at the expected durations can land a few ULPs above
#: ``M_0``.  Without the tolerance such rounding dust counts as a miss
#: and drags ``R2`` from ``inf`` to ``N`` on perfectly robust schedules.
_REL_TOL = 1e-9


def _check(realized: np.ndarray, expected: float) -> tuple[np.ndarray, float]:
    realized = np.asarray(realized, dtype=np.float64).ravel()
    if realized.size == 0:
        raise ValueError("need at least one realization")
    expected = float(expected)
    if expected <= 0:
        raise ValueError(f"expected makespan must be positive, got {expected}")
    return realized, expected


def relative_tardiness(realized: np.ndarray, expected: float) -> np.ndarray:
    """Per-realization relative tardiness ``δ_i`` (Eqn. 4).

    ``δ_i = max(0, M_i - M_0) / M_0`` — how far, relatively, realization
    ``i`` overran the promised makespan.  Overruns within relative
    rounding tolerance of ``M_0`` count as zero (see :data:`_REL_TOL`).
    """
    realized, expected = _check(realized, expected)
    tardy = realized > expected * (1.0 + _REL_TOL)
    return np.where(tardy, realized - expected, 0.0) / expected


def mean_relative_tardiness(realized: np.ndarray, expected: float) -> float:
    """Sample estimate of ``E[δ_i]``."""
    return float(relative_tardiness(realized, expected).mean())


def miss_rate(realized: np.ndarray, expected: float) -> float:
    """Schedule miss rate ``α`` (Def. 3.7): fraction of realizations with ``M_i > M_0``.

    The comparison uses relative tolerance :data:`_REL_TOL` so that
    realizations equal to ``M_0`` up to floating-point rounding are not
    counted as misses.
    """
    realized, expected = _check(realized, expected)
    return float(np.mean(realized > expected * (1.0 + _REL_TOL)))


def robustness_tardiness(realized: np.ndarray, expected: float) -> float:
    """Tardiness-based robustness ``R1 = 1 / E[δ_i]`` (Eqn. 5).

    Returns ``inf`` when no realization is tardy.
    """
    mean_delta = mean_relative_tardiness(realized, expected)
    if mean_delta == 0.0:
        return float("inf")
    return 1.0 / mean_delta


def robustness_miss_rate(realized: np.ndarray, expected: float) -> float:
    """Miss-rate-based robustness ``R2 = 1 / α`` (Eqn. 6).

    Returns ``inf`` when no realization misses.
    """
    alpha = miss_rate(realized, expected)
    if alpha == 0.0:
        return float("inf")
    return 1.0 / alpha
