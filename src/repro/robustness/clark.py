"""Analytical makespan-distribution approximation (Clark's method).

The paper estimates robustness by Monte-Carlo simulation; its future-work
section calls for exploiting *stochastic information* directly.  This
module provides the classic analytical alternative from statistical
timing analysis: propagate the first two moments of task completion
times through the disjunctive graph, approximating each ``max`` of two
(assumed normal, assumed independent) completion times with Clark's
moment-matched normal [Clark, "The greatest of a finite set of random
variables", Operations Research 9(2), 1961].

From the resulting makespan moments, normal-theory estimates of the
paper's robustness metrics follow in closed form:

* miss rate  ``alpha ≈ P(M > M_0) = 1 - Phi((M_0 - mu)/sigma)``;
* expected relative tardiness
  ``E[(M - M_0)+]/M_0 = (sigma * phi(z) + (mu - M_0) * Phi(-z)) / M_0``
  with ``z = (M_0 - mu)/sigma``.

By default, completion times are propagated in *canonical first-order
form* — a linear expansion over the independent task-duration sources —
so the correlation of paths sharing ancestors is exact at every join
(the standard refinement from statistical static timing analysis).  On
this library's instances the resulting makespan mean lands within ~1 %
of a 20000-sample Monte Carlo and the standard deviation within a few
percent; tail quantities inherit the normality approximation (uniform
durations are matched in mean/variance only).  ``track_correlations=
False`` falls back to the independence assumption: cheaper, biased high
on the mean.  The estimator's value is speed — one O(n·(n+|E|)) pass
versus thousands of Monte-Carlo evaluations — e.g. inside a
robustness-aware fitness function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule

__all__ = ["clark_max", "ClarkEstimate", "clark_makespan", "analytic_robustness"]

_SQRT_TWO_PI = math.sqrt(2.0 * math.pi)


def clark_max(
    mean_a: float,
    var_a: float,
    mean_b: float,
    var_b: float,
    correlation: float = 0.0,
) -> tuple[float, float]:
    """Clark's moment-matched normal for ``max(A, B)``.

    Parameters
    ----------
    mean_a, var_a, mean_b, var_b:
        Moments of the two (approximately normal) operands.
    correlation:
        Correlation coefficient between A and B (default independent).

    Returns
    -------
    (mean, variance) of the matched normal.
    """
    if var_a < 0 or var_b < 0:
        raise ValueError("variances must be non-negative")
    if not (-1.0 <= correlation <= 1.0):
        raise ValueError(f"correlation must be in [-1, 1], got {correlation}")
    a2 = var_a + var_b - 2.0 * correlation * math.sqrt(var_a * var_b)
    if a2 <= 1e-30:
        # Deterministic comparison (or perfectly correlated equal spread).
        if mean_a >= mean_b:
            return mean_a, var_a
        return mean_b, var_b
    alpha = math.sqrt(a2)
    x = (mean_a - mean_b) / alpha
    cdf = norm.cdf(x)
    pdf = math.exp(-0.5 * x * x) / _SQRT_TWO_PI
    mean = mean_a * cdf + mean_b * (1.0 - cdf) + alpha * pdf
    second = (
        (mean_a * mean_a + var_a) * cdf
        + (mean_b * mean_b + var_b) * (1.0 - cdf)
        + (mean_a + mean_b) * alpha * pdf
    )
    var = max(second - mean * mean, 0.0)
    return mean, var


@dataclass(frozen=True)
class ClarkEstimate:
    """Normal approximation of a schedule's makespan distribution."""

    mean: float
    std: float
    completion_means: np.ndarray
    completion_vars: np.ndarray

    def miss_rate(self, threshold: float) -> float:
        """Normal-theory ``P(M > threshold)``."""
        if self.std <= 0:
            return float(self.mean > threshold)
        return float(norm.sf((threshold - self.mean) / self.std))

    def mean_relative_tardiness(self, threshold: float) -> float:
        """Normal-theory ``E[(M - threshold)+] / threshold``."""
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.std <= 0:
            return max(0.0, self.mean - threshold) / threshold
        z = (threshold - self.mean) / self.std
        expected_excess = self.std * norm.pdf(z) + (self.mean - threshold) * norm.sf(z)
        return float(max(expected_excess, 0.0) / threshold)


def _duration_moments(schedule: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """Mean and variance of each task's uniform duration on its processor."""
    low, high = schedule.problem.uncertainty.duration_bounds(schedule.proc_of)
    mean = 0.5 * (low + high)
    var = (high - low) ** 2 / 12.0
    return mean, var


def _clark_max_canonical(
    mean_a: float,
    coef_a: np.ndarray,
    mean_b: float,
    coef_b: np.ndarray,
    var_d: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Clark max in canonical first-order form.

    Operands are represented as ``mean + coef . X`` over the independent
    zero-mean task-duration sources ``X`` (variances *var_d*), so the
    correlation at every join is exact.  The result's coefficients are the
    tightness-weighted blend, rescaled to match the Clark variance — the
    standard canonical-form propagation from statistical timing analysis.
    """
    var_a = float(np.dot(coef_a * coef_a, var_d))
    var_b = float(np.dot(coef_b * coef_b, var_d))
    cov = float(np.dot(coef_a * coef_b, var_d))
    denom = math.sqrt(var_a * var_b)
    rho = cov / denom if denom > 0 else 0.0
    rho = min(1.0, max(-1.0, rho))
    mean, var = clark_max(mean_a, var_a, mean_b, var_b, correlation=rho)

    a2 = var_a + var_b - 2.0 * cov
    if a2 <= 1e-30:
        # Identical spreads: keep the dominant operand's form.
        return (mean, coef_a if mean_a >= mean_b else coef_b)
    x = (mean_a - mean_b) / math.sqrt(a2)
    tightness = norm.cdf(x)
    coef = tightness * coef_a + (1.0 - tightness) * coef_b
    coef_var = float(np.dot(coef * coef, var_d))
    if coef_var > 0 and var > 0:
        coef = coef * math.sqrt(var / coef_var)
    return mean, coef


def clark_makespan(schedule: Schedule, *, track_correlations: bool = True) -> ClarkEstimate:
    """Approximate the makespan distribution of *schedule* analytically.

    One forward pass over the disjunctive graph in topological order;
    every multi-predecessor join folds the candidate completion times
    pairwise through Clark's max.

    Parameters
    ----------
    track_correlations:
        When true (default), completion times carry canonical first-order
        forms over the independent task durations, so path correlations
        (shared ancestors) are accounted for exactly at each join —
        markedly better means at O(n) extra cost per join.  When false,
        joins assume independence (faster, biased high).
    """
    mean_d, var_d = _duration_moments(schedule)
    dag = schedule.disjunctive
    comm = schedule.comm_weights
    n = schedule.n

    c_mean = np.zeros(n, dtype=np.float64)
    c_var = np.zeros(n, dtype=np.float64)
    coefs = np.zeros((n, n), dtype=np.float64) if track_correlations else None

    for v in dag.topo:
        v = int(v)
        eidx = dag.pred_edges(v)
        if eidx.size == 0:
            start_mean = 0.0
            start_var = 0.0
            start_coef = np.zeros(n, dtype=np.float64) if track_correlations else None
        else:
            src = dag.edge_src[eidx]
            cand_mean = c_mean[src] + comm[eidx]
            start_mean = float(cand_mean[0])
            if track_correlations:
                start_coef = coefs[int(src[0])].copy()
                for k in range(1, eidx.size):
                    start_mean, start_coef = _clark_max_canonical(
                        start_mean,
                        start_coef,
                        float(cand_mean[k]),
                        coefs[int(src[k])],
                        var_d,
                    )
                start_var = float(np.dot(start_coef * start_coef, var_d))
            else:
                start_coef = None
                start_var = float(c_var[int(src[0])])
                for k in range(1, eidx.size):
                    start_mean, start_var = clark_max(
                        start_mean,
                        start_var,
                        float(cand_mean[k]),
                        float(c_var[int(src[k])]),
                    )
        c_mean[v] = start_mean + mean_d[v]
        if track_correlations:
            coefs[v] = start_coef
            coefs[v, v] += 1.0
            c_var[v] = float(np.dot(coefs[v] * coefs[v], var_d))
        else:
            c_var[v] = start_var + var_d[v]

    # Makespan = max over exit nodes (out-degree 0 in G_s).
    outdeg = np.bincount(dag.edge_src, minlength=n)
    exits = np.flatnonzero(outdeg == 0)
    m_mean = float(c_mean[exits[0]])
    if track_correlations:
        m_coef = coefs[int(exits[0])].copy()
        for v in exits[1:]:
            m_mean, m_coef = _clark_max_canonical(
                m_mean, m_coef, float(c_mean[v]), coefs[int(v)], var_d
            )
        m_var = float(np.dot(m_coef * m_coef, var_d))
    else:
        m_var = float(c_var[exits[0]])
        for v in exits[1:]:
            m_mean, m_var = clark_max(m_mean, m_var, float(c_mean[v]), float(c_var[v]))

    c_mean.setflags(write=False)
    c_var.setflags(write=False)
    return ClarkEstimate(
        mean=m_mean,
        std=math.sqrt(max(m_var, 0.0)),
        completion_means=c_mean,
        completion_vars=c_var,
    )


def analytic_robustness(schedule: Schedule) -> dict[str, float]:
    """Closed-form estimates of the paper's robustness quantities.

    Returns ``mean_makespan``, ``std_makespan``, ``miss_rate``,
    ``mean_tardiness``, ``r1`` and ``r2`` (``inf`` where the analytic
    tail mass vanishes), all relative to the schedule's expected makespan
    ``M_0`` as in Defs. 3.6/3.7.
    """
    est = clark_makespan(schedule)
    m0 = evaluate(schedule).makespan
    alpha = est.miss_rate(m0)
    tard = est.mean_relative_tardiness(m0)
    return {
        "mean_makespan": est.mean,
        "std_makespan": est.std,
        "miss_rate": alpha,
        "mean_tardiness": tard,
        "r1": (1.0 / tard) if tard > 0 else float("inf"),
        "r2": (1.0 / alpha) if alpha > 0 else float("inf"),
    }
