"""Overall schedule performance ``P(s)`` (paper Eqn. 9).

.. math::

    P(s) = r \\log \\frac{M_{HEFT}}{M(s)} + (1 - r) \\log \\frac{R(s)}{R_{HEFT}}

``r`` weights makespan against robustness: ``r -> 1`` rewards short
schedules, ``r -> 0`` rewards robust ones.  ``P > 0`` means the schedule
beats HEFT under that weighting.  ``M(s)`` is the mean *realized* makespan
(the quantity the paper's Figs. 2/4 plot as "makespan"); ``R`` is either
``R1`` or ``R2``.
"""

from __future__ import annotations

import math

from repro.robustness.montecarlo import RobustnessReport

__all__ = [
    "overall_performance",
    "performance_from_reports",
    "robustness_improvement",
]


def robustness_improvement(robustness: float, ref_robustness: float) -> float:
    """Log-ratio robustness term ``log(R(s) / R_ref)`` with explicit limits.

    ``R1``/``R2`` are ``inf`` for schedules that never miss, so the
    naive ratio hits ``inf/inf``.  The four finiteness combinations
    resolve to:

    ===========  ============  ==========================================
    ``R(s)``     ``R_ref``     result
    ===========  ============  ==========================================
    finite       finite        ``log(R(s) / R_ref)``
    infinite     finite        ``+inf`` (strictly more robust)
    finite       infinite      ``-inf`` (strictly less robust)
    infinite     infinite      ``0.0`` — a tie, **not** ``nan``
    ===========  ============  ==========================================

    Both inputs must be positive (robustness values are by construction).
    """
    for name, val in (
        ("robustness", robustness),
        ("ref_robustness", ref_robustness),
    ):
        if math.isnan(val) or val <= 0:
            raise ValueError(f"{name} must be positive, got {val}")
    inf_s = math.isinf(robustness)
    inf_ref = math.isinf(ref_robustness)
    if inf_s and inf_ref:
        return 0.0
    if inf_s:
        return math.inf
    if inf_ref:
        return -math.inf
    return math.log(robustness / ref_robustness)


def overall_performance(
    makespan: float,
    robustness: float,
    ref_makespan: float,
    ref_robustness: float,
    r_weight: float,
) -> float:
    """Evaluate Eqn. 9 for one schedule against a reference.

    Parameters
    ----------
    makespan, robustness:
        ``M(s)`` and ``R(s)`` of the schedule under evaluation.
    ref_makespan, ref_robustness:
        ``M_HEFT`` and ``R_HEFT`` of the reference schedule.
    r_weight:
        User emphasis ``r`` in [0, 1].

    Notes
    -----
    Infinite robustness values (schedules that never miss) are handled by
    the limits of the expression: ``R(s) = inf`` with finite reference gives
    ``+inf`` (unless ``r = 1``, where the robustness term vanishes); both
    infinite gives a robustness term of 0 (tie).
    """
    if not (0.0 <= r_weight <= 1.0):
        raise ValueError(f"r_weight must be in [0, 1], got {r_weight}")
    for name, val in (
        ("makespan", makespan),
        ("ref_makespan", ref_makespan),
    ):
        if val <= 0 or not math.isfinite(val):
            raise ValueError(f"{name} must be positive and finite, got {val}")
    makespan_term = math.log(ref_makespan / makespan)
    robustness_term = robustness_improvement(robustness, ref_robustness)

    if r_weight == 1.0:
        return makespan_term
    if r_weight == 0.0:
        return robustness_term
    return r_weight * makespan_term + (1.0 - r_weight) * robustness_term


def performance_from_reports(
    report: RobustnessReport,
    reference: RobustnessReport,
    r_weight: float,
    *,
    which: str = "r1",
) -> float:
    """Eqn. 9 straight from two :class:`RobustnessReport` objects.

    Parameters
    ----------
    which:
        ``"r1"`` (tardiness-based, Fig. 7) or ``"r2"`` (miss-rate-based,
        Fig. 8).
    """
    if which not in ("r1", "r2"):
        raise ValueError(f"which must be 'r1' or 'r2', got {which!r}")
    return overall_performance(
        makespan=report.mean_makespan,
        robustness=getattr(report, which),
        ref_makespan=reference.mean_makespan,
        ref_robustness=getattr(reference, which),
        r_weight=r_weight,
    )
