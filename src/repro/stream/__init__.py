"""Streaming oversubscribed workloads with robustness-aware shedding.

The ROADMAP's heavy-traffic scenario: a continuous arrival stream of
deadline-carrying DAG jobs competing for one shared platform.  This
package provides the three pieces —

* :mod:`repro.stream.workload` — seeded Poisson/MMPP arrival-process
  generators emitting fully-determined jobs (graph, HEFT plan, realized
  durations, deadline);
* :mod:`repro.stream.scheduler` — the event-driven online executor
  multiplexing all in-flight jobs over the shared processors with
  ``repro.sim.eventsim`` execution semantics (bit-identical to
  ``simulate()`` at zero contention);
* :mod:`repro.stream.policies` — pluggable shedding: ``none``,
  probabilistic task pruning (arXiv 1901.09312) and autonomous task
  dropping with deferral + fairness (arXiv 2005.11050).

See ``docs/stream.md`` for policies, arrival models and metric
definitions, and ``repro.experiments.stream_grid`` for the policy x
load study.
"""

from repro.stream.policies import (
    DEFER,
    DROP,
    POLICY_NAMES,
    RUN,
    DroppingPolicy,
    NoShedding,
    PruningPolicy,
    SheddingPolicy,
    make_policy,
)
from repro.stream.scheduler import (
    JOB_STATUSES,
    JobOutcome,
    StreamResult,
    run_stream,
)
from repro.stream.workload import (
    ARRIVAL_PROCESSES,
    StreamJob,
    StreamParams,
    StreamWorkload,
    build_workload,
    single_job_workload,
    with_load,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "DEFER",
    "DROP",
    "JOB_STATUSES",
    "POLICY_NAMES",
    "RUN",
    "DroppingPolicy",
    "JobOutcome",
    "NoShedding",
    "PruningPolicy",
    "SheddingPolicy",
    "StreamJob",
    "StreamParams",
    "StreamResult",
    "StreamWorkload",
    "build_workload",
    "make_policy",
    "run_stream",
    "single_job_workload",
    "with_load",
]
