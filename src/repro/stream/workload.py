"""Arrival-process workload generator for the streaming scheduler.

The ROADMAP's heavy-traffic scenario is a *continuous stream* of DAG
jobs competing for one shared platform: each job arrives at a random
time, carries its own task graph, uncertainty model and deadline, and
must be multiplexed with every other in-flight job.  This module turns
that scenario into a reproducible object:

* jobs are full :class:`~repro.core.problem.SchedulingProblem` instances
  generated with the paper's methodology (layered random DAG, COV-based
  BCET, two-stage-gamma UL), one independent ``SeedSequence`` spawn per
  job, so any job can be rebuilt in isolation;
* each job is statically planned in isolation with HEFT at generation
  time; its *expected makespan in an empty system* ``M0`` prices the
  deadline ``arrival + deadline_factor * M0`` — the promise a client
  would be given at submission;
* the realized duration of every task is sampled up front from the
  job's uncertainty model (one realization per job, its own stream), so
  a workload is one fully-determined world: the same seed always yields
  the same arrivals, deadlines and durations, no matter which policy
  later schedules it;
* arrival times follow either a homogeneous Poisson process or a
  two-state Markov-modulated Poisson process (MMPP — bursty traffic),
  calibrated so the *offered load* — expected work arriving per time
  unit divided by the platform's ``m`` units of capacity — equals the
  requested ``load``.  ``load > 1`` is oversubscription: work arrives
  faster than the platform can retire it.

Because job bodies derive from per-job spawn keys and only the arrival
spacing folds in the rate, two workloads that differ only in ``load``
contain the *same jobs* at different densities — load sweeps isolate the
effect of contention, mirroring how ``experiments.workloads`` shares
graphs across uncertainty levels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.graph.generator import DagParams
from repro.heuristics.heft import HeftScheduler
from repro.platform.uncertainty import UncertaintyParams
from repro.schedule.schedule import Schedule
from repro.sim.eventsim import simulate

__all__ = [
    "ARRIVAL_PROCESSES",
    "StreamParams",
    "StreamJob",
    "StreamWorkload",
    "build_workload",
    "single_job_workload",
    "with_load",
]

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "mmpp")


@dataclass(frozen=True)
class StreamParams:
    """Inputs of the stream-workload generator.

    Attributes
    ----------
    n_jobs:
        Number of DAG jobs in the stream.
    tasks:
        Tasks per job (the generator's layered-DAG ``n``).
    m:
        Processors of the shared platform (every job sees the same
        platform width).
    mean_ul:
        Mean uncertainty level of each job's UL matrix (paper sweeps
        2..8).
    load:
        Offered load relative to platform capacity: 1.0 means expected
        work arrives exactly as fast as ``m`` processors can retire it;
        1.5 is 1.5x oversubscription.
    arrival:
        ``"poisson"`` (homogeneous) or ``"mmpp"`` (two-state bursty).
    burstiness:
        MMPP only: ratio of the fast state's arrival rate to the slow
        state's (> 1).  The time-average rate always matches *load*.
    phase_jobs:
        MMPP only: mean number of jobs per modulation phase — sets the
        mean phase duration to ``phase_jobs / rate``.
    deadline_factor:
        Deadline slack multiplier: a job arriving at ``a`` with isolated
        expected makespan ``M0`` is due at ``a + deadline_factor * M0``.
    seed:
        Root seed; per-job problem/duration streams and the arrival
        stream are independent ``SeedSequence`` spawns of it.
    """

    n_jobs: int = 40
    tasks: int = 24
    m: int = 4
    mean_ul: float = 2.0
    load: float = 1.0
    arrival: str = "poisson"
    burstiness: float = 4.0
    phase_jobs: float = 8.0
    deadline_factor: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.tasks < 1:
            raise ValueError(f"tasks must be >= 1, got {self.tasks}")
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.mean_ul < 1.0:
            raise ValueError(f"mean_ul must be >= 1, got {self.mean_ul}")
        if self.load <= 0.0:
            raise ValueError(f"load must be positive, got {self.load}")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"choose from {ARRIVAL_PROCESSES}"
            )
        if self.burstiness <= 1.0:
            raise ValueError(f"burstiness must be > 1, got {self.burstiness}")
        if self.phase_jobs <= 0.0:
            raise ValueError(f"phase_jobs must be positive, got {self.phase_jobs}")
        if self.deadline_factor <= 0.0:
            raise ValueError(
                f"deadline_factor must be positive, got {self.deadline_factor}"
            )


@dataclass(frozen=True)
class StreamJob:
    """One DAG job of the stream: everything fixed before execution.

    ``durations`` is the job's *realized* world (hidden from every
    scheduling decision, exactly like the Monte-Carlo evaluator's
    realizations); ``schedule`` is the static HEFT plan whose
    per-processor orders the online executor follows; ``work`` is the
    total expected execution time of the assigned tasks — the unit the
    load calibration and the goodput metric count; ``klass`` buckets
    jobs by size (``"short"``/``"long"`` around the pool median) for the
    dropping policy's fairness accounting.
    """

    index: int
    problem: SchedulingProblem
    schedule: Schedule
    durations: np.ndarray
    arrival: float
    deadline: float
    expected_makespan: float
    work: float
    klass: str

    @property
    def n(self) -> int:
        """Number of tasks in the job."""
        return self.problem.n


@dataclass(frozen=True)
class StreamWorkload:
    """A fully-determined stream: jobs sorted by arrival time."""

    params: StreamParams
    jobs: tuple[StreamJob, ...]
    arrival_rate: float
    mean_work: float

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the stream."""
        return len(self.jobs)

    @property
    def m(self) -> int:
        """Shared-platform processor count."""
        return self.params.m

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamWorkload(n_jobs={self.n_jobs}, m={self.m}, "
            f"load={self.params.load:g}, arrival={self.params.arrival!r})"
        )


def _job_problem(params: StreamParams, index: int) -> SchedulingProblem:
    """Instance *index* of the stream (independent of load and arrival)."""
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=params.seed, spawn_key=(0, index))
    )
    return SchedulingProblem.random(
        m=params.m,
        dag_params=DagParams(n=params.tasks),
        uncertainty_params=UncertaintyParams(mean_ul=params.mean_ul),
        rng=rng,
        name=f"stream-job{index}",
    )


def _arrival_times(params: StreamParams, rate: float) -> np.ndarray:
    """Sample the ``n_jobs`` arrival instants at mean *rate* jobs/time."""
    gen = np.random.default_rng(
        np.random.SeedSequence(entropy=params.seed, spawn_key=(2,))
    )
    if params.arrival == "poisson":
        gaps = gen.exponential(1.0 / rate, size=params.n_jobs)
        return np.cumsum(gaps)
    # Two-state MMPP: exponential sojourns of equal mean in a slow and a
    # fast phase whose rates average (over time) to *rate*:
    # lam_slow = 2 r / (1 + b), lam_fast = b * lam_slow.
    lam_slow = 2.0 * rate / (1.0 + params.burstiness)
    rates = (lam_slow, params.burstiness * lam_slow)
    mean_phase = params.phase_jobs / rate
    arrivals = np.empty(params.n_jobs, dtype=np.float64)
    t = 0.0
    state = 0
    phase_end = float(gen.exponential(mean_phase))
    for j in range(params.n_jobs):
        while True:
            gap = float(gen.exponential(1.0 / rates[state]))
            if t + gap <= phase_end:
                t += gap
                break
            # Memorylessness: restart the draw from the phase boundary.
            t = phase_end
            state = 1 - state
            phase_end = t + float(gen.exponential(mean_phase))
        arrivals[j] = t
    return arrivals


def build_workload(params: StreamParams) -> StreamWorkload:
    """Generate the full stream for *params* (deterministic in the seed).

    Job bodies (graphs, BCET/UL matrices, HEFT plans, realized
    durations) depend only on ``(seed, index)``; the offered ``load``
    and the arrival process shape only the arrival instants.  The
    arrival rate is calibrated against the *generated* jobs:
    ``rate = load * m / mean(work)``.
    """
    jobs_static = []
    for j in range(params.n_jobs):
        problem = _job_problem(params, j)
        schedule = HeftScheduler().schedule(problem)
        m0 = simulate(schedule).makespan
        durations = schedule.realize_durations(
            1,
            rng=np.random.default_rng(
                np.random.SeedSequence(entropy=params.seed, spawn_key=(1, j))
            ),
        )[0]
        work = float(schedule.expected_durations().sum())
        jobs_static.append((problem, schedule, m0, durations, work))

    works = np.array([w for *_, w in jobs_static], dtype=np.float64)
    mean_work = float(works.mean())
    rate = params.load * params.m / mean_work
    arrivals = _arrival_times(params, rate)
    median_work = float(np.median(works))

    jobs = tuple(
        StreamJob(
            index=j,
            problem=problem,
            schedule=schedule,
            durations=durations,
            arrival=float(arrivals[j]),
            deadline=float(arrivals[j]) + params.deadline_factor * m0,
            expected_makespan=m0,
            work=work,
            klass="short" if work <= median_work else "long",
        )
        for j, (problem, schedule, m0, durations, work) in enumerate(jobs_static)
    )
    return StreamWorkload(
        params=params, jobs=jobs, arrival_rate=rate, mean_work=mean_work
    )


def single_job_workload(
    problem: SchedulingProblem,
    *,
    seed: int = 0,
    deadline_factor: float = 3.0,
    arrival: float = 0.0,
    schedule: Schedule | None = None,
) -> StreamWorkload:
    """Wrap one existing problem as a one-job stream (tests, debugging).

    With ``arrival=0.0`` (the default) the stream executor's event loop
    sees exactly the state :func:`repro.sim.eventsim.simulate` starts
    from, which is what the zero-contention bit-identity property pins.
    """
    if arrival < 0.0:
        raise ValueError(f"arrival must be >= 0, got {arrival}")
    if deadline_factor <= 0.0:
        raise ValueError(f"deadline_factor must be positive, got {deadline_factor}")
    schedule = schedule or HeftScheduler().schedule(problem)
    m0 = simulate(schedule).makespan
    durations = schedule.realize_durations(
        1,
        rng=np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(1, 0))
        ),
    )[0]
    work = float(schedule.expected_durations().sum())
    job = StreamJob(
        index=0,
        problem=problem,
        schedule=schedule,
        durations=durations,
        arrival=float(arrival),
        deadline=float(arrival) + deadline_factor * m0,
        expected_makespan=m0,
        work=work,
        klass="short",
    )
    params = StreamParams(
        n_jobs=1, tasks=problem.n, m=problem.m, load=1.0, seed=seed,
        deadline_factor=deadline_factor,
    )
    return StreamWorkload(
        params=params,
        jobs=(job,),
        arrival_rate=1.0 / max(job.expected_makespan, 1e-12),
        mean_work=work,
    )


def with_load(workload: StreamWorkload, load: float) -> StreamWorkload:
    """Re-space an existing workload's arrivals at a different load.

    Reuses the already-generated job bodies (the expensive part) and
    only resamples the arrival instants — the same trick
    :func:`build_workload` guarantees across separate calls, minus the
    regeneration cost.  Deadlines shift with the new arrivals.
    """
    params = replace(workload.params, load=load)
    rate = load * workload.m / workload.mean_work
    arrivals = _arrival_times(params, rate)
    jobs = tuple(
        replace(
            job,
            arrival=float(arrivals[j]),
            deadline=float(arrivals[j])
            + params.deadline_factor * job.expected_makespan,
        )
        for j, job in enumerate(workload.jobs)
    )
    return StreamWorkload(
        params=params, jobs=jobs, arrival_rate=rate, mean_work=workload.mean_work
    )
