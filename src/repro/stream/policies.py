"""Robustness-aware shedding policies for the streaming scheduler.

Under oversubscription the platform cannot finish every job by its
deadline; the question is *which* work to sacrifice.  The two
Salehi-lab mechanisms referenced in PAPERS.md answer it with the same
primitive this repo already uses for robustness: the probability that a
task's job still completes before its deadline, derived from the
stochastic duration model.

* **Probabilistic task pruning** (arXiv 1901.09312): at every dispatch
  (and at admission) compute the on-time completion probability; if it
  has fallen below a threshold the task — and with it the job, since a
  DAG missing a task can never finish — is *pruned*, immediately
  releasing its processor demand to jobs that can still make it.
* **Autonomous task dropping** (arXiv 2005.11050): a two-threshold
  variant that first *defers* doubtful tasks (letting more promising
  candidates overtake them, in case the situation improves) and only
  *drops* once the probability falls below a hard floor.  A fairness
  knob tilts the drop floor against job classes that have historically
  been dropped more than their share, so "long" jobs are not starved
  just because they are easier targets.

Policies are deliberately thin: the scheduler owns the probability
estimate (see ``stream.scheduler``) and asks the policy two questions —
``admit`` when a job arrives, ``dispatch`` when a task is about to
start.  Everything a policy learns arrives through those calls plus
``record_outcome``, so policies are trivially swappable and the
no-shedding baseline really is "always say run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.stream.workload import StreamJob

__all__ = [
    "RUN",
    "DEFER",
    "DROP",
    "POLICY_NAMES",
    "SheddingPolicy",
    "NoShedding",
    "PruningPolicy",
    "DroppingPolicy",
    "make_policy",
]

#: Dispatch verdicts.
RUN = "run"
DEFER = "defer"
DROP = "drop"

#: Registry of policy names accepted by :func:`make_policy`.
POLICY_NAMES = ("none", "prune", "drop")


class SheddingPolicy:
    """Base policy: admit everything, run everything (no shedding).

    Subclasses override :meth:`admit` and :meth:`dispatch`; both receive
    the scheduler's estimate ``p_complete`` of the probability that the
    *job* finishes by its deadline given that the queried task starts
    now (see ``stream.scheduler`` for the estimator).  ``dispatch``
    returns one of :data:`RUN`, :data:`DEFER`, :data:`DROP`.
    """

    name = "none"

    def admit(self, job: "StreamJob", p_complete: float) -> bool:
        """Accept *job* into the system at arrival time?"""
        return True

    def dispatch(
        self, job: "StreamJob", task: int, p_complete: float, now: float
    ) -> str:
        """Verdict for *task* of *job* about to start at time *now*."""
        return RUN

    def record_outcome(self, job: "StreamJob", status: str) -> None:
        """Observe a job's terminal status (for adaptive policies)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoShedding(SheddingPolicy):
    """The baseline: every arrival enqueued, every ready task run."""


@dataclass
class PruningPolicy(SheddingPolicy):
    """Probabilistic task pruning (arXiv 1901.09312).

    A task whose job's on-time completion probability is below
    ``threshold`` at dispatch time is pruned, terminating the job and
    freeing its remaining demand.  Admission applies the same test, so
    a job that is hopeless on arrival never occupies queue state.
    """

    threshold: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        self.name = "prune"

    def admit(self, job: "StreamJob", p_complete: float) -> bool:
        """Reject jobs already below the pruning threshold on arrival."""
        return p_complete >= self.threshold

    def dispatch(
        self, job: "StreamJob", task: int, p_complete: float, now: float
    ) -> str:
        """Prune the job the moment its probability dips below threshold."""
        if p_complete < self.threshold:
            return DROP
        return RUN


@dataclass
class DroppingPolicy(SheddingPolicy):
    """Autonomous task dropping with deferral and fairness (arXiv 2005.11050).

    Two thresholds: below ``defer_below`` a task is *deferred* —
    skipped this round so a more promising candidate can take the
    processor, but revisited the moment nothing better is waiting;
    below ``drop_below`` it is dropped outright.  ``fairness`` in
    ``[0, 1]`` scales how strongly the drop floor is lowered for job
    classes whose historical drop rate exceeds the overall average
    (0 = class-blind, 1 = a class dropped twice as often as average has
    its floor halved).
    """

    drop_below: float = 0.10
    defer_below: float = 0.40
    fairness: float = 0.5
    _offered: dict[str, int] = field(default_factory=dict, repr=False)
    _dropped: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_below <= 1.0:
            raise ValueError(
                f"drop_below must be in [0, 1], got {self.drop_below}"
            )
        if not self.drop_below <= self.defer_below <= 1.0:
            raise ValueError(
                "need drop_below <= defer_below <= 1, got "
                f"drop_below={self.drop_below}, defer_below={self.defer_below}"
            )
        if not 0.0 <= self.fairness <= 1.0:
            raise ValueError(f"fairness must be in [0, 1], got {self.fairness}")
        self.name = "drop"

    def admit(self, job: "StreamJob", p_complete: float) -> bool:
        """Count the offer per class; reject only the hopeless (P = 0)."""
        self._offered[job.klass] = self._offered.get(job.klass, 0) + 1
        # Dropping is a runtime decision; admission only rejects the
        # truly hopeless (probability identically zero on arrival).
        return p_complete > 0.0

    def _drop_floor(self, klass: str) -> float:
        """Class-adjusted drop threshold (lower for over-dropped classes)."""
        offered = sum(self._offered.values())
        if offered == 0 or self.fairness == 0.0:
            return self.drop_below
        dropped = sum(self._dropped.values())
        overall = dropped / offered
        k_off = self._offered.get(klass, 0)
        if k_off == 0 or overall == 0.0:
            return self.drop_below
        k_rate = self._dropped.get(klass, 0) / k_off
        # excess > 1 means this class is dropped more than its share.
        excess = k_rate / overall
        if excess <= 1.0:
            return self.drop_below
        return self.drop_below / (1.0 + self.fairness * (excess - 1.0))

    def dispatch(
        self, job: "StreamJob", task: int, p_complete: float, now: float
    ) -> str:
        """Drop below the class-adjusted floor, defer below the soft bar."""
        if p_complete < self._drop_floor(job.klass):
            return DROP
        if p_complete < self.defer_below:
            return DEFER
        return RUN

    def record_outcome(self, job: "StreamJob", status: str) -> None:
        """Track per-class drops so the fairness floor can react."""
        if status == "dropped":
            self._dropped[job.klass] = self._dropped.get(job.klass, 0) + 1


def make_policy(name: str, **kwargs) -> SheddingPolicy:
    """Build a shedding policy by registry name.

    ``none`` takes no options; ``prune`` accepts ``threshold``;
    ``drop`` accepts ``drop_below``/``defer_below``/``fairness``.
    """
    if name == "none":
        if kwargs:
            raise TypeError(f"policy 'none' takes no options, got {kwargs}")
        return NoShedding()
    if name == "prune":
        return PruningPolicy(**kwargs)
    if name == "drop":
        return DroppingPolicy(**kwargs)
    raise ValueError(
        f"unknown shedding policy {name!r}; choose from {POLICY_NAMES}"
    )
