"""Event-driven online scheduler multiplexing a stream of DAG jobs.

One shared platform, many concurrent jobs: every job brings its static
HEFT plan (per-processor task orders), and this executor interleaves
all in-flight plans over the *same* ``m`` processors with exactly the
execution semantics of :mod:`repro.sim.eventsim` — per-processor
schedule order within each job, a task starts once its processor is
free and all predecessors have finished and their data has arrived,
communications contention-free and overlapped.

The event loop differs from ``eventsim`` in one way only: ``eventsim``
books a task onto its processor the moment its predecessors finish,
even when the start lies in the future, because with a single job the
head of each processor's queue is fixed.  Online, the next task a
processor runs depends on which jobs exist *at that moment*, so
commitments happen when a processor is actually free: candidate heads
whose data arrives later schedule a *wake* event instead.  Both
routes evaluate the identical float expression
``t0 = max(proc_free[p], ready_time[v])`` over identical operands
(``ready_time`` is final once the last predecessor has finished, and
all its updates are max-accumulations), so for a single job arriving
at time zero the two produce bit-identical start/finish times — the
property test in ``tests/property/test_stream_identity.py`` pins this.

Shedding hooks (see :mod:`repro.stream.policies`) sit at the two
decision points: *admission* when a job arrives, *dispatch* when a
task is about to start.  The probability handed to the policy is the
job's on-time completion estimate under the stochastic duration model:
a backward moment pass over the job's disjunctive graph gives every
task the mean and variance of its downstream critical path (variance
accumulated along the argmax-mean path, uniform-duration variance
``(high - low)^2 / 12`` from the task's BCET/UL bounds), and

``P = Phi((deadline - t0 - bl_mean[v]) / sqrt(bl_var[v]))``

is the normal approximation of finishing the chain through ``v`` by
the deadline when ``v`` starts at ``t0``.  As queues build under
oversubscription, ``t0`` drifts past what deadlines allow and ``P``
collapses — which is exactly when shedding frees capacity for jobs
that can still make it.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as obs
from repro.stream.policies import DEFER, DROP, NoShedding, SheddingPolicy
from repro.stream.workload import StreamJob, StreamWorkload

__all__ = ["JOB_STATUSES", "JobOutcome", "StreamResult", "run_stream"]

#: Terminal states a job can reach.
JOB_STATUSES = ("on-time", "late", "dropped", "rejected")

# Event kinds; finishes sort before arrivals and wakes at equal times so
# freed processors are visible to same-instant decisions.
_FINISH, _ARRIVAL, _WAKE = 0, 1, 2


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class _JobRun:
    """Mutable execution state of one admitted job."""

    __slots__ = (
        "job",
        "remaining_preds",
        "ready_time",
        "start",
        "finish",
        "started",
        "next_slot",
        "n_done",
        "alive",
        "mean_dur",
        "bl_mean",
        "bl_var",
        "root_mean",
        "root_var",
    )

    def __init__(self, job: StreamJob) -> None:
        schedule = job.schedule
        problem = job.problem
        n = problem.n
        self.job = job
        self.remaining_preds = problem.graph.in_degree().astype(np.int64).copy()
        # No task may start before the job exists.
        self.ready_time = np.full(n, job.arrival, dtype=np.float64)
        self.start = np.full(n, np.nan, dtype=np.float64)
        self.finish = np.full(n, np.nan, dtype=np.float64)
        self.started = np.zeros(n, dtype=bool)
        self.next_slot = [0] * problem.m
        self.n_done = 0
        self.alive = True

        # Downstream critical-path moments over the disjunctive graph
        # (chain edges included: the job's own serialization is part of
        # its remaining work).  Variance follows the argmax-mean path.
        self.mean_dur = schedule.expected_durations()
        low, high = problem.uncertainty.duration_bounds(schedule.proc_of)
        var = (high - low) ** 2 / 12.0
        dag = schedule.disjunctive
        comm = schedule.comm_weights
        bl_mean = np.zeros(n, dtype=np.float64)
        bl_var = np.zeros(n, dtype=np.float64)
        for v in reversed(dag.topo):
            v = int(v)
            best = 0.0
            best_var = 0.0
            for e in dag.succ_edges(v):
                w = int(dag.edge_dst[e])
                cand = float(comm[e]) + bl_mean[w]
                if cand > best:
                    best = cand
                    best_var = bl_var[w]
            bl_mean[v] = float(self.mean_dur[v]) + best
            bl_var[v] = float(var[v]) + best_var
        self.bl_mean = bl_mean
        self.bl_var = bl_var
        if n:
            entries = dag.entries
            root = int(entries[int(np.argmax(bl_mean[entries]))])
            self.root_mean = float(bl_mean[root])
            self.root_var = float(bl_var[root])
        else:  # pragma: no cover - generators never emit empty DAGs
            self.root_mean = 0.0
            self.root_var = 0.0

    def p_complete(self, v: int, t0: float) -> float:
        """P(job's chain through *v* meets its deadline | *v* starts at t0)."""
        slack = self.job.deadline - t0 - self.bl_mean[v]
        sd = math.sqrt(self.bl_var[v])
        if sd == 0.0:
            return 1.0 if slack >= 0.0 else 0.0
        return _phi(slack / sd)

    def p_admit(self, queue_delay: float) -> float:
        """On-time probability at arrival, charged the current backlog."""
        slack = (
            self.job.deadline - self.job.arrival - queue_delay - self.root_mean
        )
        sd = math.sqrt(self.root_var)
        if sd == 0.0:
            return 1.0 if slack >= 0.0 else 0.0
        return _phi(slack / sd)


@dataclass(frozen=True)
class JobOutcome:
    """Terminal record of one job of the stream."""

    index: int
    status: str
    arrival: float
    deadline: float
    finish: float
    work: float
    klass: str
    n_done: int

    @property
    def on_time(self) -> bool:
        """Did the job complete by its deadline?"""
        return self.status == "on-time"

    @property
    def response(self) -> float:
        """Completion latency (NaN for shed jobs)."""
        return self.finish - self.arrival


@dataclass(frozen=True)
class StreamResult:
    """Aggregate outcome of one streamed execution.

    Metric definitions (see ``docs/stream.md``):

    * ``on_time_rate`` — completed-by-deadline jobs over *all* jobs
      (late, dropped and rejected jobs all count against it);
    * ``miss_rate`` — ``1 - on_time_rate``;
    * ``goodput`` — expected work of on-time jobs retired per time unit
      over the horizon (work that missed its deadline earns nothing);
    * ``utilization`` — busy processor-time over ``m * horizon``,
      including work spent on jobs that were later shed (it occupied
      the platform either way);
    * ``horizon`` — time of the last event (last completion, drop or
      arrival).
    """

    policy: str
    load: float
    n_jobs: int
    m: int
    horizon: float
    outcomes: tuple[JobOutcome, ...]
    n_on_time: int
    n_late: int
    n_dropped: int
    n_rejected: int
    n_deferrals: int
    busy_time: float

    @property
    def on_time_rate(self) -> float:
        """Fraction of all jobs completed by their deadline."""
        return self.n_on_time / self.n_jobs if self.n_jobs else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of all jobs that missed (late, dropped or rejected)."""
        return 1.0 - self.on_time_rate

    @property
    def goodput(self) -> float:
        """On-time expected work retired per time unit."""
        if self.horizon <= 0.0:
            return 0.0
        won = sum(o.work for o in self.outcomes if o.on_time)
        return won / self.horizon

    @property
    def utilization(self) -> float:
        """Busy processor-time fraction over the horizon."""
        if self.horizon <= 0.0:
            return 0.0
        return self.busy_time / (self.m * self.horizon)

    @property
    def mean_response(self) -> float:
        """Mean completion latency of jobs that ran to completion."""
        done = [o.response for o in self.outcomes if o.status in ("on-time", "late")]
        return float(np.mean(done)) if done else float("nan")

    @property
    def drop_set(self) -> tuple[int, ...]:
        """Sorted indices of shed jobs (dropped + rejected) — the
        determinism tests compare this across worker counts."""
        return tuple(
            sorted(
                o.index
                for o in self.outcomes
                if o.status in ("dropped", "rejected")
            )
        )

    @property
    def makespan(self) -> float:
        """Finish time of the last completed task (NaN if nothing ran)."""
        done = [o.finish for o in self.outcomes if not math.isnan(o.finish)]
        return max(done) if done else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamResult(policy={self.policy!r}, load={self.load:g}, "
            f"on_time={self.n_on_time}/{self.n_jobs}, "
            f"goodput={self.goodput:.3f})"
        )


def run_stream(
    workload: StreamWorkload,
    policy: SheddingPolicy | None = None,
    *,
    latency_out: list[float] | None = None,
) -> StreamResult:
    """Execute *workload* online under *policy* (default: no shedding).

    Parameters
    ----------
    workload:
        A fully-determined stream from
        :func:`repro.stream.workload.build_workload`.
    policy:
        Shedding policy consulted at admission and dispatch; ``None``
        means :class:`~repro.stream.policies.NoShedding`.
    latency_out:
        Optional list; when given, the wall-clock seconds of every
        dispatch decision (candidate scan + policy verdict + commit)
        are appended — the benchmark's scheduling-latency sample.

    Returns
    -------
    StreamResult
        Terminal job outcomes plus stream-level metrics.
    """
    policy = policy or NoShedding()
    m = workload.m
    jobs = workload.jobs

    runs: dict[int, _JobRun] = {}
    statuses: dict[int, str] = {}
    proc_free = [0.0] * m
    busy_time = 0.0
    pending_work = 0.0  # expected work admitted but not yet finished
    horizon = 0.0
    n_deferrals = 0
    prune_counter = (
        "stream.prunes" if policy.name == "prune" else "stream.drops"
    )

    # Event heap: (time, kind, a, b).  Finishes carry (job, task),
    # arrivals (job, 0), wakes (proc, 0).
    events: list[tuple[float, int, int, int]] = []
    for job in jobs:
        heapq.heappush(events, (job.arrival, _ARRIVAL, job.index, 0))
    wake_at: list[float | None] = [None] * m

    def finalize(run: _JobRun, status: str) -> None:
        nonlocal pending_work
        run.alive = False
        statuses[run.job.index] = status
        # Credit back the *unstarted* remainder; tasks already committed
        # (finite finish) are credited by their own finish events — they
        # occupy the platform either way (execution is non-preemptive).
        owed = float(run.mean_dur[~np.isfinite(run.finish)].sum())
        pending_work = max(0.0, pending_work - owed)
        policy.record_outcome(run.job, status)

    def commit(run: _JobRun, p: int, v: int, t0: float) -> None:
        nonlocal busy_time
        d = float(run.job.durations[v])
        f = t0 + d
        run.start[v] = t0
        run.finish[v] = f
        run.started[v] = True
        run.next_slot[p] += 1
        proc_free[p] = f
        busy_time += d
        heapq.heappush(events, (f, _FINISH, run.job.index, v))

    def try_start(p: int, now: float, *, force: bool = False) -> bool:
        """Dispatch one task onto *p* if possible; True if anything started.

        Scans every live job's head task on *p*; tasks whose data
        arrives later schedule a wake.  Among startable candidates the
        earliest ``t0`` wins, ties broken by earliest deadline then job
        index.  The policy may veto (defer) or terminate (drop) a
        candidate; with *force* (used only when the event heap has
        drained) deferrals are overridden so the loop always makes
        progress.
        """
        nonlocal n_deferrals, pending_work
        if proc_free[p] > now:
            return False
        t_begin = time.perf_counter() if latency_out is not None else 0.0
        deferred: set[int] = set()  # jobs skipped this scan so others overtake
        while True:
            best = None  # (t0, deadline, job_index, run, task)
            future_ready = math.inf
            for run in runs.values():
                if not run.alive or run.job.index in deferred:
                    continue
                order = run.job.schedule.proc_orders[p]
                k = run.next_slot[p]
                if k >= len(order):
                    continue
                v = int(order[k])
                if run.remaining_preds[v] > 0 or run.started[v]:
                    continue
                if run.ready_time[v] > now:
                    future_ready = min(future_ready, float(run.ready_time[v]))
                    continue
                t0 = max(proc_free[p], float(run.ready_time[v]))
                key = (t0, run.job.deadline, run.job.index)
                if best is None or key < best[:3]:
                    best = (*key, run, v)
            if best is None:
                if math.isfinite(future_ready) and (
                    wake_at[p] is None or future_ready < wake_at[p]
                ):
                    wake_at[p] = future_ready
                    heapq.heappush(events, (future_ready, _WAKE, p, 0))
                if latency_out is not None:
                    latency_out.append(time.perf_counter() - t_begin)
                return False
            t0, _, _, run, v = best
            verdict = policy.dispatch(run.job, v, run.p_complete(v, t0), now)
            if verdict == DROP:
                obs.add(prune_counter)
                finalize(run, "dropped")
                continue  # rescan: the next-best candidate may now win
            if verdict == DEFER and not force:
                # Skip this job for the rest of the scan: a less
                # promising head may overtake; the deferred task is
                # revisited at the next event (or force pass).
                n_deferrals += 1
                obs.add("stream.deferrals")
                deferred.add(run.job.index)
                continue
            with obs.trace(
                "stream.dispatch", job=run.job.index, task=v, proc=p
            ):
                commit(run, p, v, t0)
            if latency_out is not None:
                latency_out.append(time.perf_counter() - t_begin)
            return True

    with obs.trace(
        "stream.run",
        policy=policy.name,
        load=workload.params.load,
        n_jobs=len(jobs),
        m=m,
    ):
        obs.set_gauge("stream.load", workload.params.load)
        while True:
            if not events:
                # Only deferred candidates remain: run the best of them
                # (work-conserving) so the loop cannot livelock.
                if any(r.alive for r in runs.values()):
                    progressed = False
                    for p in range(m):
                        progressed = try_start(p, horizon, force=True) or progressed
                    if progressed:
                        continue
                break
            t, kind, a, b = heapq.heappop(events)
            horizon = max(horizon, t)
            if kind == _ARRIVAL:
                job = jobs[a]
                run = _JobRun(job)
                obs.add("stream.arrivals")
                queue_delay = pending_work / m
                if not policy.admit(job, run.p_admit(queue_delay)):
                    statuses[job.index] = "rejected"
                    obs.add("stream.rejections")
                    continue
                runs[job.index] = run
                pending_work += job.work
                obs.set_gauge(
                    "stream.active_jobs",
                    sum(1 for r in runs.values() if r.alive),
                )
            elif kind == _FINISH:
                run = runs[a]
                v = b
                # A committed task is never credited by finalize(), so
                # this credit is due whether or not the job is still
                # alive (a shed job's running tasks ran to completion).
                pending_work = max(0.0, pending_work - float(run.mean_dur[v]))
                if run.alive:
                    run.n_done += 1
                    graph = run.job.problem.graph
                    platform = run.job.problem.platform
                    proc_of = run.job.schedule.proc_of
                    for e in graph.successor_edge_indices(v):
                        w = int(graph.edge_dst[e])
                        comm = platform.comm_time(
                            float(graph.edge_data[e]),
                            int(proc_of[v]),
                            int(proc_of[w]),
                        )
                        arrival = t + comm
                        if arrival > run.ready_time[w]:
                            run.ready_time[w] = arrival
                        run.remaining_preds[w] -= 1
                    if run.n_done == run.job.n:
                        finish = float(run.finish.max())
                        status = (
                            "on-time"
                            if finish <= run.job.deadline
                            else "late"
                        )
                        finalize(run, status)
                        obs.add("stream.completions")
            else:  # _WAKE
                if wake_at[a] is not None and wake_at[a] <= t:
                    wake_at[a] = None
            # Any event can unblock any processor: a finish frees its
            # own proc and may satisfy cross-proc predecessors; an
            # arrival adds candidates everywhere; a wake means data
            # has arrived for some head task.
            for p in range(m):
                while try_start(p, t):
                    pass

        outcomes = []
        n_on, n_late, n_drop, n_rej = 0, 0, 0, 0
        for job in jobs:
            status = statuses.get(job.index, "dropped")
            run = runs.get(job.index)
            if status == "on-time":
                n_on += 1
            elif status == "late":
                n_late += 1
            elif status == "rejected":
                n_rej += 1
            else:
                n_drop += 1
            if run is not None and run.n_done == job.n:
                finish = float(run.finish.max())
            else:
                finish = float("nan")
            outcomes.append(
                JobOutcome(
                    index=job.index,
                    status=status,
                    arrival=job.arrival,
                    deadline=job.deadline,
                    finish=finish,
                    work=job.work,
                    klass=job.klass,
                    n_done=run.n_done if run is not None else 0,
                )
            )
        result = StreamResult(
            policy=policy.name,
            load=workload.params.load,
            n_jobs=len(jobs),
            m=m,
            horizon=horizon,
            outcomes=tuple(outcomes),
            n_on_time=n_on,
            n_late=n_late,
            n_dropped=n_drop,
            n_rejected=n_rej,
            n_deferrals=n_deferrals,
            busy_time=busy_time,
        )
        obs.set_gauge("stream.on_time_rate", result.on_time_rate)
        obs.set_gauge("stream.goodput", result.goodput)
    return result
