"""Heartbeat bookkeeping: decide which workers are alive, late, or lost.

Workers emit a heartbeat message every ``interval`` seconds from a
background thread, so a worker that is busy computing still beats; one
that stops beating is either dead (its process exit is also detected
directly) or wedged — stuck in a non-yielding native call, stopped by a
signal, or swapped out.  The monitor only does the time arithmetic; the
scheduler owns the consequences (kill + requeue).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["HeartbeatMonitor"]


@dataclass
class HeartbeatMonitor:
    """Track the last heartbeat instant per worker id.

    Attributes
    ----------
    timeout:
        Seconds of silence after which a worker counts as lost; ``None``
        disables hang detection (crash detection is unaffected — a dead
        process is noticed via its pipe and exit code).
    """

    timeout: float | None = 30.0
    _last: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"heartbeat timeout must be positive, got {self.timeout}")

    def register(self, worker_id: int, now: float | None = None) -> None:
        """Start tracking a worker, counting registration as a beat."""
        self._last[worker_id] = time.monotonic() if now is None else now

    def beat(self, worker_id: int, now: float | None = None) -> None:
        """Record a heartbeat (any message from the worker counts)."""
        self._last[worker_id] = time.monotonic() if now is None else now

    def forget(self, worker_id: int) -> None:
        """Stop tracking a worker (retired or already declared lost)."""
        self._last.pop(worker_id, None)

    def last_beat(self, worker_id: int) -> float | None:
        """Most recent beat instant, or ``None`` if untracked."""
        return self._last.get(worker_id)

    def overdue(self, now: float | None = None) -> list[int]:
        """Worker ids whose silence exceeds ``timeout`` (empty if disabled)."""
        if self.timeout is None:
            return []
        t = time.monotonic() if now is None else now
        return [wid for wid, beat in self._last.items() if t - beat > self.timeout]
