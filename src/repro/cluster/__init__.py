"""repro.cluster — local-first, fault-tolerant parallel task execution.

The paper's experiment grids (Figs. 4-8), the Fig. 2/3 evolution traces
and the island-model GA are all embarrassingly (or nearly) parallel:
coarse, picklable units of work whose random streams derive from a root
seed, never from worker identity or wall clock.  This package runs such
work across a pool of supervised worker processes with

* a dependency-aware :class:`~repro.cluster.scheduler.Scheduler` holding
  :class:`~repro.cluster.task.TaskSpec` units,
* heartbeat-based supervision that detects crashed or hung workers and
  requeues their in-flight task up to ``max_retries``,
* a durable JSONL :class:`~repro.cluster.checkpoint.Checkpoint` journal
  so interrupted runs resume bit-for-bit, and
* a :class:`~repro.cluster.metrics.ClusterMetrics` surface (live one-line
  status, JSON dump).

See ``docs/cluster.md`` for the architecture and determinism contract.
"""

from repro.cluster.checkpoint import Checkpoint
from repro.cluster.heartbeat import HeartbeatMonitor
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.scheduler import ClusterConfig, Scheduler, run_tasks
from repro.cluster.task import TaskFailure, TaskOutcome, TaskSpec, TaskState

__all__ = [
    "TaskSpec",
    "TaskOutcome",
    "TaskState",
    "TaskFailure",
    "Checkpoint",
    "HeartbeatMonitor",
    "ClusterMetrics",
    "ClusterConfig",
    "Scheduler",
    "run_tasks",
]
