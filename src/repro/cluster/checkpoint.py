"""Durable progress: a JSONL journal of completed tasks.

Each completed task appends one self-contained line ``{"key", "seed",
"retries", "elapsed", "run_elapsed", "result"}``; a run interrupted at
any point (even
mid-line — the torn tail is ignored on load) can therefore be resumed by
re-submitting the same specs: journaled keys are restored without
re-execution, everything else runs.

Fidelity matters more than compactness here: results restored from the
journal must be **bit-for-bit** equal to freshly computed ones, so cells
finished before and after an interruption are indistinguishable.  Python
floats survive ``json`` round-trips exactly (``repr`` is the shortest
round-tripping decimal), so encoders only need to reduce payloads to
JSON-compatible trees of str/int/float/list/dict — see
:func:`repro.io.json_io.report_to_dict` for the experiment payloads.

A header line pins the journal to one logical run (``run_id``): resuming
a ``seed=7`` grid from a ``seed=42`` journal is an error, not silent
corruption.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Callable

__all__ = ["Checkpoint"]

_FORMAT = "repro.checkpoint"
_VERSION = 1


class Checkpoint:
    """Append-only JSONL journal of task results.

    Parameters
    ----------
    path:
        Journal file; parent directories are created on first write.
    run_id:
        Stable identifier of the logical run (derive it from everything
        that determines results: experiment name, seed, scale, sweep
        axes).  ``load`` raises on mismatch with an existing journal.
    encode / decode:
        Payload codecs: ``encode(result)`` must return a JSON-compatible
        tree, ``decode(tree)`` must invert it exactly.  Default identity.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        *,
        run_id: str | None = None,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.run_id = run_id
        self._encode = encode or (lambda x: x)
        self._decode = decode or (lambda x: x)
        self._file = None
        #: Run-level wall time accumulated by the interrupted attempts this
        #: journal records (max over per-record ``run_elapsed`` stamps);
        #: populated by :meth:`load`, consumed by the scheduler so resumed
        #: runs report monotonic elapsed/throughput metrics.
        self.run_elapsed: float = 0.0
        #: Summed task execution seconds of the journaled (restorable)
        #: records; populated by :meth:`load`.
        self.busy_elapsed: float = 0.0

    def load(self) -> dict[str, Any]:
        """Read the journal, returning ``{key: decoded_result}``.

        Missing file yields ``{}``.  A torn final line (crash mid-append)
        is skipped silently; a later record for the same key wins (a task
        journaled twice across an interrupted run is harmless).
        """
        if not self.path.exists():
            return {}
        results: dict[str, Any] = {}
        task_elapsed: dict[str, float] = {}
        header_seen = False
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from an interrupted append
                if not header_seen:
                    header_seen = True
                    if record.get("format") != _FORMAT:
                        raise ValueError(
                            f"{self.path} is not a repro checkpoint journal"
                        )
                    if record.get("version") != _VERSION:
                        raise ValueError(
                            f"unsupported checkpoint version {record.get('version')}"
                        )
                    old = record.get("run_id")
                    if (
                        self.run_id is not None
                        and old is not None
                        and old != self.run_id
                    ):
                        raise ValueError(
                            f"checkpoint {self.path} belongs to run {old!r}, "
                            f"not {self.run_id!r}; refusing to resume"
                        )
                    continue
                if "key" in record:
                    results[record["key"]] = self._decode(record["result"])
                    task_elapsed[record["key"]] = float(
                        record.get("elapsed", 0.0) or 0.0
                    )
                    self.run_elapsed = max(
                        self.run_elapsed,
                        float(record.get("run_elapsed", 0.0) or 0.0),
                    )
        self.busy_elapsed = sum(task_elapsed.values())
        return results

    def record(
        self,
        key: str,
        result: Any,
        *,
        seed: int | tuple[int, ...] | None = None,
        retries: int = 0,
        elapsed: float = 0.0,
        run_elapsed: float = 0.0,
    ) -> None:
        """Append one completed task, flushed and fsynced for durability.

        ``run_elapsed`` stamps the record with the run-level wall time at
        append (including any pre-resume attempts), so a later resume can
        continue the clock instead of restarting it from zero.
        """
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._file = self.path.open("a", encoding="utf-8")
            if fresh:
                header = {
                    "format": _FORMAT,
                    "version": _VERSION,
                    "run_id": self.run_id,
                }
                self._file.write(json.dumps(header) + "\n")
        line = json.dumps(
            {
                "key": key,
                "seed": seed,
                "retries": retries,
                "elapsed": elapsed,
                "run_elapsed": run_elapsed,
                "result": self._encode(result),
            }
        )
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Close the append handle (load/record may still be called again)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
