"""Task units: the picklable work descriptions the scheduler executes.

A :class:`TaskSpec` is a pure description — a module-level function plus
arguments — so it can cross a process boundary.  Determinism is part of
the contract: the function's random streams must derive from the spec's
arguments (typically :class:`numpy.random.SeedSequence` spawn keys rooted
at an experiment seed; see :mod:`repro.utils.rng`), never from worker
identity, task placement or wall clock.  The optional ``seed`` field
records that derivation material in the checkpoint journal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

__all__ = ["TaskSpec", "TaskState", "TaskOutcome", "TaskFailure"]


class TaskState(enum.Enum):
    """Lifecycle of a task inside one scheduler run."""

    PENDING = "pending"      # waiting on dependencies
    READY = "ready"          # dispatchable
    RUNNING = "running"      # assigned to a worker
    DONE = "done"            # result available
    FAILED = "failed"        # retry budget exhausted (or dependency failed)


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work.

    Attributes
    ----------
    key:
        Unique, stable identifier; also the checkpoint journal key, so it
        must be identical across runs for ``--resume`` to recognise
        finished work.
    fn:
        Module-level (picklable) callable executed as ``fn(*args,
        **kwargs)`` — or ``fn(dep_results, *args, **kwargs)`` when
        ``pass_dep_results`` is set, with ``dep_results`` a dict mapping
        each key in ``deps`` to that task's result.
    args / kwargs:
        Positional / keyword arguments (picklable).
    seed:
        Deterministic seed material (int or tuple of ints) recorded in
        the journal; informational — the function must already derive its
        streams from its arguments.
    max_retries:
        How many times the task may be re-executed after a crash, a hang
        or an exception before it is marked permanently failed.
    deps:
        Keys of tasks that must complete before this one may start.
    pass_dep_results:
        Prepend the dependency-results dict to the call (see ``fn``).
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: int | tuple[int, ...] | None = None
    max_retries: int = 2
    deps: tuple[str, ...] = ()
    pass_dep_results: bool = False

    def __post_init__(self) -> None:
        if not self.key or not isinstance(self.key, str):
            raise ValueError(f"task key must be a non-empty string, got {self.key!r}")
        if not callable(self.fn):
            raise TypeError(f"task fn must be callable, got {self.fn!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "deps", tuple(self.deps))
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        if self.key in self.deps:
            raise ValueError(f"task {self.key!r} depends on itself")


@dataclass
class TaskOutcome:
    """What happened to one task during a scheduler run.

    ``state`` is ``DONE`` (with ``result``) or ``FAILED`` (with ``error``,
    the last traceback or supervision reason).  ``retries`` counts
    re-executions beyond the first attempt; ``worker`` is the id of the
    worker that produced the final attempt (``None`` for in-process or
    checkpoint-restored results); ``from_checkpoint`` marks results
    restored from the journal without re-execution.
    """

    key: str
    state: TaskState
    result: Any = None
    error: str | None = None
    retries: int = 0
    worker: int | None = None
    duration: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        """True when the task completed and ``result`` is valid."""
        return self.state is TaskState.DONE


class TaskFailure(RuntimeError):
    """Raised by strict consumers when tasks failed permanently."""

    def __init__(self, outcomes: Sequence[TaskOutcome]) -> None:
        self.outcomes = list(outcomes)
        keys = ", ".join(o.key for o in self.outcomes[:5])
        more = "" if len(self.outcomes) <= 5 else f" (+{len(self.outcomes) - 5} more)"
        first = self.outcomes[0].error or "unknown error"
        super().__init__(
            f"{len(self.outcomes)} task(s) failed permanently: {keys}{more}\n"
            f"first failure:\n{first}"
        )
