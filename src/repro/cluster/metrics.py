"""Run metrics: queue counters, worker utilization, throughput.

One :class:`ClusterMetrics` instance lives per scheduler run.  The
scheduler mutates the counters as tasks move through their lifecycle;
consumers read them three ways: the live :meth:`status_line` (one line,
suitable for overwriting terminal output), the structured
:meth:`snapshot` dict, and :meth:`dump` to a JSON file.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field

__all__ = ["ClusterMetrics"]


@dataclass
class ClusterMetrics:
    """Counters and rates of one scheduler run.

    Attributes
    ----------
    n_tasks:
        Total tasks submitted (including checkpoint-restored ones).
    queued / running / done / failed:
        Current queue occupancy by state; ``done + failed + queued +
        running == n_tasks`` at all times.
    retried:
        Total re-executions caused by crashes, hangs or exceptions.
    restored:
        Tasks skipped because the checkpoint already held their result.
    n_workers:
        Worker-pool size (0 for in-process execution).  Live while the
        pool runs; after the run it keeps the final pool size so dumped
        snapshots record what executed.
    respawns:
        Replacement workers started after crashes/hangs.
    busy_seconds:
        Summed wall-clock seconds workers spent executing tasks.
    prior_elapsed:
        Run time accumulated by earlier (interrupted) attempts of the
        same logical run, carried through the checkpoint journal on
        ``--resume`` so :attr:`elapsed` and :attr:`throughput` describe
        the whole run, not just the post-restart slice.
    """

    n_tasks: int = 0
    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    retried: int = 0
    restored: int = 0
    n_workers: int = 0
    respawns: int = 0
    busy_seconds: float = 0.0
    prior_elapsed: float = 0.0
    _started: float = field(default_factory=time.perf_counter, repr=False)

    @property
    def elapsed(self) -> float:
        """Seconds of run time, including pre-resume attempts."""
        return self.prior_elapsed + (time.perf_counter() - self._started)

    @property
    def throughput(self) -> float:
        """Completed tasks per second of run time (includes restored)."""
        t = self.elapsed
        return self.done / t if t > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of worker-seconds spent computing (0 when poolless)."""
        denom = self.elapsed * self.n_workers
        return min(self.busy_seconds / denom, 1.0) if denom > 0 else 0.0

    def status_line(self) -> str:
        """Live one-line status, e.g. for a ``progress`` callback."""
        parts = [
            f"cluster {self.done}/{self.n_tasks} done",
            f"{self.running} running",
            f"{self.queued} queued",
        ]
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.restored:
            parts.append(f"{self.restored} restored")
        if self.n_workers:
            parts.append(
                f"{self.n_workers} workers ({self.utilization:.0%} busy)"
            )
        parts.append(f"{self.throughput:.2f} tasks/s")
        return " | ".join(parts)

    def snapshot(self) -> dict:
        """JSON-ready dict of every counter and derived rate."""
        return {
            "n_tasks": self.n_tasks,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "failed": self.failed,
            "retried": self.retried,
            "restored": self.restored,
            "n_workers": self.n_workers,
            "respawns": self.respawns,
            "busy_seconds": self.busy_seconds,
            "prior_elapsed_seconds": self.prior_elapsed,
            "elapsed_seconds": self.elapsed,
            "throughput_per_s": self.throughput,
            "utilization": self.utilization,
        }

    def dump(self, path: str | pathlib.Path) -> None:
        """Write :meth:`snapshot` to *path* as indented JSON."""
        pathlib.Path(path).write_text(json.dumps(self.snapshot(), indent=1))
