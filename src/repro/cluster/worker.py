"""Worker process: pull tasks over a pipe, compute, heartbeat.

Each worker owns one duplex pipe to the scheduler.  The main thread
blocks on ``recv`` for task messages and executes them; a daemon thread
beats every ``heartbeat_interval`` seconds so the scheduler can tell
"busy computing" from "wedged or gone".  All sends share one lock — a
pipe is not thread-safe between the beat thread and result sends.

Message protocol (tuples, first element is the kind):

scheduler -> worker
    ``("task", key, fn, args, kwargs, dep_results)``
    ``("stop",)``

worker -> scheduler
    ``("ready", worker_id)``              once, after startup
    ``("heartbeat", worker_id)``          every interval
    ``("result", worker_id, key, result, duration)``
    ``("error", worker_id, key, traceback_str, duration)``

Task exceptions are caught and reported as ``error`` messages — the
worker survives and pulls the next task; retry policy lives in the
scheduler.  Only a crash (signal, OOM kill, interpreter abort) or a hang
takes a worker down, and the scheduler detects both.
"""

from __future__ import annotations

import threading
import time
import traceback

__all__ = ["worker_main"]


def worker_main(conn, worker_id: int, heartbeat_interval: float) -> None:
    """Entry point of one worker process (module-level: spawn-safe)."""
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def _send(message: tuple) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False  # scheduler is gone; exit quietly

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            if not _send(("heartbeat", worker_id)):
                return

    beater = threading.Thread(target=_beat, name="heartbeat", daemon=True)
    beater.start()
    _send(("ready", worker_id))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, key, fn, args, kwargs, dep_results = message
            start = time.perf_counter()
            try:
                if dep_results is not None:
                    result = fn(dep_results, *args, **kwargs)
                else:
                    result = fn(*args, **kwargs)
            except BaseException:
                duration = time.perf_counter() - start
                if not _send(
                    ("error", worker_id, key, traceback.format_exc(), duration)
                ):
                    break
            else:
                duration = time.perf_counter() - start
                if not _send(("result", worker_id, key, result, duration)):
                    break
    finally:
        stop_beating.set()
        try:
            conn.close()
        except OSError:
            pass
