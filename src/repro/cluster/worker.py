"""Worker process: pull tasks over a pipe, compute, heartbeat.

Each worker owns one duplex pipe to the scheduler.  The main thread
blocks on ``recv`` for task messages and executes them; a daemon thread
beats every ``heartbeat_interval`` seconds so the scheduler can tell
"busy computing" from "wedged or gone".  All sends share one lock — a
pipe is not thread-safe between the beat thread and result sends.

Message protocol (tuples, first element is the kind):

scheduler -> worker
    ``("task", key, fn, args, kwargs, dep_results, trace)``
    ``("stop",)``

worker -> scheduler
    ``("ready", worker_id)``              once, after startup
    ``("heartbeat", worker_id)``          every interval
    ``("result", worker_id, key, result, duration, events)``
    ``("error", worker_id, key, traceback_str, duration, events)``

``trace`` asks the worker to run the task under a local in-memory
observability session (:mod:`repro.obs`); ``events`` ships the captured
span/event/metric records back (``None`` when tracing was off), and the
scheduler splices them into its own trace under the run span.

Task exceptions are caught and reported as ``error`` messages — the
worker survives and pulls the next task; retry policy lives in the
scheduler.  Only a crash (signal, OOM kill, interpreter abort) or a hang
takes a worker down, and the scheduler detects both.
"""

from __future__ import annotations

import threading
import time
import traceback

__all__ = ["worker_main"]


def _run_traced(key, fn, args, kwargs, dep_results):
    """Execute one task under a local obs session.

    Returns ``(result, error_traceback_or_None, events)``.  Capture is
    best-effort: the session is torn down even when the task raises, and
    whatever was recorded up to the exception still ships back (the
    ``cluster.task`` span closes with error status).
    """
    from repro.obs import runtime as obs
    from repro.obs.sinks import InMemorySink

    session = obs.enable(InMemorySink())
    result = error = None
    try:
        try:
            with obs.trace("cluster.task", key=key):
                if dep_results is not None:
                    result = fn(dep_results, *args, **kwargs)
                else:
                    result = fn(*args, **kwargs)
        except BaseException:
            error = traceback.format_exc()
        events = session.drain_records()
    finally:
        obs.disable()
    return result, error, events


def worker_main(conn, worker_id: int, heartbeat_interval: float) -> None:
    """Entry point of one worker process (module-level: spawn-safe)."""
    from repro.obs import runtime as obs_runtime

    obs_runtime.reset_inherited()  # a fork-inherited session is the parent's
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def _send(message: tuple) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False  # scheduler is gone; exit quietly

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            if not _send(("heartbeat", worker_id)):
                return

    beater = threading.Thread(target=_beat, name="heartbeat", daemon=True)
    beater.start()
    _send(("ready", worker_id))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, key, fn, args, kwargs, dep_results, want_trace = message
            start = time.perf_counter()
            if want_trace:
                result, error, events = _run_traced(
                    key, fn, args, kwargs, dep_results
                )
                duration = time.perf_counter() - start
                if error is not None:
                    message = ("error", worker_id, key, error, duration, events)
                else:
                    message = ("result", worker_id, key, result, duration, events)
                if not _send(message):
                    break
                continue
            try:
                if dep_results is not None:
                    result = fn(dep_results, *args, **kwargs)
                else:
                    result = fn(*args, **kwargs)
            except BaseException:
                duration = time.perf_counter() - start
                if not _send(
                    (
                        "error",
                        worker_id,
                        key,
                        traceback.format_exc(),
                        duration,
                        None,
                    )
                ):
                    break
            else:
                duration = time.perf_counter() - start
                if not _send(
                    ("result", worker_id, key, result, duration, None)
                ):
                    break
    finally:
        stop_beating.set()
        try:
            conn.close()
        except OSError:
            pass
