"""The scheduler: dependency-aware queue + supervised worker pool.

The shape follows the classic scheduler/worker split (cf. dask
``distributed``): one process owns all state — task graph, queue, retry
budgets, checkpoint journal — and workers are dumb loops that pull a
task over a pipe, compute, and answer.  Supervision is pessimistic:

* a **crashed** worker (SIGKILL, OOM, interpreter abort) is noticed via
  its broken pipe and dead process handle;
* a **hung** worker (no heartbeat for ``heartbeat_timeout`` seconds — the
  beat runs on a daemon thread, so a busy worker still beats) is killed;

in both cases the worker's in-flight task goes back to the front of the
queue (its retry counter incremented), a replacement worker is spawned,
and the run continues.  A task whose retry budget is exhausted — or that
keeps raising — is marked permanently :attr:`~TaskState.FAILED`, its
dependents are failed transitively, and the rest of the run proceeds:
one poison cell never sinks a grid.

Determinism: the scheduler never injects randomness.  Task functions
derive their streams from their arguments (root seed + stable spawn
keys), so results are bit-identical whether a task ran serially, on any
worker, first try or third retry — which is also what makes checkpoint
restore (`--resume`) exact.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_conns
from typing import Any, Callable, Iterable, Sequence

from repro.cluster.checkpoint import Checkpoint
from repro.cluster.heartbeat import HeartbeatMonitor
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.task import TaskFailure, TaskOutcome, TaskSpec, TaskState
from repro.cluster.worker import worker_main
from repro.obs import runtime as obs

__all__ = ["ClusterConfig", "Scheduler", "run_tasks"]


@dataclass(frozen=True)
class ClusterConfig:
    """Pool-level knobs.

    Attributes
    ----------
    n_workers:
        Worker processes; ``<= 1`` executes in-process (no pool, no
        pickling) — the bit-identical serial path.
    heartbeat_interval:
        Seconds between worker heartbeats.
    heartbeat_timeout:
        Silence after which a worker is declared hung and killed;
        ``None`` disables hang detection (crashes are still caught).
    poll_interval:
        Scheduler event-loop wait granularity in seconds.
    mp_context:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/...),
        ``None`` for the platform default.
    """

    n_workers: int = 1
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float | None = 30.0
    poll_interval: float = 0.05
    mp_context: str | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout is not None and (
            self.heartbeat_timeout <= self.heartbeat_interval
        ):
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({self.heartbeat_timeout} <= {self.heartbeat_interval})"
            )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


class _WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = ("id", "proc", "conn", "current", "busy_since")

    def __init__(self, wid: int, proc, conn) -> None:
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.current: str | None = None  # key of the in-flight task
        self.busy_since: float = 0.0


class Scheduler:
    """Run a batch of :class:`TaskSpec` with fault tolerance.

    Parameters
    ----------
    config:
        Pool configuration (default: in-process execution).
    checkpoint:
        Optional :class:`~repro.cluster.checkpoint.Checkpoint`; already
        journaled keys are restored without re-execution and every new
        completion is appended.
    progress:
        Optional ``progress(line: str)`` — called with the live metrics
        status line whenever a task finishes, fails or is retried.
    on_done:
        Optional ``on_done(spec, outcome)`` — called for every task that
        reaches a terminal state (including checkpoint restores), in the
        order states are reached.  Use it for domain-specific progress.

    After :meth:`run` returns, :attr:`metrics` holds the run's counters.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        checkpoint: Checkpoint | None = None,
        progress: Callable[[str], None] | None = None,
        on_done: Callable[[TaskSpec, TaskOutcome], None] | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.checkpoint = checkpoint
        self.progress = progress
        self.on_done = on_done
        self.metrics = ClusterMetrics()
        self._incremental = False
        self._completed_log: list[str] | None = None

    # ------------------------------------------------------------------ setup

    def _validate(self, specs: Sequence[TaskSpec]) -> None:
        seen: set[str] = set()
        for spec in specs:
            if spec.key in seen:
                raise ValueError(f"duplicate task key {spec.key!r}")
            seen.add(spec.key)
        for spec in specs:
            for dep in spec.deps:
                if dep not in seen:
                    raise ValueError(
                        f"task {spec.key!r} depends on unknown task {dep!r}"
                    )
        # Kahn's algorithm: every task must be reachable from the roots.
        pending = {s.key: len(s.deps) for s in specs}
        dependents: dict[str, list[str]] = {s.key: [] for s in specs}
        for s in specs:
            for dep in s.deps:
                dependents[dep].append(s.key)
        frontier = [k for k, n in pending.items() if n == 0]
        visited = 0
        while frontier:
            key = frontier.pop()
            visited += 1
            for child in dependents[key]:
                pending[child] -= 1
                if pending[child] == 0:
                    frontier.append(child)
        if visited != len(specs):
            cyclic = sorted(k for k, n in pending.items() if n > 0)
            raise ValueError(f"dependency cycle among tasks: {cyclic[:5]}")

    # ------------------------------------------------------------------- run

    def run(self, specs: Iterable[TaskSpec]) -> dict[str, TaskOutcome]:
        """Execute all specs; returns ``{key: TaskOutcome}`` in spec order.

        Never raises on task failure — inspect the outcomes (or use
        :func:`run_tasks` for raise-on-failure semantics).
        """
        if self._incremental:
            raise RuntimeError(
                "an incremental submit/poll session is open; close() it "
                "before calling the batch run()"
            )
        specs = list(specs)
        self._validate(specs)
        self._completed_log = None
        self.metrics = ClusterMetrics()
        self.metrics.n_tasks = len(specs)
        self.metrics.queued = len(specs)

        self._specs = {s.key: s for s in specs}
        self._order = [s.key for s in specs]
        self._outcomes: dict[str, TaskOutcome] = {}
        self._retries: dict[str, int] = {k: 0 for k in self._specs}
        self._waiting = {s.key: {d for d in s.deps} for s in specs}
        self._dependents: dict[str, list[str]] = {k: [] for k in self._specs}
        for s in specs:
            for dep in s.deps:
                self._dependents[dep].append(s.key)
        self._ready: deque[str] = deque(
            k for k in self._order if not self._waiting[k]
        )

        with obs.trace(
            "cluster.run",
            n_tasks=len(specs),
            n_workers=self.config.n_workers,
        ) as run_span:
            self._restore_from_checkpoint()

            if not self._unfinished():
                pass
            elif self.config.n_workers <= 1:
                self._run_serial()
            else:
                self._run_pool()

            if self.checkpoint is not None:
                self.checkpoint.close()
            if obs.enabled():
                snap = self.metrics.snapshot()
                run_span.set(
                    done=snap["done"],
                    failed=snap["failed"],
                    retried=snap["retried"],
                    restored=snap["restored"],
                )
                for name, value in snap.items():
                    obs.set_gauge(f"cluster.{name}", float(value))
        return {k: self._outcomes[k] for k in self._order}

    def _unfinished(self) -> int:
        return len(self._specs) - len(self._outcomes)

    # ------------------------------------------------------------ checkpoint

    def _restore_from_checkpoint(self) -> None:
        if self.checkpoint is None:
            return
        stored = self.checkpoint.load()
        # Carry the interrupted attempts' clocks forward so elapsed,
        # throughput and utilization stay monotonic across --resume.
        self.metrics.prior_elapsed = self.checkpoint.run_elapsed
        self.metrics.busy_seconds += self.checkpoint.busy_elapsed
        for key in self._order:
            if key in stored and key not in self._outcomes:
                self.metrics.restored += 1
                self._finish(
                    TaskOutcome(
                        key=key,
                        state=TaskState.DONE,
                        result=stored[key],
                        from_checkpoint=True,
                    ),
                    journal=False,
                )

    # ------------------------------------------------------- state machinery

    def _finish(self, outcome: TaskOutcome, *, journal: bool = True) -> None:
        """Record a terminal state and unlock (or fail) dependents."""
        key = outcome.key
        self._outcomes[key] = outcome
        if self._completed_log is not None:
            self._completed_log.append(key)
        self.metrics.queued = max(self.metrics.queued - 1, 0)
        if outcome.state is TaskState.DONE:
            self.metrics.done += 1
            if not outcome.from_checkpoint:
                obs.observe("cluster.task_seconds", outcome.duration)
            if journal and self.checkpoint is not None:
                spec = self._specs[key]
                self.checkpoint.record(
                    key,
                    outcome.result,
                    seed=spec.seed,
                    retries=outcome.retries,
                    elapsed=outcome.duration,
                    run_elapsed=self.metrics.elapsed,
                )
                obs.event("cluster.checkpoint_append", key=key)
            for child in self._dependents[key]:
                waiting = self._waiting[child]
                waiting.discard(key)
                if not waiting and child not in self._outcomes:
                    self._ready.append(child)
        else:
            self.metrics.failed += 1
            for child in self._dependents[key]:
                if child not in self._outcomes:
                    self._finish(
                        TaskOutcome(
                            key=child,
                            state=TaskState.FAILED,
                            error=f"dependency {key!r} failed",
                            retries=self._retries[child],
                        )
                    )
        if self.on_done is not None:
            self.on_done(self._specs[key], outcome)
        if self.progress is not None:
            self.progress(self.metrics.status_line())

    def _dep_results(self, spec: TaskSpec) -> dict[str, Any] | None:
        if not spec.pass_dep_results:
            return None
        return {d: self._outcomes[d].result for d in spec.deps}

    def _next_ready(self) -> str | None:
        while self._ready:
            key = self._ready.popleft()
            if key not in self._outcomes:  # skip late-completed requeues
                return key
        return None

    def _record_failure(self, key: str, error: str, worker: int | None) -> None:
        obs.event("cluster.task_failed", key=key, worker=worker)
        self._finish(
            TaskOutcome(
                key=key,
                state=TaskState.FAILED,
                error=error,
                retries=self._retries[key],
                worker=worker,
            )
        )

    def _retry_or_fail(self, key: str, error: str, worker: int | None) -> None:
        """Crash/exception on attempt: requeue within budget, else fail."""
        self._retries[key] += 1
        if self._retries[key] <= self._specs[key].max_retries:
            self.metrics.retried += 1
            self._ready.appendleft(key)
            obs.event(
                "cluster.requeue",
                key=key,
                attempt=self._retries[key],
                worker=worker,
            )
            if self.progress is not None:
                self.progress(self.metrics.status_line())
        else:
            # The final increment was the denied retry, not an execution.
            self._retries[key] -= 1
            self._record_failure(key, error, worker)

    # ------------------------------------------------- incremental submit/poll

    def _ensure_incremental(self) -> None:
        if self._incremental:
            return
        self._incremental = True
        self._specs = {}
        self._order = []
        self._outcomes = {}
        self._retries = {}
        self._waiting = {}
        self._dependents = {}
        self._ready = deque()
        self._completed_log = []
        self._delivered = 0
        self._pool_ctx = None
        self.metrics = ClusterMetrics()

    def submit(self, spec: TaskSpec) -> None:
        """Queue one task without blocking (incremental mode).

        Unlike the batch :meth:`run`, tasks arrive one at a time and
        results are collected with :meth:`poll`; the session ends with
        :meth:`close`.  Dependencies must refer to keys submitted
        earlier (which also rules out cycles).  A task whose dependency
        already failed is failed immediately, surfacing on the next
        :meth:`poll`.
        """
        self._ensure_incremental()
        if spec.key in self._specs:
            raise ValueError(f"duplicate task key {spec.key!r}")
        missing = [d for d in spec.deps if d not in self._specs]
        if missing:
            raise ValueError(
                f"task {spec.key!r} depends on unknown task {missing[0]!r} "
                "(incremental deps must be submitted first)"
            )
        self._specs[spec.key] = spec
        self._order.append(spec.key)
        self._retries[spec.key] = 0
        self._waiting[spec.key] = {
            d for d in spec.deps if d not in self._outcomes
        }
        self._dependents[spec.key] = []
        for dep in spec.deps:
            self._dependents[dep].append(spec.key)
        self.metrics.n_tasks += 1
        self.metrics.queued += 1
        failed_dep = next(
            (d for d in spec.deps if d in self._outcomes and not self._outcomes[d].ok),
            None,
        )
        if failed_dep is not None:
            self._finish(
                TaskOutcome(
                    key=spec.key,
                    state=TaskState.FAILED,
                    error=f"dependency {failed_dep!r} failed",
                )
            )
        elif not self._waiting[spec.key]:
            self._ready.append(spec.key)
        if self.config.n_workers > 1:
            self._ensure_pool()
            self._dispatch()

    def poll(self, timeout: float = 0.0) -> list[TaskOutcome]:
        """Advance the run and return outcomes that became terminal.

        With ``n_workers <= 1`` this executes at most **one** ready task
        inline (blocking for its duration — the bit-identical serial
        path).  With a pool it dispatches ready tasks, pumps worker
        messages and sweeps liveness until something completes or
        *timeout* seconds have elapsed (each pump waits one
        ``poll_interval`` tick).  Every terminal outcome is returned
        exactly once across successive calls.
        """
        self._ensure_incremental()
        if self.config.n_workers <= 1:
            key = self._next_ready()
            if key is not None:
                self._execute_inline(key)
        elif self._unfinished():
            self._ensure_pool()
            deadline = time.monotonic() + max(timeout, 0.0)
            while True:
                self._dispatch()
                self._pump_messages()
                self._sweep_liveness(self._pool_ctx)
                if (
                    len(self._completed_log) > self._delivered
                    or time.monotonic() >= deadline
                    or not self._unfinished()
                ):
                    break
        new = [
            self._outcomes[k] for k in self._completed_log[self._delivered:]
        ]
        self._delivered = len(self._completed_log)
        return new

    def pending(self) -> int:
        """Tasks submitted but not yet terminal (incremental mode)."""
        if not self._incremental:
            return 0
        return self._unfinished()

    def close(self) -> None:
        """End an incremental session: stop workers, close the journal."""
        if not self._incremental:
            return
        if getattr(self, "_pool_ctx", None) is not None and getattr(
            self, "_workers", None
        ):
            self._shutdown_pool()
        if self.checkpoint is not None:
            self.checkpoint.close()
        self._incremental = False
        self._completed_log = None

    def _ensure_pool(self) -> None:
        if self._pool_ctx is None:
            self._pool_ctx = mp.get_context(self.config.mp_context)
            self._workers = {}
            self._next_worker_id = 0
            self._monitor = HeartbeatMonitor(timeout=self.config.heartbeat_timeout)
        while len(self._workers) < min(self.config.n_workers, self._unfinished()):
            self._spawn_worker(self._pool_ctx)

    # ------------------------------------------------------------ serial path

    def _run_serial(self) -> None:
        """In-process execution: same order, same streams, no pickling."""
        while True:
            key = self._next_ready()
            if key is None:
                break
            self._execute_inline(key)

    def _execute_inline(self, key: str) -> None:
        """Run one ready task to completion in this process."""
        import traceback

        spec = self._specs[key]
        dep_results = self._dep_results(spec)
        self.metrics.running = 1
        start = time.perf_counter()
        try:
            with obs.trace("cluster.task", key=key):
                if dep_results is not None:
                    result = spec.fn(dep_results, *spec.args, **spec.kwargs)
                else:
                    result = spec.fn(*spec.args, **spec.kwargs)
        except Exception:
            self.metrics.running = 0
            self._retry_or_fail(key, traceback.format_exc(), None)
            return
        self.metrics.running = 0
        duration = time.perf_counter() - start
        self.metrics.busy_seconds += duration
        self._finish(
            TaskOutcome(
                key=key,
                state=TaskState.DONE,
                result=result,
                retries=self._retries[key],
                duration=duration,
            )
        )

    # -------------------------------------------------------------- pool path

    def _run_pool(self) -> None:
        ctx = mp.get_context(self.config.mp_context)
        self._workers: dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._monitor = HeartbeatMonitor(timeout=self.config.heartbeat_timeout)
        try:
            for _ in range(min(self.config.n_workers, self._unfinished())):
                self._spawn_worker(ctx)
            while self._unfinished():
                self._dispatch()
                self._pump_messages()
                self._sweep_liveness(ctx)
        finally:
            self._shutdown_pool()

    def _spawn_worker(self, ctx) -> None:
        wid = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, wid, self.config.heartbeat_interval),
            name=f"repro-cluster-worker-{wid}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only its end, so EOF is detectable
        self._workers[wid] = _WorkerHandle(wid, proc, parent_conn)
        self._monitor.register(wid)
        self.metrics.n_workers = len(self._workers)
        obs.event("cluster.worker_spawn", worker=wid)

    def _dispatch(self) -> None:
        for handle in self._workers.values():
            if handle.current is not None:
                continue
            key = self._next_ready()
            if key is None:
                break
            spec = self._specs[key]
            try:
                handle.conn.send(
                    (
                        "task",
                        key,
                        spec.fn,
                        spec.args,
                        spec.kwargs,
                        self._dep_results(spec),
                        obs.enabled(),
                    )
                )
            except (BrokenPipeError, OSError):
                self._ready.appendleft(key)  # worker died before dispatch
                self._on_worker_lost(handle, "worker pipe closed at dispatch")
                break
            handle.current = key
            handle.busy_since = time.monotonic()
            self.metrics.running = sum(
                1 for w in self._workers.values() if w.current is not None
            )

    def _pump_messages(self) -> None:
        conns = {w.conn: w for w in self._workers.values()}
        if not conns:
            time.sleep(self.config.poll_interval)
            return
        for conn in _wait_conns(list(conns), timeout=self.config.poll_interval):
            handle = conns[conn]
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_lost(handle, "worker connection lost")
                    break
                self._monitor.beat(handle.id)
                kind = message[0]
                if kind in ("heartbeat", "ready"):
                    continue
                _, wid, key, payload, duration, events = message
                self.metrics.busy_seconds += duration
                obs.ingest(events)
                if handle.current == key:
                    handle.current = None
                if key in self._outcomes:
                    continue  # late duplicate after a presumed-lost worker
                if kind == "result":
                    self._finish(
                        TaskOutcome(
                            key=key,
                            state=TaskState.DONE,
                            result=payload,
                            retries=self._retries[key],
                            worker=wid,
                            duration=duration,
                        )
                    )
                else:  # "error": the task raised; worker itself is fine
                    self._retry_or_fail(key, payload, wid)
        self.metrics.running = sum(
            1 for w in self._workers.values() if w.current is not None
        )

    def _sweep_liveness(self, ctx) -> None:
        lost: list[tuple[_WorkerHandle, str]] = []
        for handle in self._workers.values():
            if not handle.proc.is_alive():
                code = handle.proc.exitcode
                lost.append((handle, f"worker process died (exit code {code})"))
        for wid in self._monitor.overdue():
            handle = self._workers.get(wid)
            if handle is not None and handle.proc.is_alive():
                obs.event("cluster.heartbeat_miss", worker=wid)
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
                lost.append(
                    (
                        handle,
                        f"worker hung (no heartbeat for "
                        f"{self.config.heartbeat_timeout:g}s), killed",
                    )
                )
        for handle, reason in lost:
            self._on_worker_lost(handle, reason)
        # Keep the pool at strength while useful work remains.
        while len(self._workers) < min(self.config.n_workers, self._unfinished()):
            self.metrics.respawns += 1
            self._spawn_worker(ctx)

    def _on_worker_lost(self, handle: _WorkerHandle, reason: str) -> None:
        """Retire a dead/hung worker, requeueing its in-flight task."""
        if handle.id not in self._workers:
            return  # already retired via another detection path
        obs.event("cluster.worker_lost", worker=handle.id, reason=reason)
        # Drain any result that raced with the crash (sent, then died).
        try:
            while handle.conn.poll():
                message = handle.conn.recv()
                if message[0] in ("result", "error"):
                    _, wid, key, payload, duration, events = message
                    if handle.current == key:
                        handle.current = None
                    if key not in self._outcomes and message[0] == "result":
                        self.metrics.busy_seconds += duration
                        obs.ingest(events)
                        self._finish(
                            TaskOutcome(
                                key=key,
                                state=TaskState.DONE,
                                result=payload,
                                retries=self._retries[key],
                                worker=wid,
                                duration=duration,
                            )
                        )
        except (EOFError, OSError):
            pass
        del self._workers[handle.id]
        self._monitor.forget(handle.id)
        self.metrics.n_workers = len(self._workers)
        try:
            handle.conn.close()
        except OSError:
            pass
        if not handle.proc.is_alive():
            handle.proc.join(timeout=1.0)
        if handle.current is not None and handle.current not in self._outcomes:
            self._retry_or_fail(handle.current, reason, handle.id)

    def _shutdown_pool(self) -> None:
        for handle in self._workers.values():
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for handle in self._workers.values():
            handle.proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        # metrics.n_workers keeps the final pool size so post-run
        # snapshots (--metrics-json) record what actually executed.
        self._workers = {}
        self.metrics.running = 0


def run_tasks(
    specs: Iterable[TaskSpec],
    *,
    n_workers: int = 1,
    checkpoint: Checkpoint | None = None,
    progress: Callable[[str], None] | None = None,
    on_done: Callable[[TaskSpec, TaskOutcome], None] | None = None,
    config: ClusterConfig | None = None,
) -> dict[str, TaskOutcome]:
    """Convenience front door: run specs, raise :class:`TaskFailure` if any
    task failed permanently, else return ``{key: TaskOutcome}``.

    ``config`` overrides the pool knobs; otherwise a default
    :class:`ClusterConfig` with *n_workers* is used.
    """
    if config is None:
        config = ClusterConfig(n_workers=n_workers)
    scheduler = Scheduler(
        config, checkpoint=checkpoint, progress=progress, on_done=on_done
    )
    outcomes = scheduler.run(specs)
    failures = [o for o in outcomes.values() if not o.ok]
    if failures:
        raise TaskFailure(failures)
    return outcomes
