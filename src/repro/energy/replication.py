"""k-fault-tolerant primary/backup replication with backup overlapping.

The fault layer (:mod:`repro.faults`) measures what permanent processor
failures *cost*; this module makes schedules *survive* them.  Following
the FEST/EnSuRe primary-backup schedulers:

* every task keeps its **primary** placement from an existing schedule
  and gets ``k`` **backup** placements on distinct other processors, so
  after any ≤ k simultaneous permanent failures every task still has a
  live processor;
* under the ``"duplicate"`` policy (naive active replication) every
  backup copy always executes — robust but paying ``(k+1)×`` active
  energy;
* under the ``"overlap"`` policy (EnSuRe-style passive backups) backups
  execute **only after a failure is detected**.  Because at most ``k``
  processors can fail, backups of tasks whose primaries sit on
  *different* processors can share the same reserved slot — the
  reserved backup capacity per processor is the sum of its ``k``
  largest per-primary group loads, not the total.  Fault-free runs
  spend **zero** backup joules, which is why overlap strictly beats
  duplication on energy at equal verified reliability.

Survival is not asserted, it is *verified*: :func:`verify_survival`
rebuilds the recovery schedule for every ≤ k failure subset and runs it
through :func:`repro.faults.assess.assess_robustness_faulty` against
SIGKILL-grade permanent :class:`~repro.faults.scenario.OutageFault`\\ s
on exactly those processors — any task left on a dead processor would
make the realized makespan infinite and fail the check.  A deterministic
worst-case bound (every duration at its support maximum
``(2·UL−1)·b``) upgrades the Monte-Carlo check into a guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.energy.power import EnergyBreakdown, PowerModel
from repro.faults.assess import assess_robustness_faulty
from repro.faults.scenario import FaultScenario
from repro.obs import runtime as obs
from repro.schedule.evaluation import evaluate
from repro.schedule.schedule import Schedule
from repro.utils.rng import as_generator

__all__ = [
    "ReplicationPlan",
    "ReplicationEnergy",
    "SurvivalReport",
    "build_replication_plan",
    "verify_survival",
    "REPLICATION_POLICIES",
]

REPLICATION_POLICIES: tuple[str, ...] = ("overlap", "duplicate")

_TOL = 1e-12


@dataclass(frozen=True)
class ReplicationEnergy:
    """Energy of a replicated deployment, fault-free.

    ``backup`` is what the backup copies burn when nothing fails (zero
    under ``overlap``, the full copy cost under ``duplicate``);
    ``worst_case_backup`` is the largest energy any single ≤ k failure
    subset can trigger — the recovery bill, never paid upfront under
    ``overlap``.
    """

    policy: str
    primary: EnergyBreakdown
    backup: float
    worst_case_backup: float
    reserved_time: np.ndarray

    @property
    def total(self) -> float:
        """Fault-free joules: primary schedule plus always-on backups."""
        return self.primary.total + self.backup


@dataclass(frozen=True)
class SurvivalReport:
    """Outcome of verifying a plan against every ≤ k failure subset."""

    k: int
    deadline: float
    n_subsets: int
    n_realizations: int
    survives: bool
    guaranteed: bool
    worst_expected_makespan: float
    worst_realized_makespan: float
    n_missed: int

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "k": self.k,
            "deadline": self.deadline,
            "n_subsets": self.n_subsets,
            "n_realizations": self.n_realizations,
            "survives": self.survives,
            "guaranteed": self.guaranteed,
            "worst_expected_makespan": self.worst_expected_makespan,
            "worst_realized_makespan": self.worst_realized_makespan,
            "n_missed": self.n_missed,
        }


@dataclass(frozen=True)
class ReplicationPlan:
    """Primary schedule plus ``k`` backup placements per task.

    Built by :func:`build_replication_plan`; immutable.  ``backup_procs``
    is ``(n, k)``: row ``i`` lists task ``i``'s backup processors in
    preference order, all distinct from each other and from the primary.
    """

    problem: SchedulingProblem
    primary: Schedule
    k: int
    policy: str
    backup_procs: np.ndarray
    deadline: float

    def __post_init__(self) -> None:
        procs = np.ascontiguousarray(self.backup_procs, dtype=np.int64)
        procs.setflags(write=False)
        object.__setattr__(self, "backup_procs", procs)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recovery_assignment(self, failed: tuple[int, ...]) -> np.ndarray:
        """Processor of every task after the processors in *failed* die."""
        failed_set = frozenset(int(p) for p in failed)
        if len(failed_set) > self.k:
            raise ValueError(
                f"plan tolerates k={self.k} failures, got {len(failed_set)}"
            )
        if any(not (0 <= p < self.problem.m) for p in failed_set):
            raise ValueError(f"failed processors out of range: {sorted(failed_set)}")
        proc_of = self.primary.proc_of.copy()
        for i in np.flatnonzero(np.isin(proc_of, list(failed_set))):
            for backup in self.backup_procs[i]:
                if int(backup) not in failed_set:
                    proc_of[i] = backup
                    break
            else:  # pragma: no cover - impossible: k+1 distinct processors
                raise RuntimeError(f"task {i} has no surviving processor")
        return proc_of

    def recovery_schedule(self, failed: tuple[int, ...]) -> Schedule:
        """The backup schedule after the processors in *failed* die.

        Tasks on dead processors move to their first surviving backup;
        every processor's queue keeps the primary schedule's global
        linear order, which is a topological order of the task graph, so
        the result is always a valid :class:`Schedule`.
        """
        return Schedule.from_assignment(
            self.problem, self.primary.linear_order(), self.recovery_assignment(failed)
        )

    def failure_subsets(self) -> list[tuple[int, ...]]:
        """Every non-empty subset of ≤ k processors, in deterministic order."""
        procs = range(self.problem.m)
        return [
            subset
            for size in range(1, self.k + 1)
            for subset in combinations(procs, size)
        ]

    # ------------------------------------------------------------------ #
    # Capacity and energy
    # ------------------------------------------------------------------ #

    def _group_loads(self) -> np.ndarray:
        """``(m, m)``: expected backup time on processor ``p`` from tasks
        whose primary is ``q``."""
        m = self.problem.m
        expected = self.problem.expected_times
        primary = self.primary.proc_of
        loads = np.zeros((m, m))
        for col in range(self.k):
            backs = self.backup_procs[:, col]
            np.add.at(loads, (backs, primary), expected[np.arange(self.problem.n), backs])
        return loads

    def reserved_time(self) -> np.ndarray:
        """``(m,)`` backup time reserved on each processor.

        ``duplicate`` reserves (and executes) every copy; ``overlap``
        reserves only enough for the worst ≤ k concurrently-failed
        primaries — its slots are shared across primary processors,
        which is the EnSuRe saving.
        """
        loads = self._group_loads()
        if self.policy == "duplicate":
            return loads.sum(axis=1)
        top_k = np.sort(loads, axis=1)[:, -self.k :]
        return top_k.sum(axis=1)

    def energy(self, power: PowerModel) -> ReplicationEnergy:
        """Price the deployment fault-free, plus the worst recovery bill."""
        power.validate_for(self.problem.m)
        loads = self._group_loads()
        copy_energy = (loads * power.active[:, None]).sum()

        # Energy of recovering from the worst subset: the failed groups'
        # backup work, priced at the backup processors' active power.
        worst_energy = 0.0
        for subset in self.failure_subsets():
            cost = float((loads[:, list(subset)] * power.active[:, None]).sum())
            worst_energy = max(worst_energy, cost)

        primary = power.energy_of(self.primary)
        backup = float(copy_energy) if self.policy == "duplicate" else 0.0
        return ReplicationEnergy(
            policy=self.policy,
            primary=primary,
            backup=backup,
            worst_case_backup=worst_energy,
            reserved_time=self.reserved_time(),
        )


def build_replication_plan(
    problem: SchedulingProblem,
    schedule: Schedule,
    *,
    k: int = 1,
    policy: str = "overlap",
    deadline: float,
) -> ReplicationPlan:
    """Attach ``k`` backup placements per task to an existing schedule.

    Backups are placed greedily in the primary schedule's linear order:
    task ``i``'s ``c``-th backup goes to the processor (distinct from
    its primary and its earlier backups) minimising *accumulated backup
    load + expected time there* — fast processors are preferred but load
    spreads, keeping every recovery schedule's makespan bounded instead
    of serialising all backups on the single fastest machine.  Ties go
    to the lower index.  Requires ``m >= k + 1``.
    """
    if policy not in REPLICATION_POLICIES:
        raise ValueError(
            f"unknown replication policy {policy!r}; choose from "
            f"{REPLICATION_POLICIES}"
        )
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if problem.m < k + 1:
        raise ValueError(
            f"k={k} fault tolerance needs at least {k + 1} processors, "
            f"platform has {problem.m}"
        )
    if not (deadline > 0.0):
        raise ValueError(f"deadline must be positive, got {deadline}")

    with obs.trace("energy.replicate", policy=policy, k=k):
        expected = problem.expected_times
        primary = schedule.proc_of
        backups = np.empty((problem.n, k), dtype=np.int64)
        load = np.zeros(problem.m)
        for i in schedule.linear_order():
            taken = {int(primary[i])}
            for col in range(k):
                cost = load + expected[i]
                # argmin over allowed processors, ties to the lower index
                best, best_cost = -1, np.inf
                for p in range(problem.m):
                    if p in taken:
                        continue
                    if cost[p] < best_cost:
                        best, best_cost = p, float(cost[p])
                backups[i, col] = best
                taken.add(best)
                load[best] += expected[i, best]
        obs.add("energy.replication_plans")
        return ReplicationPlan(
            problem=problem,
            primary=schedule,
            k=int(k),
            policy=policy,
            backup_procs=backups,
            deadline=float(deadline),
        )


def verify_survival(
    plan: ReplicationPlan,
    *,
    n_realizations: int = 50,
    rng=None,
    policy: str = "rerun-static",
) -> SurvivalReport:
    """Verify the plan against every ≤ k permanent-failure subset.

    For each subset the recovery schedule is assessed under a
    :class:`~repro.faults.scenario.FaultScenario` of permanent
    :class:`~repro.faults.scenario.OutageFault`\\ s on exactly those
    processors via :func:`~repro.faults.assess.assess_robustness_faulty`
    — if the plan left any task on a dead processor, that realization
    never completes and the check fails.  ``survives`` additionally
    requires every realized makespan to meet the plan's deadline;
    ``guaranteed`` is the deterministic worst-case-duration bound.
    """
    if n_realizations < 1:
        raise ValueError(f"n_realizations must be >= 1, got {n_realizations}")
    gen = as_generator(rng)
    subsets = plan.failure_subsets()
    streams = gen.spawn(len(subsets))

    with obs.trace("energy.survival", k=plan.k, subsets=len(subsets)):
        survives = True
        guaranteed = True
        worst_expected = 0.0
        worst_realized = 0.0
        n_missed = 0
        deadline = plan.deadline * (1.0 + _TOL)
        uncertainty = plan.problem.uncertainty
        for subset, stream in zip(subsets, streams):
            recovery = plan.recovery_schedule(subset)
            scenario = FaultScenario.processor_failures(subset)
            assessment = assess_robustness_faulty(
                recovery, scenario, n_realizations, stream, policy=policy
            )
            _, worst_durations = uncertainty.duration_bounds(recovery.proc_of)
            bound = evaluate(recovery, worst_durations).makespan
            worst_expected = max(worst_expected, assessment.expected_makespan)
            realized = float(np.max(assessment.realized_makespans))
            worst_realized = max(worst_realized, realized)
            missed = int(np.sum(assessment.realized_makespans > deadline))
            n_missed += missed
            if assessment.n_failed > 0 or missed > 0:
                survives = False
            if bound > deadline:
                guaranteed = False
        obs.add("energy.survival_checks", len(subsets))
        return SurvivalReport(
            k=plan.k,
            deadline=plan.deadline,
            n_subsets=len(subsets),
            n_realizations=n_realizations,
            survives=survives,
            guaranteed=guaranteed,
            worst_expected_makespan=worst_expected,
            worst_realized_makespan=worst_realized,
            n_missed=n_missed,
        )
