"""Power models: price schedules in joules, not just seconds.

The paper's objectives are time-only (makespan, slack); this module adds
the third axis the fault-tolerant real-time literature prices first:
**energy**.  The model follows the FEST/EnSuRe schedulers and the
makespan+energy-under-reliability work (arXiv 2212.09274):

* every processor has an *active* power (watts while executing at full
  frequency) and an *idle* power (watts while powered but waiting);
* processors optionally support discrete DVFS frequency ratios
  ``f ∈ (0, 1]``; dynamic power scales **cubically** with frequency
  (``P(f) = P_idle + (P_active − P_idle)·f³``) while execution time
  scales as ``1/f`` — running slower is usually cheaper per task;
* inter-processor transfers draw ``link_power`` watts for the duration
  of the transfer (intra-processor communication is free, matching the
  zero-cost edges of the disjunctive graph).

:meth:`PowerModel.energy_of` prices any existing
:class:`~repro.schedule.schedule.Schedule` — nothing about the schedule
changes, so pricing composes with every scheduler, assessor and policy
already in the repo.  :meth:`PowerModel.batch_energies` prices Monte-
Carlo realization matrices and :meth:`PowerModel.population_energies`
prices whole GA populations without decoding a single chromosome, which
is what makes the energy-constrained GA fitness
(:class:`repro.energy.objective.EnergyConstraintFitness`) as cheap per
generation as the paper's slack fitness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import runtime as obs
from repro.schedule.evaluation import batch_makespans, evaluate
from repro.schedule.schedule import Schedule

__all__ = [
    "PowerModel",
    "EnergyBreakdown",
    "slowest_feasible_freqs",
]

_TOL = 1e-12


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one schedule, split by where the joules went.

    Attributes
    ----------
    active:
        ``(m,)`` joules spent executing tasks, per processor.
    idle:
        ``(m,)`` joules spent powered-but-waiting, per processor
        (every processor is on for the whole makespan).
    comm:
        Joules spent on inter-processor transfers.
    makespan:
        The makespan the idle window was priced against (stretched by
        DVFS when ``freqs`` is not all-ones).
    freqs:
        ``(m,)`` frequency ratio each processor ran at.
    """

    active: np.ndarray
    idle: np.ndarray
    comm: float
    makespan: float
    freqs: np.ndarray

    @property
    def total(self) -> float:
        """Total joules: active + idle + communication."""
        return float(self.active.sum() + self.idle.sum() + self.comm)

    @property
    def per_processor(self) -> np.ndarray:
        """``(m,)`` active + idle joules per processor."""
        return self.active + self.idle

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "total": self.total,
            "active": [float(x) for x in self.active],
            "idle": [float(x) for x in self.idle],
            "comm": float(self.comm),
            "makespan": float(self.makespan),
            "freqs": [float(f) for f in self.freqs],
        }


@dataclass(frozen=True)
class PowerModel:
    """Per-processor power curves with discrete DVFS levels.

    Parameters
    ----------
    active:
        ``(m,)`` watts while executing at full frequency (``f = 1``).
    idle:
        ``(m,)`` watts while powered but not executing; must satisfy
        ``0 <= idle <= active`` elementwise.
    freq_levels:
        The discrete frequency ratios DVFS may choose from, each in
        ``(0, 1]``; always normalised to contain ``1.0`` (full speed).
    link_power:
        Watts drawn while an inter-processor transfer is in flight.
    name:
        Label used in reports.
    """

    active: np.ndarray
    idle: np.ndarray
    freq_levels: tuple[float, ...] = (1.0,)
    link_power: float = 0.0
    name: str = "power"

    def __post_init__(self) -> None:
        active = np.ascontiguousarray(self.active, dtype=np.float64)
        idle = np.ascontiguousarray(self.idle, dtype=np.float64)
        if active.ndim != 1 or active.shape != idle.shape:
            raise ValueError(
                "active and idle must be 1-D arrays of equal length, got "
                f"{active.shape} and {idle.shape}"
            )
        if np.any(active < 0.0) or np.any(idle < 0.0):
            raise ValueError("power values must be >= 0")
        if np.any(idle > active * (1.0 + _TOL) + _TOL):
            raise ValueError("idle power must not exceed active power")
        levels = tuple(sorted({float(f) for f in self.freq_levels} | {1.0}))
        if any(not (0.0 < f <= 1.0) for f in levels):
            raise ValueError(f"frequency ratios must be in (0, 1], got {levels}")
        if not (self.link_power >= 0.0):
            raise ValueError(f"link_power must be >= 0, got {self.link_power}")
        active.setflags(write=False)
        idle.setflags(write=False)
        object.__setattr__(self, "active", active)
        object.__setattr__(self, "idle", idle)
        object.__setattr__(self, "freq_levels", levels)
        object.__setattr__(self, "link_power", float(self.link_power))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def null(cls, m: int) -> "PowerModel":
        """The no-op model: zero power everywhere.

        Pricing with it returns 0 J for every schedule, and the
        energy-aware scheduler degenerates **bit-identically** to the
        paper's robust path (pinned by
        ``tests/property/test_energy_identity.py``).
        """
        return cls(np.zeros(m), np.zeros(m), name="null")

    @classmethod
    def uniform(
        cls,
        m: int,
        active: float = 1.0,
        idle: float = 0.0,
        *,
        link_power: float = 0.0,
        freq_levels: tuple[float, ...] = (1.0,),
    ) -> "PowerModel":
        """Homogeneous model: every processor shares one power curve."""
        return cls(
            np.full(m, float(active)),
            np.full(m, float(idle)),
            freq_levels=freq_levels,
            link_power=link_power,
            name="uniform",
        )

    @classmethod
    def default(cls, m: int) -> "PowerModel":
        """Deterministic heterogeneous model used by the experiments.

        Active power ramps linearly from 1.0 to 2.0 across processors
        (faster machines burn more), idle is 10% of active, transfers
        draw 0.5 W, and three DVFS levels are available.  Fully
        determined by ``m`` — no RNG — so experiment grids stay
        reproducible without threading a power seed around.
        """
        ramp = np.linspace(1.0, 2.0, m) if m > 1 else np.ones(1)
        return cls(
            ramp,
            0.1 * ramp,
            freq_levels=(0.6, 0.8, 1.0),
            link_power=0.5,
            name="default",
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        """Number of processors the model covers."""
        return int(self.active.shape[0])

    @property
    def is_null(self) -> bool:
        """True when every price is zero (pricing can change nothing)."""
        return (
            not self.active.any()
            and not self.idle.any()
            and self.link_power == 0.0
        )

    def validate_for(self, m: int) -> None:
        """Raise if the model does not cover an ``m``-processor platform."""
        if self.m != m:
            raise ValueError(
                f"power model covers {self.m} processors but the platform has {m}"
            )

    def power_at(self, freqs: np.ndarray) -> np.ndarray:
        """Active watts per processor at frequency ratios *freqs*.

        Cubic dynamic scaling: ``P(f) = idle + (active − idle) · f³``.
        """
        freqs = np.asarray(freqs, dtype=np.float64)
        return self.idle + (self.active - self.idle) * freqs**3

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def _freqs(self, freqs) -> np.ndarray:
        if freqs is None:
            return np.ones(self.m)
        freqs = np.asarray(freqs, dtype=np.float64)
        if freqs.shape != (self.m,):
            raise ValueError(f"freqs must have shape ({self.m},), got {freqs.shape}")
        if np.any(freqs <= 0.0) or np.any(freqs > 1.0):
            raise ValueError("frequency ratios must be in (0, 1]")
        return freqs

    def energy_of(
        self,
        schedule: Schedule,
        *,
        durations: np.ndarray | None = None,
        freqs: np.ndarray | None = None,
    ) -> EnergyBreakdown:
        """Price one schedule: active + idle + communication joules.

        Parameters
        ----------
        schedule:
            Any schedule of a problem on an ``m``-processor platform.
        durations:
            ``(n,)`` task durations at full frequency (default: the
            expected durations — the scheduler-visible view).
        freqs:
            ``(m,)`` per-processor DVFS ratios.  Durations stretch by
            ``1/f`` and active power scales cubically; the idle window is
            priced against the *stretched* makespan.

        Pricing is a pure read — the schedule is never modified, so the
        zero-power/no-replication path stays bit-identical to the
        existing pipeline.
        """
        self.validate_for(schedule.problem.m)
        freqs = self._freqs(freqs)
        plain = durations is None and bool(np.all(freqs == 1.0))
        if durations is None:
            durations = schedule.expected_durations()
        proc_of = schedule.proc_of
        stretched = np.asarray(durations, dtype=np.float64) / freqs[proc_of]
        # The unstretched expected-duration case goes through the cached
        # evaluation, sharing work with every other consumer.
        makespan = evaluate(schedule, None if plain else stretched).makespan

        watts = self.power_at(freqs)
        active = np.bincount(proc_of, weights=stretched * watts[proc_of], minlength=self.m)
        busy = np.bincount(proc_of, weights=stretched, minlength=self.m)
        idle = np.maximum(makespan - busy, 0.0) * self.idle
        comm = float(schedule.comm_weights.sum()) * self.link_power
        obs.add("energy.prices")
        return EnergyBreakdown(
            active=active, idle=idle, comm=comm, makespan=makespan, freqs=freqs
        )

    def energy_of_run(self, schedule: Schedule, result) -> EnergyBreakdown:
        """Price a simulated execution at what actually ran.

        *result* is a :class:`~repro.sim.eventsim.SimulationResult`
        (duck-typed: ``makespan`` and
        :meth:`~repro.sim.eventsim.SimulationResult.busy_times`): active
        joules come from the realized per-processor busy times — stalls,
        faults and retries included — and the idle window from the
        realized makespan.  A run that never completed (permanent
        failure) prices to ``inf``.
        """
        self.validate_for(schedule.problem.m)
        busy = np.asarray(result.busy_times(schedule), dtype=np.float64)
        active = busy * self.active
        idle = np.maximum(result.makespan - busy, 0.0) * self.idle
        comm = float(schedule.comm_weights.sum()) * self.link_power
        obs.add("energy.prices")
        return EnergyBreakdown(
            active=active,
            idle=idle,
            comm=comm,
            makespan=float(result.makespan),
            freqs=np.ones(self.m),
        )

    def batch_energies(
        self,
        schedule: Schedule,
        durations: np.ndarray,
        *,
        freqs: np.ndarray | None = None,
    ) -> np.ndarray:
        """Total joules of each duration realization — the MC variant.

        *durations* is the ``(R, n)`` matrix
        :meth:`~repro.schedule.schedule.Schedule.realize_durations`
        produces; the result is ``(R,)`` totals, vectorized through the
        same :func:`~repro.schedule.evaluation.batch_makespans` kernel
        the robustness metrics use.
        """
        self.validate_for(schedule.problem.m)
        freqs = self._freqs(freqs)
        proc_of = schedule.proc_of
        durations = np.asarray(durations, dtype=np.float64)
        stretched = durations / freqs[proc_of]
        makespans = batch_makespans(schedule, stretched)
        watts = self.power_at(freqs)
        active = stretched @ watts[proc_of]
        idle = makespans * self.idle.sum() - stretched @ self.idle[proc_of]
        comm = float(schedule.comm_weights.sum()) * self.link_power
        return active + idle + comm

    def population_energies(
        self,
        problem,
        proc_of: np.ndarray,
        makespans: np.ndarray,
    ) -> np.ndarray:
        """Expected energy of every individual in a GA population.

        Operates directly on the ``(k, n)`` processor-assignment matrix
        and the ``(k,)`` makespans the population kernel already
        computed — no chromosome is decoded, no schedule materialised.
        Frequencies are full-speed here; DVFS is a post-pass
        (:func:`slowest_feasible_freqs`) on the returned champion.
        """
        self.validate_for(problem.m)
        proc_of = np.asarray(proc_of, dtype=np.int64)
        makespans = np.asarray(makespans, dtype=np.float64)
        n = problem.n
        durations = problem.expected_times[np.arange(n)[None, :], proc_of]
        active = (durations * self.active[proc_of]).sum(axis=1)
        idle = makespans * self.idle.sum() - (durations * self.idle[proc_of]).sum(axis=1)
        graph = problem.graph
        if graph.edge_src.size and self.link_power > 0.0:
            src = proc_of[:, graph.edge_src]
            dst = proc_of[:, graph.edge_dst]
            comm_times = problem.platform.comm_times(graph.edge_data[None, :], src, dst)
            comm = comm_times.sum(axis=1) * self.link_power
        else:
            comm = 0.0
        return active + idle + comm

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Plain-dict (JSON-ready) representation."""
        return {
            "name": self.name,
            "active": [float(x) for x in self.active],
            "idle": [float(x) for x in self.idle],
            "freq_levels": [float(f) for f in self.freq_levels],
            "link_power": self.link_power,
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "PowerModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(spec["active"], dtype=np.float64),
            np.asarray(spec["idle"], dtype=np.float64),
            freq_levels=tuple(spec.get("freq_levels", (1.0,))),
            link_power=float(spec.get("link_power", 0.0)),
            name=str(spec.get("name", "power")),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PowerModel(name={self.name!r}, m={self.m}, "
            f"levels={len(self.freq_levels)})"
        )


def slowest_feasible_freqs(
    schedule: Schedule,
    power: PowerModel,
    bound: float,
    *,
    durations: np.ndarray | None = None,
) -> tuple[np.ndarray, EnergyBreakdown]:
    """Greedy DVFS post-pass: lowest per-processor frequencies under a bound.

    Processors are visited in index order; each drops to its lowest
    discrete level (given the levels already chosen for earlier
    processors) that keeps the stretched makespan within *bound*.  The
    scan is deterministic and needs ``m × |levels|`` static evaluations —
    cheap next to one GA generation.  Returns the chosen ``(m,)`` ratios
    and the resulting :class:`EnergyBreakdown`.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    power.validate_for(schedule.problem.m)
    if durations is None:
        durations = schedule.expected_durations()
    durations = np.asarray(durations, dtype=np.float64)
    proc_of = schedule.proc_of
    freqs = np.ones(power.m)
    ceiling = bound * (1.0 + _TOL)
    for p in range(power.m):
        for level in power.freq_levels:  # ascending: try the slowest first
            if level >= freqs[p]:
                break
            trial = freqs.copy()
            trial[p] = level
            makespan = evaluate(schedule, durations / trial[proc_of]).makespan
            if makespan <= ceiling:
                freqs = trial
                break
    return freqs, power.energy_of(schedule, durations=durations, freqs=freqs)
