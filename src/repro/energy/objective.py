"""The energy objective wired into the ε-constraint GA machinery.

The paper's Eqn. 7 is *max slack s.t. makespan ≤ ε·M_HEFT*; the energy
extension swaps the objective and keeps the constraint algebra:

    minimize   E(s)                       (expected joules, PowerModel)
    subject to M_0(s) ≤ ε · M_HEFT        (the paper's budget)
               σ̄(s)  ≥ R                 (reliability floor: average
                                           slack, the paper's robustness
                                           surrogate — Monte-Carlo R1/R2
                                           verify it post-hoc)

:class:`EnergyConstraintFitness` follows the population-based penalty
scheme of Eqn. 8 exactly: feasible individuals are ranked by
``1/(1+E)`` (positive, monotone in energy), infeasible ones sit strictly
below the worst feasible one, scaled by their constraint-violation
ratio.  Energies come from
:meth:`~repro.energy.power.PowerModel.population_energies`, which reads
the population's assignment matrix directly — no chromosome decode, so
a generation costs the same as the paper's slack fitness.

:class:`EnergyScheduler` is the one-call pipeline mirroring
:class:`~repro.core.robust.RobustScheduler`.  With a ``None`` or
all-zero power model it *is* the robust scheduler — same fitness object,
same RNG stream, bit-identical schedules (pinned by
``tests/property/test_energy_identity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.energy.power import EnergyBreakdown, PowerModel
from repro.ga.engine import GAParams, GAResult, GeneticScheduler
from repro.ga.fitness import EpsilonConstraintFitness, Individual
from repro.heuristics.heft import HeftScheduler
from repro.obs import runtime as obs
from repro.schedule.evaluation import evaluate, expected_makespan
from repro.schedule.schedule import Schedule

__all__ = ["EnergyConstraintFitness", "EnergyScheduler", "EnergyResult"]

_TOL = 1e-12


class EnergyConstraintFitness:
    """Minimize energy subject to a makespan budget and a slack floor.

    Parameters
    ----------
    power:
        The :class:`~repro.energy.power.PowerModel` pricing the
        population (must not be null — the null model degenerates to
        :class:`~repro.ga.fitness.EpsilonConstraintFitness`, which
        :class:`EnergyScheduler` handles).
    problem:
        The instance being solved (pricing needs its expected times,
        graph and platform).
    epsilon / m_heft:
        The paper's budget: feasibility requires
        ``M_0 <= epsilon * m_heft``.
    min_slack:
        Reliability floor ``R``: feasibility additionally requires
        ``avg_slack >= min_slack``.  Zero disables the floor (and the
        backward slack pass with it — ``uses_slack`` turns False).
    """

    def __init__(
        self,
        power: PowerModel,
        problem: SchedulingProblem,
        epsilon: float,
        m_heft: float,
        *,
        min_slack: float = 0.0,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if m_heft <= 0:
            raise ValueError(f"m_heft must be positive, got {m_heft}")
        if min_slack < 0:
            raise ValueError(f"min_slack must be >= 0, got {min_slack}")
        power.validate_for(problem.m)
        self.power = power
        self.problem = problem
        self.epsilon = float(epsilon)
        self.m_heft = float(m_heft)
        self.min_slack = float(min_slack)
        self.uses_slack = self.min_slack > 0.0
        self.name = f"energy(eps={epsilon:g}, R={min_slack:g})"

    @classmethod
    def for_problem(
        cls,
        problem: SchedulingProblem,
        power: PowerModel,
        epsilon: float,
        *,
        slack_ratio: float = 0.0,
    ) -> "EnergyConstraintFitness":
        """Build the policy by running HEFT for ``M_HEFT``.

        ``slack_ratio`` expresses the reliability floor relative to the
        HEFT schedule's average slack; any ratio ≤ 1 keeps the HEFT seed
        feasible, so the GA always returns a constraint-satisfying
        schedule.
        """
        heft = HeftScheduler().schedule(problem)
        ev = evaluate(heft)
        min_slack = slack_ratio * ev.avg_slack if slack_ratio > 0 else 0.0
        return cls(
            power, problem, epsilon, ev.makespan, min_slack=float(min_slack)
        )

    @property
    def bound(self) -> float:
        """The makespan ceiling ``epsilon * M_HEFT``."""
        return self.epsilon * self.m_heft

    def is_feasible(self, makespan: float) -> bool:
        """Makespan-budget check (the engine's feasibility telemetry)."""
        return makespan <= self.bound * (1.0 + _TOL)

    def scores(self, population: Sequence[Individual]) -> np.ndarray:
        """Eqn.-8-style population scores with energy as the objective."""
        makespans = np.asarray([ind.makespan for ind in population], dtype=np.float64)
        proc_of = np.stack([ind.chromosome.proc_of for ind in population])
        energies = self.power.population_energies(self.problem, proc_of, makespans)

        feasible = makespans <= self.bound * (1.0 + _TOL)
        ratio = np.minimum(1.0, self.bound / makespans)
        if self.min_slack > 0.0:
            slacks = np.asarray(
                [ind.avg_slack for ind in population], dtype=np.float64
            )
            feasible &= slacks >= self.min_slack * (1.0 - _TOL)
            ratio = ratio * np.minimum(
                1.0, np.maximum(slacks, 0.0) / self.min_slack
            )

        out = np.empty(len(population), dtype=np.float64)
        out[feasible] = 1.0 / (1.0 + energies[feasible])
        if not np.any(~feasible):
            return out
        if np.any(feasible):
            # Strictly below every feasible score, ordered by violation.
            base = float(out[feasible].min())
            out[~feasible] = base * ratio[~feasible] * (1.0 - 1e-9)
        else:
            out[~feasible] = ratio[~feasible] - 1.0
        return out


@dataclass(frozen=True)
class EnergyResult:
    """Everything produced by one energy-constrained solve."""

    schedule: Schedule
    heft_schedule: Schedule
    m_heft: float
    epsilon: float
    min_slack: float
    power: PowerModel
    ga_result: GAResult

    @property
    def expected_makespan(self) -> float:
        """``M_0`` of the returned schedule."""
        return evaluate(self.schedule).makespan

    @property
    def avg_slack(self) -> float:
        """Average slack of the returned schedule."""
        return evaluate(self.schedule).avg_slack

    @property
    def feasible(self) -> bool:
        """Whether both constraints hold on the returned schedule."""
        return (
            self.expected_makespan <= self.epsilon * self.m_heft * (1 + _TOL)
            and self.avg_slack >= self.min_slack * (1 - _TOL)
        )

    @property
    def breakdown(self) -> EnergyBreakdown:
        """Energy breakdown of the returned schedule (full frequency)."""
        return self.power.energy_of(self.schedule)

    @property
    def energy(self) -> float:
        """Total expected joules of the returned schedule."""
        return self.breakdown.total

    @property
    def heft_energy(self) -> float:
        """Total expected joules of the HEFT baseline."""
        return self.power.energy_of(self.heft_schedule).total


class EnergyScheduler:
    """Energy-constrained scheduler: min energy s.t. bounded makespan.

    Drop-in sibling of :class:`~repro.core.robust.RobustScheduler`:
    HEFT for the reference makespan, then the GA under
    :class:`EnergyConstraintFitness`.  A ``None`` or null power model
    degenerates to the paper's ε-constraint fitness — same RNG
    consumption, bit-identical schedules — so energy awareness is free
    to thread through call sites unconditionally.

    Parameters
    ----------
    epsilon:
        Makespan budget as a multiple of ``M_HEFT``.
    power:
        The power model; ``None`` or :meth:`PowerModel.null` selects the
        degenerate slack-maximizing path.
    params / rng / warm_start:
        As for :class:`~repro.core.robust.RobustScheduler`.
    slack_ratio:
        Reliability floor as a fraction of HEFT's average slack
        (``R = slack_ratio × σ̄_HEFT``); ratios ≤ 1 keep the HEFT seed
        feasible.  Ignored on the degenerate path.
    """

    name = "energy-ga"

    def __init__(
        self,
        epsilon: float = 1.0,
        power: PowerModel | None = None,
        params: GAParams | None = None,
        rng: np.random.Generator | int | None = None,
        *,
        slack_ratio: float = 0.0,
        warm_start=None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if not (0.0 <= slack_ratio <= 1.0):
            raise ValueError(
                f"slack_ratio must be in [0, 1] to keep the HEFT seed "
                f"feasible, got {slack_ratio}"
            )
        from repro.utils.rng import as_generator

        self.epsilon = float(epsilon)
        self.power = power
        self.params = params or GAParams()
        self._rng = as_generator(rng)
        self.slack_ratio = float(slack_ratio)
        self.warm_start = warm_start

    def solve(self, problem: SchedulingProblem) -> EnergyResult:
        """Run the full pipeline on *problem*."""
        power = self.power
        degenerate = power is None or power.is_null
        with obs.trace(
            "energy.solve",
            epsilon=self.epsilon,
            power=(power.name if power is not None else "none"),
            degenerate=degenerate,
        ):
            heft_schedule = HeftScheduler().schedule(problem)
            m_heft = expected_makespan(heft_schedule)
            if degenerate:
                fitness = EpsilonConstraintFitness(self.epsilon, m_heft)
                min_slack = 0.0
            else:
                min_slack = (
                    self.slack_ratio * evaluate(heft_schedule).avg_slack
                    if self.slack_ratio > 0
                    else 0.0
                )
                fitness = EnergyConstraintFitness(
                    power, problem, self.epsilon, m_heft, min_slack=min_slack
                )
            engine = GeneticScheduler(
                fitness, self.params, self._rng, warm_start=self.warm_start
            )
            ga_result = engine.run(problem)
            obs.add("energy.solves")
            result = EnergyResult(
                schedule=ga_result.schedule,
                heft_schedule=heft_schedule,
                m_heft=m_heft,
                epsilon=self.epsilon,
                min_slack=float(min_slack),
                power=power if power is not None else PowerModel.null(problem.m),
                ga_result=ga_result,
            )
            if obs.enabled():
                obs.set_gauge("energy.last_total", result.energy)
            return result

    def schedule(self, problem: SchedulingProblem) -> Schedule:
        """Scheduler-protocol facade returning only the best schedule."""
        return self.solve(problem).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnergyScheduler(epsilon={self.epsilon}, "
            f"power={getattr(self.power, 'name', None)!r})"
        )
