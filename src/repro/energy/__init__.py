"""repro.energy — energy- and replication-aware scheduling.

The third objective axis next to the paper's makespan and robustness:

* :class:`~repro.energy.power.PowerModel` — per-processor active/idle
  power, discrete DVFS frequency levels with cubic dynamic-power
  scaling, and pricing for single schedules
  (:meth:`~repro.energy.power.PowerModel.energy_of`), Monte-Carlo
  realization matrices
  (:meth:`~repro.energy.power.PowerModel.batch_energies`) and whole GA
  populations
  (:meth:`~repro.energy.power.PowerModel.population_energies`);
* :class:`~repro.energy.replication.ReplicationPlan` —
  k-fault-tolerant primary/backup schedules with EnSuRe-style backup
  overlapping, survival verified against the
  :mod:`repro.faults` permanent-failure model
  (:func:`~repro.energy.replication.verify_survival`);
* :class:`~repro.energy.objective.EnergyScheduler` — minimize energy
  subject to ``makespan ≤ ε·M_HEFT`` and ``slack ≥ R`` through the
  existing :class:`~repro.ga.engine.GeneticScheduler`; the null-power
  path is bit-identical to
  :class:`~repro.core.robust.RobustScheduler`.

See ``docs/energy.md`` for the executable walkthrough and
:mod:`repro.experiments.energy_grid` / ``repro energy`` for the
frontier study.
"""

from repro.energy.objective import (
    EnergyConstraintFitness,
    EnergyResult,
    EnergyScheduler,
)
from repro.energy.power import EnergyBreakdown, PowerModel, slowest_feasible_freqs
from repro.energy.replication import (
    REPLICATION_POLICIES,
    ReplicationEnergy,
    ReplicationPlan,
    SurvivalReport,
    build_replication_plan,
    verify_survival,
)

__all__ = [
    "PowerModel",
    "EnergyBreakdown",
    "slowest_feasible_freqs",
    "EnergyConstraintFitness",
    "EnergyScheduler",
    "EnergyResult",
    "ReplicationPlan",
    "ReplicationEnergy",
    "SurvivalReport",
    "REPLICATION_POLICIES",
    "build_replication_plan",
    "verify_survival",
]
