"""Hierarchical spans on a monotonic clock.

A :class:`Span` measures one named region of execution.  Spans nest: the
:class:`Tracer` keeps a per-thread stack, so a span opened while another
is active records that span as its parent, and the ``trace-summary``
renderer can attribute wall time through the tree.

Records are emitted to the sink when a span **closes** (close order is
deterministic for deterministic programs); ids are assigned in **start**
order, so both orders can be reconstructed from the stream.  A span that
closes because an exception is propagating through it is recorded with
``status: "error"`` and the exception type name — the exception itself
always propagates.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


def _clean_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Sort keys and coerce values so records are strict-JSON-stable.

    Numpy scalars become python scalars; non-finite floats (legal in the
    library — ``R1 = inf`` is a meaningful robustness value) become their
    ``repr`` strings, since strict JSON has no Infinity/NaN literals.
    """
    out = {}
    for key in sorted(attrs):
        value = attrs[key]
        if hasattr(value, "item"):  # numpy scalar -> python scalar
            value = value.item()
        if isinstance(value, float) and (value != value or value in (_INF, -_INF)):
            value = repr(value)
        out[key] = value
    return out


_INF = float("inf")


class Span:
    """One open (or closed) traced region.

    Not constructed directly — use :func:`repro.obs.trace`.  Inside the
    ``with`` block, :meth:`set` attaches attributes to the span.
    """

    __slots__ = ("id", "parent_id", "name", "start", "attrs", "_tracer")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict[str, Any],
        tracer: "Tracer",
    ) -> None:
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs
        self._tracer = tracer

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (last write per key wins)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.close(self, exc_type)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, id={self.id})"


class _NoopSpan:
    """Singleton stand-in returned by ``obs.trace`` while disabled.

    Supports the full :class:`Span` surface as no-ops so call sites need
    no conditional code.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Span factory + per-thread nesting stacks for one session.

    Parameters
    ----------
    emit:
        ``emit(record: dict)`` — receives one JSON-compatible dict per
        closed span / point event.
    clock:
        Monotonic ``() -> float``; timestamps are reported relative to
        the session epoch (the tracer subtracts ``epoch`` itself).
    epoch:
        Clock value at session start.
    """

    def __init__(self, emit, clock, epoch: float) -> None:
        self._emit = emit
        self._clock = clock
        self._epoch = epoch
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self.n_spans = 0
        self.n_errors = 0

    # ------------------------------------------------------------------ ids

    def _alloc_ids(self, count: int = 1) -> int:
        """Reserve *count* consecutive ids, returning the first."""
        with self._lock:
            first = self._next_id
            self._next_id += count
        return first

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self) -> int | None:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].id if stack else None

    # ---------------------------------------------------------------- spans

    def start(self, name: str, attrs: dict[str, Any]) -> Span:
        """Open a span nested under this thread's innermost open span."""
        stack = self._stack()
        parent_id = stack[-1].id if stack else None
        span = Span(
            self._alloc_ids(),
            parent_id,
            name,
            self._clock() - self._epoch,
            attrs,
            self,
        )
        stack.append(span)
        return span

    def close(self, span: Span, exc_type) -> None:
        """Close the span and emit its record (error status if *exc_type*)."""
        end = self._clock() - self._epoch
        stack = self._stack()
        # Tolerate out-of-order closes (a caller holding the span past an
        # inner `with`): pop up to and including the span.
        while stack:
            top = stack.pop()
            if top is span:
                break
        status = "ok" if exc_type is None else "error"
        attrs = dict(span.attrs)
        if exc_type is not None:
            attrs.setdefault("error_type", exc_type.__name__)
            self.n_errors += 1
        self.n_spans += 1
        self._emit(
            {
                "type": "span",
                "id": span.id,
                "parent": span.parent_id,
                "name": span.name,
                "t0": span.start,
                "t1": end,
                "dur": end - span.start,
                "status": status,
                "attrs": _clean_attrs(attrs),
            }
        )

    # --------------------------------------------------------------- events

    def point(self, name: str, attrs: dict[str, Any]) -> None:
        """Emit a zero-duration point event under the current span."""
        self._emit(
            {
                "type": "event",
                "id": self._alloc_ids(),
                "parent": self.current_id(),
                "name": name,
                "t": self._clock() - self._epoch,
                "attrs": _clean_attrs(attrs),
            }
        )

    # --------------------------------------------------------------- ingest

    def ingest(self, records: list[dict], *, shift: float | None = None) -> None:
        """Splice a foreign subtree (e.g. from a cluster worker) in.

        *records* is a list of span/event records with ids local to the
        foreign session (1-based).  Ids are remapped into this tracer's
        id space, parentless records are attached under the current span,
        and timestamps are shifted by *shift* (default: align the
        subtree's latest timestamp with "now", which places a worker's
        spans where their result arrived on the session timeline).
        Metric records pass through unchanged (callers merge registries
        separately).
        """
        tree = [r for r in records if r.get("type") in ("span", "event")]
        if not tree:
            return
        if shift is None:
            latest = max(r["t1"] if r["type"] == "span" else r["t"] for r in tree)
            shift = (self._clock() - self._epoch) - latest
        base = self._alloc_ids(len(tree)) - 1  # local ids are 1-based
        attach_to = self.current_id()
        for r in tree:
            r = dict(r)
            r["id"] = base + r["id"]
            r["parent"] = attach_to if r["parent"] is None else base + r["parent"]
            if r["type"] == "span":
                r["t0"] += shift
                r["t1"] += shift
                if r["status"] == "error":
                    self.n_errors += 1
                self.n_spans += 1
            else:
                r["t"] += shift
            self._emit(r)
