"""Metrics registry: counters, gauges, log-binned histograms.

Metrics are cheap accumulators updated from anywhere in the process and
exported once, when the session flushes.  Histograms use **fixed
log-spaced bins** (default 9 decades, 5 bins per decade from 1 µs to
1000 s — sized for wall-clock durations in seconds) so two runs of the
same program produce structurally identical records and bins never need
rebalancing; values outside the range land in the open-ended first/last
bins.

Export order is sorted by metric name — deterministic regardless of
update order.
"""

from __future__ import annotations

import math
from bisect import bisect_right

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int | float = 1) -> None:
        """Increment by *n* (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {n})")
        self.value += n

    def to_record(self) -> dict:
        """Export as a JSON-compatible trace record."""
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Overwrite the gauge value."""
        self.value = float(value)

    def to_record(self) -> dict:
        """Export as a JSON-compatible trace record."""
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed log-spaced-bin histogram of positive samples.

    Parameters
    ----------
    lo, hi:
        Edge range; the first bin additionally catches everything below
        *lo* (including zero and negative values) and the last bin
        everything at or above *hi*.
    bins_per_decade:
        Resolution; the default 5 distinguishes ~1.58x ratios.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        *,
        lo: float = 1e-6,
        hi: float = 1e3,
        bins_per_decade: int = 5,
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        self.name = name
        n_edges = int(round(math.log10(hi / lo) * bins_per_decade)) + 1
        self.edges = [
            lo * 10.0 ** (i / bins_per_decade) for i in range(n_edges)
        ]
        self.counts = [0] * (n_edges + 1)  # +1: underflow and overflow ends
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample into its log-spaced bin."""
        value = float(value)
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bins into this one."""
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different bins: {self.name!r}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_record(self) -> dict:
        """Export as a JSON-compatible trace record (bins included)."""
        return {
            "type": "hist",
            "name": self.name,
            "edges": self.edges,
            "counts": self.counts,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Histogram":
        """Rebuild (bins included) from a :meth:`to_record` dict."""
        hist = cls.__new__(cls)
        hist.name = record["name"]
        hist.edges = list(record["edges"])
        hist.counts = list(record["counts"])
        hist.count = record["count"]
        hist.total = record["sum"]
        hist.min = record["min"] if record["min"] is not None else math.inf
        hist.max = record["max"] if record["max"] is not None else -math.inf
        return hist


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge *name*."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, **kwargs) -> Histogram:
        """Get or create the histogram *name* (kwargs only on creation)."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, **kwargs)
        return h

    def merge_record(self, record: dict) -> None:
        """Fold one exported metric record (e.g. from a worker) in."""
        kind = record["type"]
        if kind == "counter":
            self.counter(record["name"]).add(record["value"])
        elif kind == "gauge":
            if record["value"] is not None:
                self.gauge(record["name"]).set(record["value"])
        elif kind == "hist":
            incoming = Histogram.from_record(record)
            existing = self.histograms.get(record["name"])
            if existing is None:
                self.histograms[record["name"]] = incoming
            else:
                existing.merge(incoming)
        else:
            raise ValueError(f"not a metric record: {kind!r}")

    def export(self) -> list[dict]:
        """All metric records, sorted by (type, name) — deterministic."""
        records = []
        for name in sorted(self.counters):
            records.append(self.counters[name].to_record())
        for name in sorted(self.gauges):
            records.append(self.gauges[name].to_record())
        for name in sorted(self.histograms):
            records.append(self.histograms[name].to_record())
        return records
