"""Module-level observability session: the enable/disable switch.

One process holds at most one active :class:`Session`.  Instrumentation
points throughout the library call the module-level facade functions —
:func:`trace`, :func:`event`, :func:`add`, :func:`set_gauge`,
:func:`observe` — which are no-ops (one global read) while no session is
active.  Call sites that would compute non-trivial attribute values
first guard on :func:`enabled`.

The session owns the sink: :func:`disable` exports the metrics registry
into the sink (sorted, deterministic) and closes it.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import InMemorySink, Sink
from repro.obs.spans import NOOP_SPAN, Span, Tracer

__all__ = [
    "Session",
    "enable",
    "disable",
    "enabled",
    "reset_inherited",
    "session",
    "trace",
    "event",
    "add",
    "set_gauge",
    "observe",
    "ingest",
]


class Session:
    """One live observability context: tracer + registry + sink."""

    def __init__(self, sink: Sink, *, clock=time.perf_counter) -> None:
        self.sink = sink
        self.clock = clock
        self.epoch = clock()
        self.tracer = Tracer(sink.write, clock, self.epoch)
        self.registry = MetricsRegistry()
        self.closed = False

    def flush_metrics(self) -> None:
        """Emit the registry's records into the sink (idempotent append)."""
        for record in self.registry.export():
            self.sink.write(record)

    def close(self) -> None:
        """Flush the metrics registry into the sink and close it (once)."""
        if not self.closed:
            self.closed = True
            self.flush_metrics()
            self.sink.close()

    def drain_records(self) -> list[dict]:
        """Span/event records so far plus current metrics, as plain dicts.

        Only meaningful for :class:`InMemorySink` sessions; used by
        cluster workers to ship their capture back to the scheduler.
        """
        if not isinstance(self.sink, InMemorySink):
            raise TypeError("drain_records requires an InMemorySink session")
        return list(self.sink.records) + self.registry.export()


_session: Session | None = None


def enable(sink: Sink | None = None, *, clock=time.perf_counter) -> Session:
    """Start observing; returns the new session.

    Raises if a session is already active — nested enables would silently
    split the stream (disable the current session first).
    """
    global _session
    if _session is not None:
        raise RuntimeError("an obs session is already active; disable() it first")
    _session = Session(sink if sink is not None else InMemorySink(), clock=clock)
    return _session


def disable() -> Session | None:
    """Stop observing: flush metrics, close the sink, return the session."""
    global _session
    s = _session
    _session = None
    if s is not None:
        s.close()
    return s


def reset_inherited() -> None:
    """Forget a session inherited across ``fork`` without closing it.

    A forked child shares the parent's module globals; flushing or
    closing the parent's sink from the child would corrupt the parent's
    stream, so the child just drops the reference.  Cluster workers call
    this at startup before opening their own capture sessions.
    """
    global _session
    _session = None


def enabled() -> bool:
    """True while a session is active (call-site guard for costly attrs)."""
    return _session is not None


def session() -> Session | None:
    """The active session, if any."""
    return _session


def trace(name: str, **attrs: Any) -> Span:
    """Open a span: ``with obs.trace("ga.run", n=problem.n) as sp:``.

    While disabled, returns a shared no-op context manager.
    """
    s = _session
    if s is None:
        return NOOP_SPAN  # type: ignore[return-value]
    return s.tracer.start(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a zero-duration point event under the current span."""
    s = _session
    if s is not None:
        s.tracer.point(name, attrs)


def add(name: str, n: int | float = 1) -> None:
    """Increment counter *name* by *n* (no-op while disabled)."""
    s = _session
    if s is not None:
        s.registry.counter(name).add(n)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* (no-op while disabled)."""
    s = _session
    if s is not None:
        s.registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record *value* into histogram *name* (no-op while disabled)."""
    s = _session
    if s is not None:
        s.registry.histogram(name).observe(value)


def ingest(records: list[dict] | None) -> None:
    """Splice a foreign capture (e.g. a cluster worker's
    :meth:`Session.drain_records`) into the active session.

    Span/event records are remapped under the current span; metric
    records are merged into the registry.  No-op while disabled.
    """
    s = _session
    if s is None or not records:
        return
    s.tracer.ingest(
        [r for r in records if r.get("type") in ("span", "event")]
    )
    for r in records:
        if r.get("type") in ("counter", "gauge", "hist"):
            s.registry.merge_record(r)
