"""repro.obs — unified observability: spans, metrics, pluggable sinks.

Every layer of the system that used to invent its own timing — the GA
engine's per-generation progress, the Monte-Carlo evaluator's kernel
timings, :class:`~repro.cluster.metrics.ClusterMetrics`, the CLI's
``[  12.3s]`` progress lines — now reports through this one substrate:

* a **hierarchical span tracer**: ``with obs.trace("ga.generation",
  gen=k) as sp`` opens a span on a monotonic clock, nests under the
  enclosing span, and records per-span attributes (``sp.set(best=...)``);
* a **metrics registry**: named counters (``obs.add``), gauges
  (``obs.set_gauge``) and histograms with fixed log-spaced bins
  (``obs.observe``);
* **pluggable sinks**: :class:`~repro.obs.sinks.InMemorySink` (tests,
  worker-side capture), :class:`~repro.obs.sinks.JsonlSink` (one
  diffable JSONL stream per run, the ``--trace out.jsonl`` CLI flag) and
  the human-readable summary renderer behind ``repro trace-summary``.

The layer is **zero-cost when disabled** — the default.  Every
instrumentation point guards on the module-level session: ``obs.trace``
is one global read plus a cached no-op context manager, and attribute
computation at call sites is skipped entirely unless ``obs.enabled()``.
Instrumented hot paths (``batch_makespans``, GA generations) stay within
noise of their untraced baselines; ``scripts/bench_obs.py`` records the
overhead into ``BENCH_obs.json``.

Determinism: span ids are assigned in start order, records are emitted
in close order, attribute keys are sorted, and metric records are
emitted sorted by name — a serial run's trace stream diffs cleanly
across runs (timing *values* differ, content ordering does not).

Usage::

    from repro import obs

    session = obs.enable(obs.JsonlSink("run.jsonl"))
    with obs.trace("experiment", scale="smoke"):
        ...
        obs.add("cells.done")
        obs.observe("cell_seconds", dt)
    obs.disable()          # flushes metrics and closes the sink

See ``docs/observability.md`` for the span/metric model and the JSONL
schema.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    Session,
    add,
    ingest,
    disable,
    enable,
    enabled,
    event,
    observe,
    session,
    set_gauge,
    trace,
)
from repro.obs.sinks import InMemorySink, JsonlSink, Sink
from repro.obs.spans import Span
from repro.obs.summary import (
    TraceSchemaError,
    load_trace,
    render_summary,
    validate_records,
)

__all__ = [
    # runtime facade
    "enable",
    "disable",
    "enabled",
    "session",
    "Session",
    "trace",
    "event",
    "add",
    "set_gauge",
    "observe",
    "ingest",
    # model
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # sinks
    "Sink",
    "InMemorySink",
    "JsonlSink",
    # summary / schema
    "load_trace",
    "render_summary",
    "validate_records",
    "TraceSchemaError",
]
