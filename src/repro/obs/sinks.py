"""Trace sinks: where span/event/metric records go.

A sink receives JSON-compatible dicts via :meth:`Sink.write` and is
closed exactly once when the session ends.  Two concrete sinks cover the
library's needs:

* :class:`InMemorySink` — accumulates records in a list; used by tests
  and by cluster workers, whose records are shipped back to the
  scheduler with the task result and spliced into the main stream.
* :class:`JsonlSink` — one record per line; the ``--trace out.jsonl``
  CLI stream.  A ``meta`` header line pins format and version so
  ``repro trace-summary`` can reject foreign files.
"""

from __future__ import annotations

import json
import pathlib
import threading

__all__ = ["Sink", "InMemorySink", "JsonlSink", "TRACE_FORMAT", "TRACE_VERSION"]

TRACE_FORMAT = "repro.trace"
TRACE_VERSION = 1


def meta_record() -> dict:
    """The header record every JSONL trace stream starts with."""
    return {"type": "meta", "format": TRACE_FORMAT, "version": TRACE_VERSION}


class Sink:
    """Sink interface; subclass and override :meth:`write` (and maybe
    :meth:`close`)."""

    def write(self, record: dict) -> None:  # pragma: no cover - interface
        """Receive one JSON-compatible record."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; called once by the session."""


class InMemorySink(Sink):
    """Record list in memory — tests, worker-side capture."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.closed = False

    def write(self, record: dict) -> None:
        """Append the record to :attr:`records`."""
        self.records.append(record)

    def close(self) -> None:
        """Mark the sink closed (records stay readable)."""
        self.closed = True

    def spans(self, name: str | None = None) -> list[dict]:
        """Span records, optionally filtered by name (test convenience)."""
        return [
            r
            for r in self.records
            if r.get("type") == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict]:
        """Event records, optionally filtered by name."""
        return [
            r
            for r in self.records
            if r.get("type") == "event" and (name is None or r["name"] == name)
        ]


class JsonlSink(Sink):
    """Append records to *path*, one JSON object per line.

    The file is opened (and the header written) lazily on the first
    record, truncating any previous content — a trace file always
    describes exactly one run.  Keys keep insertion order (the emitters
    use a fixed key order) and floats round-trip exactly, so serial runs
    produce line-diffable streams.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._file = None
        # Spans may close on several threads at once (the service runs
        # solves on executor threads); a whole-line lock keeps records
        # from interleaving mid-line.
        self._lock = threading.Lock()

    def _ensure_open(self):
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
            self._file.write(json.dumps(meta_record()) + "\n")
        return self._file

    def write(self, record: dict) -> None:
        """Serialize the record as one strict-JSON line."""
        line = json.dumps(record, allow_nan=False, default=_json_default) + "\n"
        with self._lock:
            self._ensure_open().write(line)

    def close(self) -> None:
        """Flush and close the file (writing the header if nothing was)."""
        # Header even for an empty run: the file must identify itself.
        with self._lock:
            fh = self._ensure_open()
            fh.flush()
            fh.close()
            self._file = None


def _json_default(value):
    """Last-resort coercions for attribute values (numpy, paths, sets)."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)
