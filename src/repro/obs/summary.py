"""Trace loading, schema validation and the human-readable summary.

This is the read side of the JSONL trace stream: ``repro trace-summary
out.jsonl`` loads the records, validates them against the schema (the CI
smoke run fails on violations), and renders

* the **span tree** with wall-time attribution: spans aggregated by
  their name-path, with call counts, total and self time (total minus
  the time attributed to child spans), sorted heaviest-first;
* the **counters and gauges**;
* the **top-k histograms** (by sample count) with their populated bins.
"""

from __future__ import annotations

import json
import pathlib

from repro.obs.sinks import TRACE_FORMAT, TRACE_VERSION

__all__ = ["TraceSchemaError", "load_trace", "validate_records", "render_summary"]


class TraceSchemaError(ValueError):
    """A trace record does not match the documented JSONL schema."""


_SPAN_KEYS = {"type", "id", "parent", "name", "t0", "t1", "dur", "status", "attrs"}
_EVENT_KEYS = {"type", "id", "parent", "name", "t", "attrs"}
_HIST_KEYS = {"type", "name", "edges", "counts", "count", "sum", "min", "max"}


def _fail(lineno: int | None, message: str) -> None:
    where = f"record {lineno}: " if lineno is not None else ""
    raise TraceSchemaError(f"{where}{message}")


def _check_number(record: dict, key: str, lineno: int | None) -> None:
    value = record.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(lineno, f"{record.get('type')}.{key} must be a number, got {value!r}")


def validate_records(records: list[dict], *, require_meta: bool = True) -> None:
    """Raise :class:`TraceSchemaError` on the first malformed record.

    The schema (see ``docs/observability.md``): a ``meta`` header, then
    any number of ``span`` / ``event`` records (ids unique, parents
    resolving to earlier-allocated ids), then/interleaved ``counter`` /
    ``gauge`` / ``hist`` metric records.
    """
    if require_meta:
        if not records:
            _fail(None, "empty trace: missing meta header")
        head = records[0]
        if head.get("type") != "meta":
            _fail(1, f"first record must be the meta header, got {head.get('type')!r}")
        if head.get("format") != TRACE_FORMAT:
            _fail(1, f"not a {TRACE_FORMAT} stream: format={head.get('format')!r}")
        if head.get("version") != TRACE_VERSION:
            _fail(1, f"unsupported trace version {head.get('version')!r}")

    seen_ids: set[int] = set()
    for lineno, record in enumerate(records, start=1):
        kind = record.get("type")
        if kind == "meta":
            if lineno != 1:
                _fail(lineno, "meta header must be the first record")
            continue
        if kind == "span":
            missing = _SPAN_KEYS - record.keys()
            if missing:
                _fail(lineno, f"span record missing keys {sorted(missing)}")
            for key in ("t0", "t1", "dur"):
                _check_number(record, key, lineno)
            if record["t1"] < record["t0"]:
                _fail(lineno, f"span {record['name']!r} ends before it starts")
            if record["status"] not in ("ok", "error"):
                _fail(lineno, f"span status must be ok|error, got {record['status']!r}")
        elif kind == "event":
            missing = _EVENT_KEYS - record.keys()
            if missing:
                _fail(lineno, f"event record missing keys {sorted(missing)}")
            _check_number(record, "t", lineno)
        elif kind in ("counter", "gauge"):
            if "name" not in record or "value" not in record:
                _fail(lineno, f"{kind} record missing name/value")
            if kind == "counter":
                _check_number(record, "value", lineno)
        elif kind == "hist":
            missing = _HIST_KEYS - record.keys()
            if missing:
                _fail(lineno, f"hist record missing keys {sorted(missing)}")
            edges, counts = record["edges"], record["counts"]
            if not isinstance(edges, list) or not isinstance(counts, list):
                _fail(lineno, "hist edges/counts must be lists")
            if len(counts) != len(edges) + 1:
                _fail(lineno, "hist needs len(counts) == len(edges) + 1")
            if any(b < a for a, b in zip(edges, edges[1:])):
                _fail(lineno, "hist edges must be non-decreasing")
            if sum(counts) != record["count"]:
                _fail(lineno, "hist count does not equal sum of bin counts")
        else:
            _fail(lineno, f"unknown record type {kind!r}")

        if kind in ("span", "event"):
            if not isinstance(record["id"], int) or record["id"] < 1:
                _fail(lineno, f"{kind} id must be a positive integer")
            if record["id"] in seen_ids:
                _fail(lineno, f"duplicate {kind} id {record['id']}")
            seen_ids.add(record["id"])
            parent = record["parent"]
            if parent is not None and not isinstance(parent, int):
                _fail(lineno, f"{kind} parent must be an integer or null")
            if not isinstance(record.get("name"), str) or not record["name"]:
                _fail(lineno, f"{kind} name must be a non-empty string")
            if not isinstance(record.get("attrs"), dict):
                _fail(lineno, f"{kind} attrs must be an object")


def load_trace(path: str | pathlib.Path, *, validate: bool = True) -> list[dict]:
    """Read a JSONL trace file; optionally schema-validate it."""
    path = pathlib.Path(path)
    records: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise TraceSchemaError(f"{path}:{lineno}: not JSON: {err}") from None
            if not isinstance(record, dict):
                raise TraceSchemaError(f"{path}:{lineno}: record must be an object")
            records.append(record)
    if validate:
        validate_records(records)
    return records


# --------------------------------------------------------------------- render


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.2f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds * 1e6:8.1f}us"


def _aggregate(span_records: list[dict], parent_of: dict[int, int | None]):
    """Group spans by name-path into a nested {name: _Node} tree."""
    nodes: dict[int, dict] = {r["id"]: r for r in span_records}

    class _Node:
        __slots__ = ("count", "total", "child_total", "errors", "children")

        def __init__(self) -> None:
            self.count = 0
            self.total = 0.0
            self.child_total = 0.0
            self.errors = 0
            self.children: dict[str, _Node] = {}

    root = _Node()
    # Map span id -> aggregation node, built in id (start) order so a
    # child's parent is always resolved first.
    agg_of: dict[int, _Node] = {}
    for rid in sorted(nodes):
        record = nodes[rid]
        parent = parent_of.get(rid)
        parent_agg = agg_of.get(parent, root) if parent is not None else root
        node = parent_agg.children.get(record["name"])
        if node is None:
            node = parent_agg.children[record["name"]] = _Node()
        node.count += 1
        node.total += record["dur"]
        if record["status"] == "error":
            node.errors += 1
        if parent is not None and parent in agg_of:
            agg_of[parent].child_total += record["dur"]
        agg_of[rid] = node
    return root


def render_summary(records: list[dict], *, top: int = 5, max_depth: int = 12) -> str:
    """Render the span tree, counters and top-k histograms as text."""
    validate_records(records, require_meta=False)
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    counters = [r for r in records if r.get("type") == "counter"]
    gauges = [r for r in records if r.get("type") == "gauge"]
    hists = [r for r in records if r.get("type") == "hist"]

    lines: list[str] = []
    n_err = sum(1 for s in spans if s["status"] == "error")
    lines.append(
        f"trace summary: {len(spans)} spans, {len(events)} events, "
        f"{n_err} errors"
    )

    if spans:
        span_ids = {s["id"] for s in spans}
        parent_of = {
            s["id"]: (s["parent"] if s["parent"] in span_ids else None)
            for s in spans
        }
        root = _aggregate(spans, parent_of)
        wall = sum(
            node.total for node in root.children.values()
        ) or 1e-12  # top-level spans define the attributable wall time

        lines.append("")
        lines.append("span tree (by wall time; self = total minus children):")

        def _walk(node, name: str, depth: int) -> None:
            self_time = max(node.total - node.child_total, 0.0)
            err = f"  {node.errors} ERR" if node.errors else ""
            lines.append(
                f"  {'  ' * depth}{name:<{max(40 - 2 * depth, 8)}}"
                f"{node.count:>7}x {_fmt_seconds(node.total)}"
                f" ({100.0 * node.total / wall:5.1f}%)"
                f"  self {_fmt_seconds(self_time)}{err}"
            )
            if depth + 1 >= max_depth:
                return
            for child_name, child in sorted(
                node.children.items(), key=lambda kv: -kv[1].total
            ):
                _walk(child, child_name, depth + 1)

        for name, node in sorted(
            root.children.items(), key=lambda kv: -kv[1].total
        ):
            _walk(node, name, 0)

    if events:
        by_name: dict[str, int] = {}
        for e in events:
            by_name[e["name"]] = by_name.get(e["name"], 0) + 1
        lines.append("")
        lines.append("events:")
        for name in sorted(by_name):
            lines.append(f"  {name:<40}{by_name[name]:>7}x")

    if counters or gauges:
        lines.append("")
        lines.append("counters / gauges:")
        for r in sorted(counters, key=lambda r: r["name"]):
            lines.append(f"  {r['name']:<40}{r['value']:>12g}")
        for r in sorted(gauges, key=lambda r: r["name"]):
            value = r["value"]
            shown = f"{value:>12g}" if value is not None else f"{'unset':>12}"
            lines.append(f"  {r['name']:<40}{shown}")

    if hists:
        ranked = sorted(hists, key=lambda r: (-r["count"], r["name"]))[:top]
        lines.append("")
        lines.append(f"histograms (top {min(top, len(hists))} of {len(hists)} by count):")
        for r in ranked:
            mean = r["sum"] / r["count"] if r["count"] else 0.0
            lines.append(
                f"  {r['name']}: n={r['count']}  mean={_fmt_seconds(mean).strip()}"
                f"  min={_fmt_seconds(r['min'] or 0.0).strip()}"
                f"  max={_fmt_seconds(r['max'] or 0.0).strip()}"
            )
            edges, counts = r["edges"], r["counts"]
            peak = max(counts) or 1
            shown = sorted(
                (i for i, c in enumerate(counts) if c),
                key=lambda i: -counts[i],
            )[:6]
            for i in sorted(shown):
                lo = "<" + _fmt_seconds(edges[0]).strip() if i == 0 else _fmt_seconds(edges[i - 1]).strip()
                hi = (
                    ">=" + _fmt_seconds(edges[-1]).strip()
                    if i == len(counts) - 1
                    else "< " + _fmt_seconds(edges[i]).strip()
                )
                bar = "#" * max(1, round(24 * counts[i] / peak))
                lines.append(f"    [{lo:>10} .. {hi:>12}) {bar:<24} {counts[i]}")

    return "\n".join(lines)
